// Vectorized transcendentals (Cephes-style single precision) generic over
// vfloat<W>. Used by the Black-Scholes and Parboil kernels in both the SPMD
// (OpenCL) and loop (ompx) instantiations, so scalar and vector versions run
// the same math and validate bit-for-bit against each other within tolerance.
#pragma once

#include "simd/vec.hpp"

namespace mcl::simd {

namespace detail {

// --- integer bit tricks, specialized per width ------------------------------

/// 2^n for integer-valued float n in roughly [-126, 127].
[[nodiscard]] inline vfloat<1> pow2i(vfloat<1> n) {
  const std::int32_t i = (static_cast<std::int32_t>(n.v) + 127) << 23;
  float f;
  __builtin_memcpy(&f, &i, 4);
  return vfloat<1>{f};
}

/// Splits x into exponent e (as float) and mantissa m in [sqrt(0.5), sqrt(2)).
inline void frexp_adj(vfloat<1> x, vfloat<1>& m, vfloat<1>& e) {
  std::int32_t bits;
  __builtin_memcpy(&bits, &x.v, 4);
  std::int32_t exp = ((bits >> 23) & 0xff) - 126;
  bits = (bits & 0x007fffff) | 0x3f000000;  // mantissa in [0.5, 1)
  float mf;
  __builtin_memcpy(&mf, &bits, 4);
  if (mf < 0.70710678118654752440f) {
    mf *= 2.0f;
    exp -= 1;
  }
  m = vfloat<1>{mf};
  e = vfloat<1>{static_cast<float>(exp)};
}

#if defined(__SSE2__)
[[nodiscard]] inline vfloat<4> pow2i(vfloat<4> n) {
  __m128i i = _mm_cvtps_epi32(n.v);
  i = _mm_slli_epi32(_mm_add_epi32(i, _mm_set1_epi32(127)), 23);
  return vfloat<4>{_mm_castsi128_ps(i)};
}

inline void frexp_adj(vfloat<4> x, vfloat<4>& m, vfloat<4>& e) {
  __m128i bits = _mm_castps_si128(x.v);
  __m128i exp = _mm_sub_epi32(
      _mm_and_si128(_mm_srli_epi32(bits, 23), _mm_set1_epi32(0xff)),
      _mm_set1_epi32(126));
  bits = _mm_or_si128(_mm_and_si128(bits, _mm_set1_epi32(0x007fffff)),
                      _mm_set1_epi32(0x3f000000));
  vfloat<4> mf{_mm_castsi128_ps(bits)};
  const vfloat<4> sqrt_half{0.70710678118654752440f};
  const vfloat<4> below = cmp_lt(mf, sqrt_half);
  m = select(below, mf + mf, mf);
  const vfloat<4> ef{_mm_cvtepi32_ps(exp)};
  e = select(below, ef - vfloat<4>{1.0f}, ef);
}
#endif

#if defined(__AVX2__)
[[nodiscard]] inline vfloat<8> pow2i(vfloat<8> n) {
  __m256i i = _mm256_cvtps_epi32(n.v);
  i = _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
  return vfloat<8>{_mm256_castsi256_ps(i)};
}

inline void frexp_adj(vfloat<8> x, vfloat<8>& m, vfloat<8>& e) {
  __m256i bits = _mm256_castps_si256(x.v);
  __m256i exp = _mm256_sub_epi32(
      _mm256_and_si256(_mm256_srli_epi32(bits, 23), _mm256_set1_epi32(0xff)),
      _mm256_set1_epi32(126));
  bits = _mm256_or_si256(_mm256_and_si256(bits, _mm256_set1_epi32(0x007fffff)),
                         _mm256_set1_epi32(0x3f000000));
  vfloat<8> mf{_mm256_castsi256_ps(bits)};
  const vfloat<8> sqrt_half{0.70710678118654752440f};
  const vfloat<8> below = cmp_lt(mf, sqrt_half);
  m = select(below, mf + mf, mf);
  const vfloat<8> ef{_mm256_cvtepi32_ps(exp)};
  e = select(below, ef - vfloat<8>{1.0f}, ef);
}
#elif defined(__AVX__)
// AVX without AVX2 lacks 256-bit integer ops; run the 128-bit path twice.
[[nodiscard]] inline vfloat<8> pow2i(vfloat<8> n) {
  alignas(32) float tmp[8];
  n.store_aligned(tmp);
  alignas(32) float out[8];
  for (int half = 0; half < 2; ++half) {
    vfloat<4> r = pow2i(vfloat<4>::load_aligned(tmp + 4 * half));
    r.store_aligned(out + 4 * half);
  }
  return vfloat<8>::load_aligned(out);
}

inline void frexp_adj(vfloat<8> x, vfloat<8>& m, vfloat<8>& e) {
  alignas(32) float xs[8], ms[8], es[8];
  x.store_aligned(xs);
  for (int half = 0; half < 2; ++half) {
    vfloat<4> mm, ee;
    frexp_adj(vfloat<4>::load_aligned(xs + 4 * half), mm, ee);
    mm.store_aligned(ms + 4 * half);
    ee.store_aligned(es + 4 * half);
  }
  m = vfloat<8>::load_aligned(ms);
  e = vfloat<8>::load_aligned(es);
}
#endif

}  // namespace detail

/// expf, max relative error ~2e-7 on [-87, 88]; clamps outside.
template <int W>
[[nodiscard]] vfloat<W> vexp(vfloat<W> x) {
  using V = vfloat<W>;
  const V hi{88.3762626647949f}, lo{-87.3365478515625f};
  x = min(x, hi);
  x = max(x, lo);

  // n = round(x / ln2); r = x - n*ln2 (extended-precision ln2 split)
  const V log2e{1.44269504088896341f};
  V n = floor(fmadd(x, log2e, V{0.5f}));
  const V c1{0.693359375f}, c2{-2.12194440e-4f};
  V r = x - n * c1;
  r = r - n * c2;

  // degree-6 polynomial for e^r on [-ln2/2, ln2/2]
  V p{1.9875691500e-4f};
  p = fmadd(p, r, V{1.3981999507e-3f});
  p = fmadd(p, r, V{8.3334519073e-3f});
  p = fmadd(p, r, V{4.1665795894e-2f});
  p = fmadd(p, r, V{1.6666665459e-1f});
  p = fmadd(p, r, V{5.0000001201e-1f});
  p = fmadd(p, r * r, r + V{1.0f});

  return p * detail::pow2i(n);
}

/// logf for x > 0, max relative error ~3e-7. No special-casing of <=0.
template <int W>
[[nodiscard]] vfloat<W> vlog(vfloat<W> x) {
  using V = vfloat<W>;
  V m, e;
  detail::frexp_adj(x, m, e);
  m = m - V{1.0f};

  V p{7.0376836292e-2f};
  p = fmadd(p, m, V{-1.1514610310e-1f});
  p = fmadd(p, m, V{1.1676998740e-1f});
  p = fmadd(p, m, V{-1.2420140846e-1f});
  p = fmadd(p, m, V{1.4249322787e-1f});
  p = fmadd(p, m, V{-1.6668057665e-1f});
  p = fmadd(p, m, V{2.0000714765e-1f});
  p = fmadd(p, m, V{-2.4999993993e-1f});
  p = fmadd(p, m, V{3.3333331174e-1f});
  const V m2 = m * m;
  V r = p * m * m2;
  r = fmadd(e, V{-2.12194440e-4f}, r);
  r = r - m2 * V{0.5f};
  r = r + m;
  r = fmadd(e, V{0.693359375f}, r);
  return r;
}

namespace detail {

/// Shared sin/cos core: Cephes-style range reduction to [-pi/4, pi/4] with
/// quadrant selection. Computes both polynomials and picks per quadrant.
template <int W>
void vsincos_impl(vfloat<W> x, vfloat<W>& s, vfloat<W>& c) {
  using V = vfloat<W>;
  const V sign_x = cmp_lt(x, V{0.0f});
  const V ax = abs(x);

  // j = round-to-even-ish quadrant count: j = floor(ax * 4/pi), j += j & 1
  const V four_over_pi{1.27323954473516f};
  V j = floor(ax * four_over_pi);
  // if j is odd, add 1 (force even): odd iff floor(j/2)*2 != j
  const V half_j = floor(j * V{0.5f}) * V{2.0f};
  const V odd = cmp_lt(half_j, j);  // all-ones where j odd
  j = select(odd, j + V{1.0f}, j);

  // Extended-precision reduction: y = ax - j*pi/4 (3-part pi/4)
  const V dp1{0.78515625f}, dp2{2.4187564849853515625e-4f},
      dp3{3.77489497744594108e-8f};
  V y = ax - j * dp1;
  y = y - j * dp2;
  y = y - j * dp3;

  // quadrant q = j mod 8 -> we need j/2 mod 4; compute q2 = (j/2) mod 4
  const V j_half = j * V{0.5f};
  const V q2 = j_half - floor(j_half * V{0.25f}) * V{4.0f};  // in {0,1,2,3}

  const V y2 = y * y;
  // cos poly on [-pi/4, pi/4]
  V pc{2.443315711809948e-5f};
  pc = fmadd(pc, y2, V{-1.388731625493765e-3f});
  pc = fmadd(pc, y2, V{4.166664568298827e-2f});
  pc = pc * y2 * y2;
  pc = pc - y2 * V{0.5f} + V{1.0f};
  // sin poly
  V ps{-1.9515295891e-4f};
  ps = fmadd(ps, y2, V{8.3321608736e-3f});
  ps = fmadd(ps, y2, V{-1.6666654611e-1f});
  ps = fmadd(ps * y2, y, y);

  // Quadrant selection (q2 in {0,1,2,3}):
  //   sin(ax): q0: ps, q1: pc, q2: -ps, q3: -pc
  //   cos(ax): q0: pc, q1: -ps, q2: -pc, q3: ps
  const V is_q1 = cmp_lt(abs(q2 - V{1.0f}), V{0.5f});
  const V is_q2 = cmp_lt(abs(q2 - V{2.0f}), V{0.5f});
  const V is_q3 = cmp_lt(abs(q2 - V{3.0f}), V{0.5f});
  const V swap = select(is_q1, V{1.0f}, select(is_q3, V{1.0f}, V{0.0f}));
  const V do_swap = cmp_gt(swap, V{0.5f});

  V sin_ax = select(do_swap, pc, ps);
  V cos_ax = select(do_swap, ps, pc);
  // sign of sin: negative in q2, q3
  const V neg_sin = select(is_q2, V{1.0f}, select(is_q3, V{1.0f}, V{0.0f}));
  sin_ax = select(cmp_gt(neg_sin, V{0.5f}), V{0.0f} - sin_ax, sin_ax);
  // sign of cos: negative in q1, q2
  const V neg_cos = select(is_q1, V{1.0f}, select(is_q2, V{1.0f}, V{0.0f}));
  cos_ax = select(cmp_gt(neg_cos, V{0.5f}), V{0.0f} - cos_ax, cos_ax);

  // sin is odd, cos is even.
  s = select(sign_x, V{0.0f} - sin_ax, sin_ax);
  c = cos_ax;
}

}  // namespace detail

/// sinf/cosf pair, usable range |x| < ~8192 (range reduction precision).
template <int W>
void vsincos(vfloat<W> x, vfloat<W>& s, vfloat<W>& c) {
  detail::vsincos_impl(x, s, c);
}

template <int W>
[[nodiscard]] vfloat<W> vsin(vfloat<W> x) {
  vfloat<W> s, c;
  detail::vsincos_impl(x, s, c);
  return s;
}

template <int W>
[[nodiscard]] vfloat<W> vcos(vfloat<W> x) {
  vfloat<W> s, c;
  detail::vsincos_impl(x, s, c);
  return c;
}

/// Standard normal CDF via the Abramowitz & Stegun 26.2.17 polynomial (the
/// formulation used by the classic Black-Scholes OpenCL samples).
template <int W>
[[nodiscard]] vfloat<W> normal_cdf(vfloat<W> d) {
  using V = vfloat<W>;
  const V a1{0.31938153f}, a2{-0.356563782f}, a3{1.781477937f},
      a4{-1.821255978f}, a5{1.330274429f};
  const V inv_sqrt_2pi{0.39894228040143267794f};

  const V ad = abs(d);
  const V k = V{1.0f} / fmadd(ad, V{0.2316419f}, V{1.0f});
  V poly = fmadd(a5, k, a4);
  poly = fmadd(poly, k, a3);
  poly = fmadd(poly, k, a2);
  poly = fmadd(poly, k, a1);
  poly = poly * k;

  const V pdf = inv_sqrt_2pi * vexp(V{-0.5f} * ad * ad);
  const V cnd_pos = V{1.0f} - pdf * poly;
  // reflect for negative d
  return select(cmp_lt(d, V{0.0f}), V{1.0f} - cnd_pos, cnd_pos);
}

}  // namespace mcl::simd
