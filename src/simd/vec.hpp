// Explicit SIMD vector wrapper.
//
// This is the codegen layer both "compilers" in this repo target:
//  - the MiniCL SPMD executor coalesces W workitems into one vfloat<W> lane
//    group (the Intel OpenCL "implicit vectorization module" analogue);
//  - the ompx path instantiates vectorized loop bodies with vfloat<W> only
//    when veclegal proves the loop vectorizable.
//
// Kernels are written once against the vfloat<W> interface; vfloat<1> is the
// scalar instantiation, so a single template expresses both the scalar and
// vector binaries a compiler would emit. Widths: 1 (always), 4 (SSE2+),
// 8 (AVX+). kNativeFloatWidth picks the widest compiled-in ISA.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace mcl::simd {

template <int W>
struct vfloat;

// ---------------------------------------------------------------------------
// Scalar instantiation: lets templated kernels compile to plain float code.
// ---------------------------------------------------------------------------
template <>
struct vfloat<1> {
  static constexpr int width = 1;
  float v = 0.0f;

  vfloat() = default;
  explicit vfloat(float x) : v(x) {}

  [[nodiscard]] static vfloat load(const float* p) { return vfloat{*p}; }
  [[nodiscard]] static vfloat load_aligned(const float* p) { return vfloat{*p}; }
  void store(float* p) const { *p = v; }
  void store_aligned(float* p) const { *p = v; }
  /// lane i gets base + i (scalar: just base).
  [[nodiscard]] static vfloat iota(float base) { return vfloat{base}; }

  [[nodiscard]] float lane(int) const { return v; }
  [[nodiscard]] float reduce_add() const { return v; }

  friend vfloat operator+(vfloat a, vfloat b) { return vfloat{a.v + b.v}; }
  friend vfloat operator-(vfloat a, vfloat b) { return vfloat{a.v - b.v}; }
  friend vfloat operator*(vfloat a, vfloat b) { return vfloat{a.v * b.v}; }
  friend vfloat operator/(vfloat a, vfloat b) { return vfloat{a.v / b.v}; }
  vfloat& operator+=(vfloat b) { v += b.v; return *this; }
  vfloat& operator-=(vfloat b) { v -= b.v; return *this; }
  vfloat& operator*=(vfloat b) { v *= b.v; return *this; }
};

[[nodiscard]] inline vfloat<1> fmadd(vfloat<1> a, vfloat<1> b, vfloat<1> c) {
  return vfloat<1>{a.v * b.v + c.v};
}
[[nodiscard]] inline vfloat<1> sqrt(vfloat<1> a) { return vfloat<1>{std::sqrt(a.v)}; }
[[nodiscard]] inline vfloat<1> abs(vfloat<1> a) { return vfloat<1>{std::fabs(a.v)}; }
[[nodiscard]] inline vfloat<1> min(vfloat<1> a, vfloat<1> b) {
  return vfloat<1>{a.v < b.v ? a.v : b.v};
}
[[nodiscard]] inline vfloat<1> max(vfloat<1> a, vfloat<1> b) {
  return vfloat<1>{a.v > b.v ? a.v : b.v};
}
/// Comparison produces an all-ones/all-zeros mask representable as vfloat.
[[nodiscard]] inline vfloat<1> cmp_lt(vfloat<1> a, vfloat<1> b) {
  std::uint32_t m = a.v < b.v ? 0xffffffffu : 0u;
  float f;
  __builtin_memcpy(&f, &m, 4);
  return vfloat<1>{f};
}
[[nodiscard]] inline vfloat<1> cmp_gt(vfloat<1> a, vfloat<1> b) { return cmp_lt(b, a); }
/// Lane-wise: mask ? a : b (mask lanes are all-ones/all-zeros bit patterns).
[[nodiscard]] inline vfloat<1> select(vfloat<1> mask, vfloat<1> a, vfloat<1> b) {
  std::uint32_t m, x, y, r;
  __builtin_memcpy(&m, &mask.v, 4);
  __builtin_memcpy(&x, &a.v, 4);
  __builtin_memcpy(&y, &b.v, 4);
  r = (x & m) | (y & ~m);
  float f;
  __builtin_memcpy(&f, &r, 4);
  return vfloat<1>{f};
}
[[nodiscard]] inline vfloat<1> floor(vfloat<1> a) { return vfloat<1>{std::floor(a.v)}; }

#if defined(__SSE2__)
// ---------------------------------------------------------------------------
// SSE: 4 single-precision lanes (the paper's Xeon E5645 / SSE4.2 width).
// ---------------------------------------------------------------------------
template <>
struct vfloat<4> {
  static constexpr int width = 4;
  __m128 v;

  vfloat() : v(_mm_setzero_ps()) {}
  explicit vfloat(float x) : v(_mm_set1_ps(x)) {}
  explicit vfloat(__m128 x) : v(x) {}

  [[nodiscard]] static vfloat load(const float* p) { return vfloat{_mm_loadu_ps(p)}; }
  [[nodiscard]] static vfloat load_aligned(const float* p) {
    return vfloat{_mm_load_ps(p)};
  }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  void store_aligned(float* p) const { _mm_store_ps(p, v); }
  [[nodiscard]] static vfloat iota(float base) {
    return vfloat{_mm_add_ps(_mm_set1_ps(base), _mm_setr_ps(0, 1, 2, 3))};
  }

  [[nodiscard]] float lane(int i) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    return tmp[i];
  }
  [[nodiscard]] float reduce_add() const {
    __m128 sum = _mm_add_ps(v, _mm_movehl_ps(v, v));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
    return _mm_cvtss_f32(sum);
  }

  friend vfloat operator+(vfloat a, vfloat b) { return vfloat{_mm_add_ps(a.v, b.v)}; }
  friend vfloat operator-(vfloat a, vfloat b) { return vfloat{_mm_sub_ps(a.v, b.v)}; }
  friend vfloat operator*(vfloat a, vfloat b) { return vfloat{_mm_mul_ps(a.v, b.v)}; }
  friend vfloat operator/(vfloat a, vfloat b) { return vfloat{_mm_div_ps(a.v, b.v)}; }
  vfloat& operator+=(vfloat b) { v = _mm_add_ps(v, b.v); return *this; }
  vfloat& operator-=(vfloat b) { v = _mm_sub_ps(v, b.v); return *this; }
  vfloat& operator*=(vfloat b) { v = _mm_mul_ps(v, b.v); return *this; }
};

[[nodiscard]] inline vfloat<4> fmadd(vfloat<4> a, vfloat<4> b, vfloat<4> c) {
#if defined(__FMA__)
  return vfloat<4>{_mm_fmadd_ps(a.v, b.v, c.v)};
#else
  return vfloat<4>{_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
#endif
}
[[nodiscard]] inline vfloat<4> sqrt(vfloat<4> a) { return vfloat<4>{_mm_sqrt_ps(a.v)}; }
[[nodiscard]] inline vfloat<4> abs(vfloat<4> a) {
  const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  return vfloat<4>{_mm_and_ps(a.v, mask)};
}
[[nodiscard]] inline vfloat<4> min(vfloat<4> a, vfloat<4> b) {
  return vfloat<4>{_mm_min_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<4> max(vfloat<4> a, vfloat<4> b) {
  return vfloat<4>{_mm_max_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<4> cmp_lt(vfloat<4> a, vfloat<4> b) {
  return vfloat<4>{_mm_cmplt_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<4> cmp_gt(vfloat<4> a, vfloat<4> b) {
  return vfloat<4>{_mm_cmpgt_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<4> select(vfloat<4> mask, vfloat<4> a, vfloat<4> b) {
#if defined(__SSE4_1__)
  return vfloat<4>{_mm_blendv_ps(b.v, a.v, mask.v)};
#else
  return vfloat<4>{_mm_or_ps(_mm_and_ps(mask.v, a.v), _mm_andnot_ps(mask.v, b.v))};
#endif
}
[[nodiscard]] inline vfloat<4> floor(vfloat<4> a) {
#if defined(__SSE4_1__)
  return vfloat<4>{_mm_floor_ps(a.v)};
#else
  alignas(16) float tmp[4];
  a.store_aligned(tmp);
  for (float& t : tmp) t = std::floor(t);
  return vfloat<4>::load_aligned(tmp);
#endif
}
#endif  // __SSE2__

#if defined(__AVX__)
// ---------------------------------------------------------------------------
// AVX: 8 single-precision lanes.
// ---------------------------------------------------------------------------
template <>
struct vfloat<8> {
  static constexpr int width = 8;
  __m256 v;

  vfloat() : v(_mm256_setzero_ps()) {}
  explicit vfloat(float x) : v(_mm256_set1_ps(x)) {}
  explicit vfloat(__m256 x) : v(x) {}

  [[nodiscard]] static vfloat load(const float* p) {
    return vfloat{_mm256_loadu_ps(p)};
  }
  [[nodiscard]] static vfloat load_aligned(const float* p) {
    return vfloat{_mm256_load_ps(p)};
  }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  void store_aligned(float* p) const { _mm256_store_ps(p, v); }
  [[nodiscard]] static vfloat iota(float base) {
    return vfloat{_mm256_add_ps(_mm256_set1_ps(base),
                                _mm256_setr_ps(0, 1, 2, 3, 4, 5, 6, 7))};
  }

  [[nodiscard]] float lane(int i) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    return tmp[i];
  }
  [[nodiscard]] float reduce_add() const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
    return _mm_cvtss_f32(sum);
  }

  friend vfloat operator+(vfloat a, vfloat b) {
    return vfloat{_mm256_add_ps(a.v, b.v)};
  }
  friend vfloat operator-(vfloat a, vfloat b) {
    return vfloat{_mm256_sub_ps(a.v, b.v)};
  }
  friend vfloat operator*(vfloat a, vfloat b) {
    return vfloat{_mm256_mul_ps(a.v, b.v)};
  }
  friend vfloat operator/(vfloat a, vfloat b) {
    return vfloat{_mm256_div_ps(a.v, b.v)};
  }
  vfloat& operator+=(vfloat b) { v = _mm256_add_ps(v, b.v); return *this; }
  vfloat& operator-=(vfloat b) { v = _mm256_sub_ps(v, b.v); return *this; }
  vfloat& operator*=(vfloat b) { v = _mm256_mul_ps(v, b.v); return *this; }
};

[[nodiscard]] inline vfloat<8> fmadd(vfloat<8> a, vfloat<8> b, vfloat<8> c) {
#if defined(__FMA__)
  return vfloat<8>{_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
  return vfloat<8>{_mm256_add_ps(_mm256_mul_ps(a.v, b.v), c.v)};
#endif
}
[[nodiscard]] inline vfloat<8> sqrt(vfloat<8> a) {
  return vfloat<8>{_mm256_sqrt_ps(a.v)};
}
[[nodiscard]] inline vfloat<8> abs(vfloat<8> a) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  return vfloat<8>{_mm256_and_ps(a.v, mask)};
}
[[nodiscard]] inline vfloat<8> min(vfloat<8> a, vfloat<8> b) {
  return vfloat<8>{_mm256_min_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<8> max(vfloat<8> a, vfloat<8> b) {
  return vfloat<8>{_mm256_max_ps(a.v, b.v)};
}
[[nodiscard]] inline vfloat<8> cmp_lt(vfloat<8> a, vfloat<8> b) {
  return vfloat<8>{_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
}
[[nodiscard]] inline vfloat<8> cmp_gt(vfloat<8> a, vfloat<8> b) {
  return vfloat<8>{_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
[[nodiscard]] inline vfloat<8> select(vfloat<8> mask, vfloat<8> a, vfloat<8> b) {
  return vfloat<8>{_mm256_blendv_ps(b.v, a.v, mask.v)};
}
[[nodiscard]] inline vfloat<8> floor(vfloat<8> a) {
  return vfloat<8>{_mm256_floor_ps(a.v)};
}
#endif  // __AVX__

/// Widest width this binary was compiled for.
#if defined(__AVX__)
inline constexpr int kNativeFloatWidth = 8;
#elif defined(__SSE2__)
inline constexpr int kNativeFloatWidth = 4;
#else
inline constexpr int kNativeFloatWidth = 1;
#endif

using vfloatn = vfloat<kNativeFloatWidth>;

/// Name of the ISA behind kNativeFloatWidth (for reports).
[[nodiscard]] const char* native_isa_name() noexcept;

}  // namespace mcl::simd
