#include "threading/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <cctype>
#include <string>

namespace mcl::threading {

int logical_cpu_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

bool pin_handle(pthread_t handle, int cpu) noexcept {
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
}

}  // namespace

bool pin_current_thread(int cpu) noexcept { return pin_handle(pthread_self(), cpu); }

bool pin_thread(std::thread& thread, int cpu) noexcept {
  return pin_handle(thread.native_handle(), cpu);
}

std::vector<int> current_affinity() {
  cpu_set_t set;
  CPU_ZERO(&set);
  std::vector<int> cpus;
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) return cpus;
  for (int i = 0; i < CPU_SETSIZE; ++i) {
    if (CPU_ISSET(i, &set)) cpus.push_back(i);
  }
  return cpus;
}

std::optional<std::vector<int>> parse_affinity_list(const std::string& spec) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < spec.size() && (spec[i] == ' ' || spec[i] == ',')) ++i;
  };
  const auto parse_num = [&](int& out) -> bool {
    if (i >= spec.size() || !std::isdigit(static_cast<unsigned char>(spec[i])))
      return false;
    long v = 0;
    while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
      v = v * 10 + (spec[i] - '0');
      if (v > 1'000'000) return false;
      ++i;
    }
    out = static_cast<int>(v);
    return true;
  };

  skip_ws();
  while (i < spec.size()) {
    int first = 0;
    if (!parse_num(first)) return std::nullopt;
    int last = first;
    int stride = 1;
    if (i < spec.size() && spec[i] == '-') {
      ++i;
      if (!parse_num(last)) return std::nullopt;
      if (i < spec.size() && spec[i] == ':') {
        ++i;
        if (!parse_num(stride) || stride <= 0) return std::nullopt;
      }
    }
    if (last < first) return std::nullopt;
    for (int c = first; c <= last; c += stride) cpus.push_back(c);
    skip_ws();
  }
  if (cpus.empty()) return std::nullopt;
  return cpus;
}

}  // namespace mcl::threading
