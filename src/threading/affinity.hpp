// CPU-affinity helpers — the capability OpenCL lacks and the paper's
// Sec. II-D/III-E argues for. Used by ompx (OMPX_PROC_BIND analogue) and by
// the MiniCL CPU device's optional pinning extension.
#pragma once

#include <optional>
#include <thread>
#include <vector>

namespace mcl::threading {

/// Number of logical CPUs visible to this process.
[[nodiscard]] int logical_cpu_count() noexcept;

/// Pins the calling thread to one logical CPU. Returns false when the OS
/// refuses (e.g. cpu id out of range); never throws.
bool pin_current_thread(int cpu) noexcept;

/// Pins `thread` to one logical CPU. Returns false on failure.
bool pin_thread(std::thread& thread, int cpu) noexcept;

/// CPUs the calling thread is currently allowed to run on.
[[nodiscard]] std::vector<int> current_affinity();

/// Parses a GOMP_CPU_AFFINITY-style list: "0 3 1-2 4-6:2".
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<int>> parse_affinity_list(
    const std::string& spec);

}  // namespace mcl::threading
