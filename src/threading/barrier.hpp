// Reusable sense-reversing spin barrier for worker teams.
//
// Used by ompx's fork-join team; kept spin-based because teams are small and
// phases are short (an OS-blocking barrier would swamp the effects the
// benchmarks measure).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace mcl::threading {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until `parties` threads have arrived; reusable across phases.
  void arrive_and_wait() noexcept {
    const bool sense = sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
      return;
    }
    std::size_t spins = 0;
    while (sense_.load(std::memory_order_acquire) == sense) {
      if (++spins > 1024) std::this_thread::yield();
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace mcl::threading
