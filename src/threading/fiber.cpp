#include "threading/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace mcl::threading {

namespace {

/// Per-thread pool of equally-sized fiber stacks.
class StackPool {
 public:
  void* acquire(std::size_t bytes) {
    if (bytes != stack_bytes_) {
      // Size change invalidates the pool (rare: executor reconfiguration).
      free_.clear();
      blocks_.clear();
      stack_bytes_ = bytes;
    }
    if (!free_.empty()) {
      void* s = free_.back();
      free_.pop_back();
      return s;
    }
    blocks_.push_back(std::make_unique<std::byte[]>(bytes));
    return blocks_.back().get();
  }

  void release(void* stack) { free_.push_back(stack); }

  void clear() noexcept {
    free_.clear();
    blocks_.clear();
    stack_bytes_ = 0;
  }

 private:
  std::size_t stack_bytes_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<void*> free_;
};

thread_local StackPool t_stack_pool;

}  // namespace

class FiberScheduler {
 public:
  FiberScheduler(std::size_t count, const FiberBody& body, std::size_t stack_bytes)
      : body_(body), fibers_(count) {
    stack_bytes_ = (stack_bytes + 4095) & ~std::size_t{4095};
    for (std::size_t i = 0; i < count; ++i) {
      Fiber& f = fibers_[i];
      f.index = i;
      f.sched = this;
      f.stack = t_stack_pool.acquire(stack_bytes_);
      if (getcontext(&f.ctx) != 0)
        throw std::runtime_error("getcontext failed");
      f.ctx.uc_stack.ss_sp = f.stack;
      f.ctx.uc_stack.ss_size = stack_bytes_;
      f.ctx.uc_link = &main_ctx_;
      // makecontext only forwards ints; split the Fiber* into two words.
      const auto ptr = reinterpret_cast<std::uintptr_t>(&f);
      makecontext(&f.ctx, reinterpret_cast<void (*)()>(&FiberScheduler::trampoline),
                  2, static_cast<unsigned>(ptr & 0xffffffffu),
                  static_cast<unsigned>(ptr >> 32));
    }
  }

  ~FiberScheduler() {
    for (Fiber& f : fibers_) {
      if (f.stack != nullptr) t_stack_pool.release(f.stack);
    }
  }

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  void run() {
    std::size_t live = fibers_.size();
    while (live > 0) {
      // One round: resume every unfinished fiber exactly once. Fibers that
      // hit barrier() suspend; fibers that return are retired. Because every
      // workitem must reach the same barriers (OpenCL rule), one round ==
      // one barrier phase.
      for (Fiber& f : fibers_) {
        if (f.finished) continue;
        current_ = &f;
        swapcontext(&main_ctx_, &f.ctx);
        current_ = nullptr;
        if (f.finished) --live;
        if (f.exception) {
          // Propagate the first failure after retiring remaining fibers'
          // stacks (they are simply abandoned mid-run; their memory is
          // pooled, not leaked).
          std::rethrow_exception(f.exception);
        }
      }
    }
  }

  void yield_current() {
    Fiber* f = current_;
    swapcontext(&f->ctx, &main_ctx_);
  }

 private:
  struct Fiber {
    ucontext_t ctx{};
    void* stack = nullptr;
    std::size_t index = 0;
    bool finished = false;
    std::exception_ptr exception;
    FiberScheduler* sched = nullptr;
  };

  static void trampoline(unsigned lo, unsigned hi) {
    const auto ptr = static_cast<std::uintptr_t>(lo) |
                     (static_cast<std::uintptr_t>(hi) << 32);
    Fiber* f = reinterpret_cast<Fiber*>(ptr);
    FiberYield yield(*f->sched);
    try {
      f->sched->body_(f->index, yield);
    } catch (...) {
      f->exception = std::current_exception();
    }
    f->finished = true;
    // Returning lets uc_link switch back to the scheduler's main context.
  }

  const FiberBody& body_;
  std::vector<Fiber> fibers_;
  ucontext_t main_ctx_{};
  Fiber* current_ = nullptr;
  std::size_t stack_bytes_ = 0;

  friend class FiberYield;
  friend void run_fiber_group(std::size_t, const FiberBody&, std::size_t);
};

void FiberYield::barrier() { sched_->yield_current(); }

void run_fiber_group(std::size_t count, const FiberBody& body,
                     std::size_t stack_bytes) {
  if (count == 0) return;
  FiberScheduler sched(count, body, stack_bytes);
  sched.run();
}

void release_fiber_stacks() noexcept { t_stack_pool.clear(); }

}  // namespace mcl::threading
