// Cooperative fibers (ucontext) for OpenCL workitem barriers.
//
// A CPU OpenCL runtime must run every workitem of a workgroup "concurrently"
// enough that barrier(CLK_LOCAL_MEM_FENCE) works. MiniCL's fiber executor
// gives each workitem its own stack; calling barrier() switches back to the
// scheduler, which round-robins all workitems of the group, so every fiber
// observes all stores made before the barrier by its group (same-thread
// execution gives sequential consistency for free). This mirrors how early
// CPU runtimes (e.g. AMD Twin Peaks) implemented workgroups.
//
// Stacks are pooled per thread and reused across workgroups.
#pragma once

#include <cstddef>
#include <functional>

namespace mcl::threading {

class FiberScheduler;

/// Handle given to each fiber body; barrier() suspends until every live
/// fiber in the group reaches a barrier (or finishes).
class FiberYield {
 public:
  /// OpenCL barrier semantics: all workitems of the group must execute the
  /// same number of barrier() calls.
  void barrier();

 private:
  friend class FiberScheduler;
  explicit FiberYield(FiberScheduler& sched) : sched_(&sched) {}
  FiberScheduler* sched_;
};

/// Body invoked once per fiber.
using FiberBody = std::function<void(std::size_t index, FiberYield& yield)>;

/// Runs `count` fibers to completion on the calling thread with barrier
/// support. `stack_bytes` is rounded up to the page size.
void run_fiber_group(std::size_t count, const FiberBody& body,
                     std::size_t stack_bytes = 64 * 1024);

/// Releases this thread's cached fiber stacks (mainly for leak-checking in
/// tests; safe to never call).
void release_fiber_stacks() noexcept;

}  // namespace mcl::threading
