#include "threading/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "prof/metrics.hpp"
#include "threading/affinity.hpp"
#include "trace/trace.hpp"

namespace mcl::threading {

namespace {

// Process-wide count of threads currently executing pool work, sampled into
// the "pool.active" trace counter so worker occupancy is visible on the
// timeline. Only touched while tracing is on.
std::atomic<int> g_active_workers{0};

class OccupancyScope {
 public:
  OccupancyScope() : armed_(trace::enabled()) {
    if (armed_) {
      trace::counter(
          "pool.active",
          static_cast<double>(
              g_active_workers.fetch_add(1, std::memory_order_relaxed) + 1));
    }
  }
  ~OccupancyScope() {
    if (armed_) {
      trace::counter(
          "pool.active",
          static_cast<double>(
              g_active_workers.fetch_sub(1, std::memory_order_relaxed) - 1));
    }
  }
  OccupancyScope(const OccupancyScope&) = delete;
  OccupancyScope& operator=(const OccupancyScope&) = delete;

 private:
  // Snapshot of enabled() at entry so the decrement always balances the
  // increment even if tracing flips mid-scope.
  const bool armed_;
};

// Worker identity of the calling thread: which pool it belongs to (if any)
// and its index there. A bare index is ambiguous — the device pool and the
// queue executor pool both number workers from 0.
thread_local const ThreadPool* tl_worker_pool = nullptr;
thread_local int tl_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, bool pin) {
  if (threads == 0) threads = static_cast<std::size_t>(logical_cpu_count());
  worker_batch_ =
      std::vector<std::atomic<std::shared_ptr<Batch>>>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i, pin] { worker_loop(i, pin); });
  }
}

int ThreadPool::worker_index_here() const noexcept {
  return tl_worker_pool == this ? tl_worker_index : -1;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MCL_PROF_COUNT("pool.tasks", 1);
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

namespace {

constexpr std::uint64_t pack_range(std::uint64_t next, std::uint64_t end) {
  return (next << 32) | end;
}
constexpr std::uint32_t range_next(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xffffffffu);
}

}  // namespace

void ThreadPool::drain_batch_stealing(Batch& batch) {
  const std::size_t nslots = batch.slots.size();
  const std::size_t my_slot =
      batch.participants.fetch_add(1, std::memory_order_relaxed) % nslots;
  const std::size_t my_tally =
      batch.tally_ids.fetch_add(1, std::memory_order_relaxed) %
      batch.executed.size();
  std::size_t executed = 0;

  // Claim `chunk` indices from slot `s` (owner and thief fast-path share the
  // same CAS, so no index is ever double-claimed).
  const auto claim_front = [&](std::size_t s) -> std::pair<std::size_t, std::size_t> {
    std::uint64_t cur = batch.slots[s].load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t n = range_next(cur);
      const std::uint32_t e = range_end(cur);
      if (n >= e) return {0, 0};
      const std::uint32_t take =
          std::min<std::uint32_t>(static_cast<std::uint32_t>(batch.chunk), e - n);
      if (batch.slots[s].compare_exchange_weak(cur, pack_range(n + take, e),
                                               std::memory_order_acq_rel)) {
        return {n, n + take};
      }
    }
  };
  // Steal the upper half of slot `s`'s remaining range into my slot.
  const auto steal_from = [&](std::size_t s) -> bool {
    std::uint64_t cur = batch.slots[s].load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t n = range_next(cur);
      const std::uint32_t e = range_end(cur);
      if (e - n < 2 * batch.chunk) return false;  // not worth splitting
      const std::uint32_t mid = n + (e - n) / 2;
      if (batch.slots[s].compare_exchange_weak(cur, pack_range(n, mid),
                                               std::memory_order_acq_rel)) {
        batch.slots[my_slot].store(pack_range(mid, e),
                                   std::memory_order_release);
        MCL_TRACE_INSTANT("pool.steal", "victim,thief,taken", s, my_slot,
                          e - mid);
        return true;
      }
    }
  };

  for (;;) {
    const auto [b, e] = claim_front(my_slot);
    if (b != e) {
      for (std::size_t i = b; i < e; ++i) (*batch.fn)(i);
      executed += e - b;
      continue;
    }
    // Own slot empty: look for a victim.
    bool stole = false;
    for (std::size_t v = 1; v < nslots && !stole; ++v) {
      stole = steal_from((my_slot + v) % nslots);
    }
    if (!stole) break;
  }
  if (executed > 0) {
    batch.executed[my_tally].fetch_add(executed, std::memory_order_relaxed);
    batch.done.fetch_add(executed, std::memory_order_acq_rel);
  }
}

void ThreadPool::drain_batch(Batch& batch) {
  OccupancyScope occupancy;
  MCL_TRACE_SCOPE("pool.drain");
  if (batch.strategy == ScheduleStrategy::WorkStealing) {
    drain_batch_stealing(batch);
    return;
  }
  std::size_t executed = 0;
  for (;;) {
    const std::size_t begin =
        batch.next.fetch_add(batch.chunk, std::memory_order_relaxed);
    if (begin >= batch.count) break;
    const std::size_t end = std::min(begin + batch.chunk, batch.count);
    for (std::size_t i = begin; i < end; ++i) (*batch.fn)(i);
    batch.done.fetch_add(end - begin, std::memory_order_acq_rel);
    executed += end - begin;
  }
  if (executed > 0) {
    const std::size_t tally =
        batch.tally_ids.fetch_add(1, std::memory_order_relaxed) %
        batch.executed.size();
    batch.executed[tally].fetch_add(executed, std::memory_order_relaxed);
  }
}

RunStats ThreadPool::parallel_run(std::size_t count,
                                  const std::function<void(std::size_t)>& fn,
                                  std::size_t chunk, ScheduleStrategy strategy) {
  return parallel_run_on({0, workers_.size()}, count, fn, chunk, strategy);
}

RunStats ThreadPool::parallel_run_on(WorkerSpan span, std::size_t count,
                                     const std::function<void(std::size_t)>& fn,
                                     std::size_t chunk,
                                     ScheduleStrategy strategy) {
  if (count == 0) return {};
  if (chunk == 0) chunk = 1;
  span.end = std::min(span.end, workers_.size());
  span.begin = std::min(span.begin, span.end);
  MCL_TRACE_SCOPE("pool.batch", "count,chunk,span", count, chunk, span.size());
  MCL_PROF_COUNT("pool.batches", 1);
  MCL_PROF_HIST("pool.batch_groups", count);
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->chunk = chunk;
  batch->fn = &fn;
  batch->strategy = strategy;
  batch->executed =
      std::vector<std::atomic<std::size_t>>(span.size() + 1);
  if (strategy == ScheduleStrategy::WorkStealing) {
    // count must fit the packed 32-bit ranges.
    if (count >= (1ull << 32)) {
      batch->strategy = ScheduleStrategy::CentralCounter;
    } else {
      const std::size_t nslots = span.size() + 1;  // span workers + caller
      batch->slots = std::vector<std::atomic<std::uint64_t>>(nslots);
      const std::size_t per = count / nslots;
      const std::size_t extra = count % nslots;
      std::size_t begin = 0;
      for (std::size_t s = 0; s < nslots; ++s) {
        const std::size_t len = per + (s < extra ? 1 : 0);
        batch->slots[s].store(pack_range(begin, begin + len),
                              std::memory_order_relaxed);
        begin += len;
      }
    }
  }

  // Publish under the lock: a worker evaluates the wait predicate while
  // holding mutex_, so storing + notifying without it can land exactly
  // between the predicate check and the sleep — the worker misses the batch
  // and the caller silently does all the work alone (lost wakeup).
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = span.begin; i < span.end; ++i) {
      worker_batch_[i].store(batch, std::memory_order_release);
    }
  }
  cv_.notify_all();
  drain_batch(*batch);  // the calling thread participates

  std::size_t spins = 0;
  while (batch->done.load(std::memory_order_acquire) < count) {
    if (++spins > 64) std::this_thread::yield();
  }
  // CAS rather than a plain store: only retire *our* batch from each slot,
  // never a newer one another caller may have published since. A worker
  // normally clears its own slot after draining; this sweep covers workers
  // that never woke up before the batch completed.
  for (std::size_t i = span.begin; i < span.end; ++i) {
    std::shared_ptr<Batch> expected = batch;
    worker_batch_[i].compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
  }

  RunStats stats;
  std::size_t total = 0;
  for (const auto& e : batch->executed) {
    const std::size_t v = e.load(std::memory_order_relaxed);
    if (v == 0) continue;
    ++stats.participants;
    total += v;
    stats.max_per_participant = std::max(stats.max_per_participant, v);
  }
  if (stats.participants > 0) {
    stats.imbalance = static_cast<double>(stats.max_per_participant) *
                      static_cast<double>(stats.participants) /
                      static_cast<double>(total);
  }
  return stats;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index, bool pin) {
  if (pin) {
    pin_current_thread(static_cast<int>(worker_index) % logical_cpu_count());
  }
  tl_worker_pool = this;
  tl_worker_index = static_cast<int>(worker_index);
  for (;;) {
    // Help with a batch published to our slot. The shared_ptr copy keeps the
    // batch alive even if the producer finishes and releases it while we
    // drain; a drain of an already-exhausted batch is a no-op (fn is only
    // dereferenced after a successful index claim).
    if (std::shared_ptr<Batch> b =
            worker_batch_[worker_index].load(std::memory_order_acquire);
        b != nullptr) {
      drain_batch(*b);
      // Clear only *our* batch: the slot may already hold a newer one.
      worker_batch_[worker_index].compare_exchange_strong(
          b, nullptr, std::memory_order_acq_rel);
      continue;
    }
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, worker_index] {
        return stop_ || !tasks_.empty() ||
               worker_batch_[worker_index].load(std::memory_order_acquire) !=
                   nullptr;
      });
      if (stop_ && tasks_.empty()) return;
      if (tasks_.empty()) continue;  // woken for a batch; handled above
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    {
      OccupancyScope occupancy;
      MCL_TRACE_SCOPE("pool.task");
      task();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace mcl::threading
