// Fixed-size worker pool.
//
// Two entry points:
//  - submit(): generic fire-and-forget tasks (used by the command queue).
//  - parallel_run(): execute `count` index-addressed tasks and wait. This is
//    the path NDRange launches take: one index = one workgroup, workers pop
//    indices from a shared atomic counter (the same workgroup-stealing scheme
//    CPU OpenCL runtimes use), so per-workgroup scheduling cost is real and
//    measurable.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcl::threading {

/// How parallel_run distributes indices over workers.
enum class ScheduleStrategy {
  /// One shared atomic counter; workers pop chunks from it. Simple, fair,
  /// but every claim contends on one cache line (the default, and what
  /// several CPU OpenCL runtimes shipped).
  CentralCounter,
  /// Per-worker contiguous ranges; an idle worker steals the upper half of
  /// a victim's remaining range (TBB-style). Less contention, better
  /// locality for index-correlated data.
  WorkStealing,
};

/// Per-batch execution statistics (load balance across participants).
struct RunStats {
  std::size_t participants = 0;  ///< threads that executed >= 1 index
  std::size_t max_per_participant = 0;
  /// max / mean over participating threads; 1.0 = perfectly balanced.
  double imbalance = 1.0;
};

/// Half-open range [begin, end) of worker indices — the unit of pool
/// sharding. A sub-device owns one span; spans of sibling sub-devices are
/// disjoint, so their batches never share a worker (and WorkStealing never
/// steals across shards: steal victims are slots of the same batch).
struct WorkerSpan {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return end - begin;
  }
  [[nodiscard]] constexpr bool contains(std::size_t i) const noexcept {
    return i >= begin && i < end;
  }
};

class ThreadPool {
 public:
  /// `threads` == 0 selects logical_cpu_count(). When `pin` is true worker i
  /// is pinned to logical CPU i % logical_cpu_count().
  explicit ThreadPool(std::size_t threads = 0, bool pin = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; runs on some worker eventually.
  void submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool (the calling thread
  /// participates), returning when all indices completed. `chunk` indices
  /// are claimed per counter pop (CentralCounter) or per owner claim
  /// (WorkStealing). Not reentrant: do not call parallel_run from inside fn.
  /// WorkStealing supports counts < 2^32. Returns load-balance statistics.
  RunStats parallel_run(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        std::size_t chunk = 1,
                        ScheduleStrategy strategy = ScheduleStrategy::CentralCounter);

  /// parallel_run restricted to the workers of `span` (plus the calling
  /// thread, which always participates and guarantees completion even if
  /// every spanned worker is busy elsewhere). Concurrent calls on disjoint
  /// spans proceed in parallel with disjoint worker sets — the sub-device
  /// sharding substrate. Concurrent calls on overlapping spans are safe but
  /// contend: a worker helps one batch at a time, and each caller finishes
  /// its own batch regardless.
  RunStats parallel_run_on(WorkerSpan span, std::size_t count,
                           const std::function<void(std::size_t)>& fn,
                           std::size_t chunk = 1,
                           ScheduleStrategy strategy = ScheduleStrategy::CentralCounter);

  /// Index of the calling thread within THIS pool's workers, or -1 when the
  /// caller is not one of this pool's workers (other pools' workers included:
  /// identity is (pool, index), not the bare index). Shard tests use this to
  /// prove a sub-device launch never left its worker span.
  [[nodiscard]] int worker_index_here() const noexcept;

  /// Blocks until all previously submitted tasks have finished.
  void wait_idle();

 private:
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    // WorkStealing state: per-slot packed ranges (next:32 | end:32) and a
    // participant-id dispenser. Slots cover only the batch's span workers
    // plus the caller, so steals stay inside the shard by construction.
    ScheduleStrategy strategy = ScheduleStrategy::CentralCounter;
    std::vector<std::atomic<std::uint64_t>> slots;
    std::atomic<std::size_t> participants{0};
    // Per-participant executed-index tallies (sized span workers + 1).
    std::vector<std::atomic<std::size_t>> executed;
    std::atomic<std::size_t> tally_ids{0};
  };

  void worker_loop(std::size_t worker_index, bool pin);
  static void drain_batch(Batch& batch);
  static void drain_batch_stealing(Batch& batch);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  /// Per-worker active batch slot. Published under mutex_ (ordering against
  /// the workers' cv wait predicate — a lock-free store can land between the
  /// predicate check and the sleep, losing the wakeup) but read lock-free.
  /// A worker drains only its own slot; disjoint spans therefore run
  /// concurrently without sharing any scheduling state.
  std::vector<std::atomic<std::shared_ptr<Batch>>> worker_batch_;
  bool stop_ = false;
};

}  // namespace mcl::threading
