// mcltrace exporters: Chrome/Perfetto trace JSON and the aggregate metrics
// report (per-span-name count/total/p50/p99) printed by the bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mcl::trace {

/// One row of the aggregate metrics report, over all spans sharing a name.
struct MetricSummary {
  std::string name;
  std::size_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Aggregates span durations (Complete spans, plus matched Begin/End pairs
/// per thread) by name; rows sorted by descending total time.
[[nodiscard]] std::vector<MetricSummary> metrics(
    const std::vector<TaggedEvent>& events);

/// Fixed-width table of metrics rows.
[[nodiscard]] std::string metrics_text(const std::vector<MetricSummary>& rows);

/// Chrome trace-event JSON (loads in chrome://tracing and Perfetto).
/// Timestamps are rebased to the earliest event; the absolute steady-clock
/// epoch and the drop count land in "otherData". A dropped count > 0 also
/// emits an "mcltrace.dropped" instant so the truncation is visible on the
/// timeline itself.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TaggedEvent>& events, std::uint64_t dropped);

/// Writes chrome_trace_json(events, dropped) to `path`; false on IO error.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TaggedEvent>& events,
                        std::uint64_t dropped);

/// Convenience: collect() + dropped_events() from the live session, then
/// write. Used by the MCL_TRACE atexit exporter.
bool write_chrome_trace(const std::string& path);

}  // namespace mcl::trace
