// mcltrace session: per-thread SPSC rings, a central drain store, the
// MCL_TRACE env-var autostart, and the string intern pool.
#include "trace/trace.hpp"

#include <bit>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "core/time.hpp"
#include "trace/export.hpp"

namespace mcl::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local std::uint64_t t_context = 0;
}

std::uint64_t clock_ns() noexcept { return core::steady_now_ns(); }

namespace {

// One producer thread, one consumer (the session, always under its mutex).
// head_ is written only by the producer, tail_ only by the consumer; a full
// ring drops the event and bumps drops_ — producers never wait.
struct alignas(64) Ring {
  std::vector<TraceEvent> slots{std::vector<TraceEvent>(kRingCapacity)};
  alignas(64) std::atomic<std::uint64_t> head{0};  // next write index
  alignas(64) std::atomic<std::uint64_t> tail{0};  // next read index
  std::atomic<std::uint64_t> drops{0};
  std::uint32_t tid = 0;
  std::atomic<bool> in_use{false};  // bound to a live thread right now

  bool push(const TraceEvent& ev) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= kRingCapacity) {
      drops.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots[h & (kRingCapacity - 1)] = ev;
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

class Session {
 public:
  static Session& get() {
    // Leaked on purpose: thread_local ring holders and the atexit exporter
    // may outlive static destruction of any non-leaked singleton.
    static Session* const s = new Session;
    return *s;
  }

  Ring* acquire_ring() {
    std::lock_guard lock(mu_);
    for (const std::unique_ptr<Ring>& r : rings_) {
      if (!r->in_use.load(std::memory_order_relaxed)) {
        r->in_use.store(true, std::memory_order_relaxed);
        return r.get();
      }
    }
    rings_.push_back(std::make_unique<Ring>());
    Ring* r = rings_.back().get();
    r->tid = next_tid_++;
    r->in_use.store(true, std::memory_order_relaxed);
    return r;
  }

  // Called from the thread_local holder's destructor on thread exit: drain
  // what the thread wrote (still tagged with its tid), then recycle the
  // ring so short-lived threads (launch_pinned) don't grow rings_ forever.
  void release_ring(Ring* r) {
    std::lock_guard lock(mu_);
    drain_one_locked(*r);
    r->in_use.store(false, std::memory_order_relaxed);
  }

  void start(std::uint32_t drain_interval_ms) {
    stop();
    std::lock_guard lock(mu_);
    store_.clear();
    store_drops_ = 0;
    for (const std::unique_ptr<Ring>& r : rings_) {
      r->tail.store(r->head.load(std::memory_order_acquire),
                    std::memory_order_release);
      r->drops.store(0, std::memory_order_relaxed);
    }
    if (drain_interval_ms > 0) {
      drainer_quit_ = false;
      drainer_ = std::thread([this, drain_interval_ms] {
        std::unique_lock lock(mu_);
        while (!drainer_quit_) {
          drain_all_locked();
          cv_.wait_for(lock, std::chrono::milliseconds(drain_interval_ms),
                       [this] { return drainer_quit_; });
        }
      });
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
  }

  void stop() {
    detail::g_enabled.store(false, std::memory_order_relaxed);
    std::thread joiner;
    {
      std::lock_guard lock(mu_);
      drainer_quit_ = true;
      joiner = std::move(drainer_);
    }
    cv_.notify_all();
    if (joiner.joinable()) joiner.join();
    std::lock_guard lock(mu_);
    drain_all_locked();
  }

  std::uint64_t dropped() {
    std::lock_guard lock(mu_);
    std::uint64_t n = store_drops_;
    for (const std::unique_ptr<Ring>& r : rings_)
      n += r->drops.load(std::memory_order_relaxed);
    return n;
  }

  std::size_t thread_count() {
    std::lock_guard lock(mu_);
    return rings_.size();
  }

  std::vector<TaggedEvent> collect() {
    std::lock_guard lock(mu_);
    drain_all_locked();
    return store_;
  }

  void flush() {
    std::lock_guard lock(mu_);
    drain_all_locked();
  }

  const char* intern(const char* name) {
    std::lock_guard lock(mu_);
    return interned_.emplace(name).first->c_str();
  }

 private:
  void drain_one_locked(Ring& r) {
    const std::uint64_t h = r.head.load(std::memory_order_acquire);
    std::uint64_t t = r.tail.load(std::memory_order_relaxed);
    for (; t != h; ++t) {
      if (store_.size() >= kMaxStoreEvents) {
        ++store_drops_;
        continue;
      }
      store_.push_back({r.tid, r.slots[t & (kRingCapacity - 1)]});
    }
    r.tail.store(t, std::memory_order_release);
  }

  void drain_all_locked() {
    for (const std::unique_ptr<Ring>& r : rings_) drain_one_locked(*r);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<TaggedEvent> store_;
  std::uint64_t store_drops_ = 0;
  std::uint32_t next_tid_ = 1;
  bool drainer_quit_ = true;
  std::thread drainer_;
  std::unordered_set<std::string> interned_;
};

// Binds the calling thread to a ring for its lifetime; returns it to the
// session's free list on thread exit.
struct RingHolder {
  Ring* ring = nullptr;
  ~RingHolder() {
    if (ring != nullptr) Session::get().release_ring(ring);
  }
};

Ring& thread_ring() {
  thread_local RingHolder holder;
  if (holder.ring == nullptr) holder.ring = Session::get().acquire_ring();
  return *holder.ring;
}

void emit(EventType type, const char* name, const char* arg_keys,
          std::uint64_t ts_ns, std::uint64_t dur_ns, std::uint64_t a0,
          std::uint64_t a1, std::uint64_t a2) {
  TraceEvent ev;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.name = name;
  ev.arg_keys = arg_keys;
  ev.args[0] = a0;
  ev.args[1] = a1;
  ev.args[2] = a2;
  ev.ctx = detail::t_context;
  ev.type = type;
  thread_ring().push(ev);
}

// MCL_TRACE=path.json starts tracing before main() and exports at exit.
struct EnvAutoStart {
  EnvAutoStart() {
    const char* path = std::getenv("MCL_TRACE");
    if (path == nullptr || *path == '\0') return;
    static std::string out_path;  // alive for the atexit handler
    out_path = path;
    start();
    std::atexit([] {
      stop();
      const std::uint64_t dropped = dropped_events();
      const std::vector<TaggedEvent> events = collect();
      if (write_chrome_trace(out_path, events, dropped)) {
        std::fprintf(stderr, "mcltrace: wrote %s (%zu events, %llu dropped)\n",
                     out_path.c_str(), events.size(),
                     static_cast<unsigned long long>(dropped));
      } else {
        std::fprintf(stderr, "mcltrace: failed to write %s\n",
                     out_path.c_str());
      }
    });
  }
};
const EnvAutoStart g_env_autostart;

}  // namespace

void start(std::uint32_t drain_interval_ms) {
  Session::get().start(drain_interval_ms);
}

void stop() { Session::get().stop(); }

std::uint64_t dropped_events() { return Session::get().dropped(); }

std::size_t registered_threads() { return Session::get().thread_count(); }

std::vector<TaggedEvent> collect() { return Session::get().collect(); }

void flush() { Session::get().flush(); }

std::uint32_t current_thread_id() { return thread_ring().tid; }

const char* intern(const char* name) { return Session::get().intern(name); }

const char* intern(const std::string& name) {
  return Session::get().intern(name.c_str());
}

void span_begin(const char* name, const char* arg_keys, std::uint64_t a0,
                std::uint64_t a1, std::uint64_t a2) {
  if (!enabled()) return;
  emit(EventType::Begin, name, arg_keys, clock_ns(), 0, a0, a1, a2);
}

void span_end(const char* name) {
  if (!enabled()) return;
  emit(EventType::End, name, nullptr, clock_ns(), 0, 0, 0, 0);
}

void complete_span(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                   const char* arg_keys, std::uint64_t a0, std::uint64_t a1,
                   std::uint64_t a2) {
  if (!enabled()) return;
  emit(EventType::Complete, name, arg_keys, ts_ns, dur_ns, a0, a1, a2);
}

void instant(const char* name, const char* arg_keys, std::uint64_t a0,
             std::uint64_t a1, std::uint64_t a2) {
  if (!enabled()) return;
  emit(EventType::Instant, name, arg_keys, clock_ns(), 0, a0, a1, a2);
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  emit(EventType::Counter, name, nullptr, clock_ns(), 0,
       std::bit_cast<std::uint64_t>(value), 0, 0);
}

void counter_at(const char* name, std::uint64_t ts_ns, double value) {
  if (!enabled()) return;
  emit(EventType::Counter, name, nullptr, ts_ns, 0,
       std::bit_cast<std::uint64_t>(value), 0, 0);
}

}  // namespace mcl::trace
