// mcltrace — always-compiled, runtime-gated tracing and metrics for MiniCL.
//
// Model: every instrumented thread owns a lock-free single-producer /
// single-consumer ring of fixed-size TraceEvents (~64 B each). A central
// session registers rings on a thread's first event, drains them (from a
// background drainer thread, or on demand) into one store, and never blocks
// a producer: when a ring is full the event is dropped and counted, never
// queued. Drop counts are surfaced in the exported JSON, the bench summary
// and the mclsan lint path (san::lint_trace) instead of silently truncating
// the timeline.
//
// Cost when tracing is off: every instrumentation site performs exactly one
// relaxed atomic load (enabled()) and branches out; no ring is allocated,
// no clock is read. `bench/gbench_micro` guards this
// (BM_TraceScopeDisabled).
//
// Timestamps are absolute std::chrono::steady_clock nanoseconds
// (core::steady_now_ns) — the same epoch AsyncEvent::profiling_ns() uses —
// so queue profiling timestamps and trace spans align on one exported
// timeline. tests/trace_test.cpp has the shared-epoch regression test.
//
// See docs/tracing.md for the event model and Perfetto workflow.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcl::trace {

/// Events a thread can hold before the drainer catches up; power of two.
inline constexpr std::size_t kRingCapacity = std::size_t{1} << 13;

/// Central store cap; past this, drained events are dropped and counted.
inline constexpr std::size_t kMaxStoreEvents = std::size_t{1} << 20;

enum class EventType : std::uint8_t {
  Begin,     ///< open a span on this thread (Chrome ph "B")
  End,       ///< close the innermost open span (Chrome ph "E")
  Complete,  ///< a finished span with explicit duration (Chrome ph "X")
  Instant,   ///< a point marker (Chrome ph "i")
  Counter,   ///< a named value sample (Chrome ph "C"); args[0] holds the
             ///< bit pattern of a double
};

/// One fixed-size trace record. `name` and `arg_keys` must point at storage
/// that outlives the session: string literals or intern()ed strings.
/// `arg_keys` is a comma-separated key list ("group,worker,est_bytes")
/// naming the leading entries of `args` for the exporter. `ctx` is the
/// mclobs causal context id of the thread at emit time (0 = unattributed);
/// the exporter surfaces it as an extra "ctx" arg so every span in the
/// Perfetto timeline is attributable to a tenant/request.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< Complete spans only
  const char* name = nullptr;
  const char* arg_keys = nullptr;
  std::uint64_t args[3] = {0, 0, 0};
  std::uint64_t ctx = 0;  ///< causal context id (mcl::obs), 0 = none
  EventType type = EventType::Instant;
};
static_assert(sizeof(TraceEvent) <= 72, "trace events must stay ring-sized");

/// A drained event plus the id of the thread that produced it.
struct TaggedEvent {
  std::uint32_t tid = 0;
  TraceEvent event;
};

namespace detail {
extern std::atomic<bool> g_enabled;
extern thread_local std::uint64_t t_context;
}

/// True when a trace session is recording. The only cost paid at an
/// instrumentation site when tracing is off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Absolute steady-clock nanoseconds (core::steady_now_ns) — shares the
/// AsyncEvent::profiling_ns() epoch.
[[nodiscard]] std::uint64_t clock_ns() noexcept;

/// Starts (or restarts) recording: clears the store and every ring, resets
/// drop counts, then enables tracing. With drain_interval_ms > 0 a
/// background thread drains rings periodically; 0 leaves draining to stop()
/// and collect() — useful for deterministic wraparound tests. Not
/// re-entrant against a concurrent start()/stop().
void start(std::uint32_t drain_interval_ms = 10);

/// Disables tracing, joins the drainer, and drains every ring.
void stop();

/// Events dropped so far (full rings + store overflow).
[[nodiscard]] std::uint64_t dropped_events();

/// Number of thread rings ever registered with the session.
[[nodiscard]] std::size_t registered_threads();

/// Drains all rings and returns a snapshot of the store.
[[nodiscard]] std::vector<TaggedEvent> collect();

/// Synchronously drains every ring into the store (serialized with the
/// background drainer on the session lock). Deterministic backpressure:
/// a producer that flushes at least once per kRingCapacity events can
/// never overflow its ring, however slowly the drainer is scheduled.
void flush();

/// Stable id of the calling thread's ring (registers one if needed).
[[nodiscard]] std::uint32_t current_thread_id();

/// Copies `name` into a leaked pool and returns a stable pointer, deduped.
/// Use for dynamic names (kernel names, C-API callers); literals don't
/// need it.
[[nodiscard]] const char* intern(const char* name);
[[nodiscard]] const char* intern(const std::string& name);

/// Causal context id of the calling thread (0 = unattributed). Every event
/// emitted while a context is set carries it, so downstream tooling
/// (mclobs, Perfetto queries) can group spans by tenant/request. Contexts
/// are minted by mcl::obs; trace only provides the thread-local plumbing
/// so the lowest layer stays dependency-free.
[[nodiscard]] inline std::uint64_t current_context() noexcept {
  return detail::t_context;
}
inline void set_context(std::uint64_t ctx) noexcept { detail::t_context = ctx; }

/// RAII: installs `ctx` as the calling thread's causal context for the
/// enclosing scope and restores the previous value on exit. A zero ctx
/// disarms the scope (the outer context, if any, stays visible), so
/// call sites don't need to branch on attribution being available.
class ContextScope {
 public:
  explicit ContextScope(std::uint64_t ctx) noexcept {
    if (ctx == 0) return;
    armed_ = true;
    saved_ = detail::t_context;
    detail::t_context = ctx;
  }
  ~ContextScope() {
    if (armed_) detail::t_context = saved_;
  }
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  std::uint64_t saved_ = 0;
  bool armed_ = false;
};

/// Raw emitters. All are no-ops (after one relaxed load) when disabled.
void span_begin(const char* name, const char* arg_keys = nullptr,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                std::uint64_t a2 = 0);
void span_end(const char* name);
/// A finished span with caller-provided timestamps — lets queue.cpp emit
/// command spans that exactly match ProfilingInfo.
void complete_span(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                   const char* arg_keys = nullptr, std::uint64_t a0 = 0,
                   std::uint64_t a1 = 0, std::uint64_t a2 = 0);
void instant(const char* name, const char* arg_keys = nullptr,
             std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0);
void counter(const char* name, double value);
/// A counter sample with a caller-provided timestamp — lets mclprof stamp
/// per-launch IPC/GB/s samples at the launch end time on the shared epoch.
void counter_at(const char* name, std::uint64_t ts_ns, double value);

/// RAII span: one relaxed load when tracing is off; when on, records a
/// Complete event spanning construction to destruction. A null `name`
/// disarms the span (callers can skip intern() work when disabled).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* arg_keys = nullptr,
                      std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                      std::uint64_t a2 = 0) noexcept {
    if (!enabled() || name == nullptr) return;
    name_ = name;
    arg_keys_ = arg_keys;
    args_[0] = a0;
    args_[1] = a1;
    args_[2] = a2;
    t0_ns_ = clock_ns();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      complete_span(name_, t0_ns_, clock_ns() - t0_ns_, arg_keys_, args_[0],
                    args_[1], args_[2]);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* arg_keys_ = nullptr;
  std::uint64_t args_[3] = {0, 0, 0};
  std::uint64_t t0_ns_ = 0;
};

#define MCL_TRACE_CAT2(a, b) a##b
#define MCL_TRACE_CAT(a, b) MCL_TRACE_CAT2(a, b)

/// Span covering the enclosing scope: MCL_TRACE_SCOPE("name"[, arg_keys,
/// a0, a1, a2]).
#define MCL_TRACE_SCOPE(...) \
  ::mcl::trace::ScopedSpan MCL_TRACE_CAT(mcl_trace_span_, __LINE__)(__VA_ARGS__)

/// Point marker: MCL_TRACE_INSTANT("name"[, arg_keys, a0, a1, a2]).
#define MCL_TRACE_INSTANT(...) ::mcl::trace::instant(__VA_ARGS__)

/// Value sample: MCL_TRACE_COUNTER("name", value).
#define MCL_TRACE_COUNTER(name, value) ::mcl::trace::counter((name), (value))

}  // namespace mcl::trace
