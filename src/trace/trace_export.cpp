#include "trace/export.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace mcl::trace {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with sub-ns-loss-free 3 decimals, as Chrome expects.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

// Splits "group,worker,est_bytes" and pairs keys with args in order; a
// nonzero causal context id rides along as a trailing "ctx" arg so
// Perfetto queries can group spans by tenant/request.
void append_args(std::string& out, const TraceEvent& ev) {
  const bool have_keys = ev.arg_keys != nullptr && *ev.arg_keys != '\0';
  if (!have_keys && ev.ctx == 0) return;
  out += ",\"args\":{";
  char buf[24];
  bool first = true;
  if (have_keys) {
    const char* p = ev.arg_keys;
    for (std::size_t i = 0; i < 3 && *p != '\0'; ++i) {
      const char* end = p;
      while (*end != '\0' && *end != ',') ++end;
      if (!first) out += ',';
      first = false;
      out += '"';
      out.append(p, static_cast<std::size_t>(end - p));
      out += "\":";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.args[i]);
      out += buf;
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (ev.ctx != 0) {
    if (!first) out += ',';
    out += "\"ctx\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.ctx);
    out += buf;
  }
  out += '}';
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

std::vector<MetricSummary> metrics(const std::vector<TaggedEvent>& events) {
  // Durations per span name; Begin events wait on a per-thread stack for
  // their End (unbalanced leftovers are ignored).
  std::map<std::string, std::vector<double>> durs_ms;
  std::unordered_map<std::uint32_t, std::vector<const TaggedEvent*>> open;
  for (const TaggedEvent& te : events) {
    switch (te.event.type) {
      case EventType::Complete:
        durs_ms[te.event.name].push_back(static_cast<double>(te.event.dur_ns) /
                                         1e6);
        break;
      case EventType::Begin:
        open[te.tid].push_back(&te);
        break;
      case EventType::End: {
        std::vector<const TaggedEvent*>& stack = open[te.tid];
        if (stack.empty()) break;
        const TaggedEvent* b = stack.back();
        stack.pop_back();
        if (te.event.ts_ns >= b->event.ts_ns) {
          durs_ms[b->event.name].push_back(
              static_cast<double>(te.event.ts_ns - b->event.ts_ns) / 1e6);
        }
        break;
      }
      default:
        break;
    }
  }
  std::vector<MetricSummary> rows;
  rows.reserve(durs_ms.size());
  for (auto& [name, durs] : durs_ms) {
    std::sort(durs.begin(), durs.end());
    MetricSummary row;
    row.name = name;
    row.count = durs.size();
    for (double d : durs) row.total_ms += d;
    row.p50_ms = percentile(durs, 0.50);
    row.p99_ms = percentile(durs, 0.99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricSummary& a, const MetricSummary& b) {
              return a.total_ms > b.total_ms;
            });
  return rows;
}

std::string metrics_text(const std::vector<MetricSummary>& rows) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %12s\n", "span",
                "count", "total_ms", "p50_ms", "p99_ms");
  out << line;
  for (const MetricSummary& r : rows) {
    std::snprintf(line, sizeof(line), "%-32s %10zu %12.3f %12.4f %12.4f\n",
                  r.name.c_str(), r.count, r.total_ms, r.p50_ms, r.p99_ms);
    out << line;
  }
  return out.str();
}

std::string chrome_trace_json(const std::vector<TaggedEvent>& events,
                              std::uint64_t dropped) {
  std::vector<const TaggedEvent*> sorted;
  sorted.reserve(events.size());
  for (const TaggedEvent& te : events) sorted.push_back(&te);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TaggedEvent* a, const TaggedEvent* b) {
                     return a->event.ts_ns < b->event.ts_ns;
                   });
  const std::uint64_t base =
      sorted.empty() ? 0 : sorted.front()->event.ts_ns;

  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":"
         "\"steady_clock\",\"epoch_ns\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, base);
  out += buf;
  out += ",\"dropped_events\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped);
  out += buf;
  out += "},\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"minicl\"}}";
  if (dropped > 0) {
    out += ",{\"name\":\"mcltrace.dropped\",\"ph\":\"i\",\"s\":\"g\","
           "\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"count\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped);
    out += buf;
    out += "}}";
  }
  for (const TaggedEvent* te : sorted) {
    const TraceEvent& ev = te->event;
    out += ",\n{\"name\":\"";
    append_escaped(out, ev.name != nullptr ? ev.name : "?");
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", te->tid);
    out += buf;
    out += ",\"ts\":";
    append_us(out, ev.ts_ns - base);
    switch (ev.type) {
      case EventType::Complete:
        out += ",\"ph\":\"X\",\"dur\":";
        append_us(out, ev.dur_ns);
        append_args(out, ev);
        break;
      case EventType::Begin:
        out += ",\"ph\":\"B\"";
        append_args(out, ev);
        break;
      case EventType::End:
        out += ",\"ph\":\"E\"";
        break;
      case EventType::Instant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        append_args(out, ev);
        break;
      case EventType::Counter: {
        out += ",\"ph\":\"C\",\"args\":{\"value\":";
        std::snprintf(buf, sizeof(buf), "%g",
                      std::bit_cast<double>(ev.args[0]));
        out += buf;
        out += '}';
        break;
      }
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TaggedEvent>& events,
                        std::uint64_t dropped) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string json = chrome_trace_json(events, dropped);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

bool write_chrome_trace(const std::string& path) {
  return write_chrome_trace(path, collect(), dropped_events());
}

}  // namespace mcl::trace
