// MCL_TUNE_CACHE persistence: versioned, checksummed, generation-guarded.
//
// Text format (one token stream per line, space-separated):
//
//   mcltune v2
//   row <key-with-spaces-escaped> <generation> <dims> <l0> <l1> <l2>
//       <exec> <chunk_div> <sched> <map> <best_ns>
//   ...
//   checksum <fnv1a64-hex-of-all-preceding-bytes>
//
// (v2: the entry key grew a |aB local-memory-args suffix; v1 files are
// rejected whole so a pre-suffix key can never alias a new one.)
//
// Only CONVERGED entries are saved — a warm process loads rows as converged
// single-candidate entries and therefore never explores (the tune.explore==0
// acceptance criterion). Keys never contain spaces
// (kernel|gNxNxN|l...|tN|aB), so no escaping is actually needed; the loader
// still rejects malformed rows. Generation is a weak guard (a per-process
// registration counter), so warm rows are additionally legality-checked
// against the live KernelDef on their first decide() — see
// Tuner::find_or_create.
//
// Failure policy: a missing header, version mismatch, missing/incorrect
// checksum trailer, or any truncation rejects the WHOLE file (cold start is
// always safe; a half-trusted cache is not). A row whose generation differs
// from the kernel's current KernelIrRegistry generation is skipped
// individually — the kernel was re-registered since the cache was written.
//
// Writer: serialize to <path>.tmp.<pid>.<n>, then ::rename() over the
// target.
// rename(2) is atomic within a filesystem, so concurrent writers interleave
// to "one of the complete files", never a torn mix.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "tune/tune.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::tune {
namespace {

constexpr const char* kHeader = "mcltune v2";

std::uint64_t fnv1a64_bytes(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

int executor_code(ocl::ExecutorKind k) {
  switch (k) {
    case ocl::ExecutorKind::Auto: return 0;
    case ocl::ExecutorKind::Loop: return 1;
    case ocl::ExecutorKind::Fiber: return 2;
    case ocl::ExecutorKind::Simd: return 3;
    case ocl::ExecutorKind::Checked: return 4;
  }
  return 0;
}

bool executor_from_code(int code, ocl::ExecutorKind& out) {
  switch (code) {
    case 0: out = ocl::ExecutorKind::Auto; return true;
    case 1: out = ocl::ExecutorKind::Loop; return true;
    case 2: out = ocl::ExecutorKind::Fiber; return true;
    case 3: out = ocl::ExecutorKind::Simd; return true;
    // Checked is deliberately not loadable: the sanitizer executor must
    // never be installed by a (possibly hand-edited) cache file.
    default: return false;
  }
}

}  // namespace

bool Tuner::save_cache(const std::string& path) const {
  std::ostringstream body;
  body << kHeader << "\n";
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, entry] : entries_) {
      if (!entry.converged) continue;
      const CandidateState& best = entry.candidates[entry.incumbent];
      const TunedConfig& cfg = best.config;
      body << "row " << key << " " << entry.generation << " "
           << cfg.local.dims << " " << cfg.local.size[0] << " "
           << cfg.local.size[1] << " " << cfg.local.size[2] << " "
           << executor_code(cfg.executor) << " " << cfg.chunk_divisor << " "
           << (cfg.scheduler == threading::ScheduleStrategy::WorkStealing ? 1
                                                                          : 0)
           << " " << (cfg.prefer_map ? 1 : 0) << " "
           << static_cast<std::uint64_t>(best.best_seconds * 1e9) << "\n";
    }
  }
  std::string payload = body.str();
  {
    std::ostringstream trailer;
    trailer << "checksum " << std::hex << fnv1a64_bytes(payload) << "\n";
    payload += trailer.str();
  }

  // Unique per call, not just per process: two threads saving concurrently
  // must not interleave into one temp file (rename would publish the tear).
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << payload;
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t Tuner::load_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();

  // Split off the checksum trailer (the last line) and verify it covers
  // every byte before it.
  const std::size_t last_nl = contents.rfind('\n');
  if (last_nl == std::string::npos) return 0;
  const std::size_t prev_nl = contents.rfind('\n', last_nl - 1);
  if (prev_nl == std::string::npos) return 0;
  const std::string trailer = contents.substr(prev_nl + 1, last_nl - prev_nl - 1);
  const std::string payload = contents.substr(0, prev_nl + 1);
  {
    std::istringstream ts(trailer);
    std::string word;
    std::uint64_t claimed = 0;
    if (!(ts >> word) || word != "checksum" || !(ts >> std::hex >> claimed) ||
        claimed != fnv1a64_bytes(payload)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_rows_rejected;
      return 0;
    }
  }

  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line) || line != kHeader) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cache_rows_rejected;
    return 0;
  }

  std::size_t accepted = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string tag, key;
    std::uint64_t generation = 0;
    std::size_t dims = 0, l0 = 0, l1 = 0, l2 = 0, chunk_div = 0;
    int exec_code = 0, steal = 0, map = 0;
    std::uint64_t best_ns = 0;
    if (!(row >> tag >> key >> generation >> dims >> l0 >> l1 >> l2 >>
          exec_code >> chunk_div >> steal >> map >> best_ns) ||
        tag != "row" || dims > 3 || chunk_div == 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_rows_rejected;
      continue;
    }
    TunedConfig cfg;
    if (!executor_from_code(exec_code, cfg.executor)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_rows_rejected;
      continue;
    }
    cfg.local.dims = dims;
    cfg.local.size[0] = dims > 0 ? l0 : 0;
    cfg.local.size[1] = dims > 1 ? l1 : (dims > 0 ? 1 : 0);
    cfg.local.size[2] = dims > 2 ? l2 : (dims > 0 ? 1 : 0);
    cfg.chunk_divisor = chunk_div;
    cfg.scheduler = steal != 0 ? threading::ScheduleStrategy::WorkStealing
                               : threading::ScheduleStrategy::CentralCounter;
    cfg.prefer_map = map != 0;

    // Generation guard: the row's kernel name is the key prefix up to '|'.
    const std::string kernel = key.substr(0, key.find('|'));
    const std::uint64_t current =
        veclegal::KernelIrRegistry::instance().generation(kernel);
    if (generation != current) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_rows_rejected;
      continue;
    }

    Entry entry;
    entry.kernel = kernel;
    entry.generation = generation;
    CandidateState cs;
    cs.config = cfg;
    cs.best_seconds = static_cast<double>(best_ns) * 1e-9;
    cs.trials = 1;
    entry.candidates.push_back(std::move(cs));
    entry.incumbent = 0;
    entry.converged = true;  // warm entries never explore
    entry.from_cache = true;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_[key] = std::move(entry);
      ++stats_.cache_rows_loaded;
    }
    ++accepted;
  }
  return accepted;
}

}  // namespace mcl::tune
