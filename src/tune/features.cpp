// Feature extraction: KernelFacts + cachesim replay -> tune::Features.
//
// The vector follows the architecture-independent feature set of Chilukuri &
// Milthorpe ("Characterizing Optimizations to Memory Access Patterns using
// Architecture-Independent Program Features"): memory entropy over the
// stride-class distribution, reuse distance class, arithmetic intensity,
// unit-stride fraction — all computed from the DECLARED access stream
// (veclegal IR via mclverify facts), never from hardware counters, so the
// same vector ranks candidates on any device. One machine-DEPENDENT summary
// rides along: a cachesim replay of the access stream over a model shape
// yields the modal hit level (locality class), which the cost model uses to
// size workgroups against the paper machine's cache ladder.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>

#include "cachesim/hierarchy.hpp"
#include "tune/tune.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/verify.hpp"

namespace mcl::tune {
namespace {

/// Model launch for the cachesim replay: enough items to spill L1 on a
/// multi-array unit-stride stream, few enough to keep registration cheap.
constexpr std::size_t kReplayItems = 4096;
constexpr std::size_t kReplayAccessCap = 32 * 1024;

/// Replays the declared affine access stream of every array through a
/// single-core cachesim machine and returns (modal hit level, avg cycles).
/// Arrays are laid out at disjoint 16 MiB-aligned bases so cross-array
/// conflicts model real separate allocations.
void replay_locality(const verify::KernelFacts& facts, Features& out) {
  cachesim::Machine machine{cachesim::MachineConfig::xeon_e5645(1)};
  std::uint64_t hits_by_level[6] = {0, 0, 0, 0, 0, 0};
  std::uint64_t total_cycles = 0;
  std::uint64_t total_accesses = 0;
  for (std::size_t item = 0; item < kReplayItems; ++item) {
    for (const verify::ArrayFacts& a : facts.arrays) {
      const std::uint64_t base = std::uint64_t(a.array + 1) << 24;
      for (const verify::AccessFacts& acc : a.accesses) {
        if (total_accesses >= kReplayAccessCap) break;
        const long long idx =
            acc.scale * static_cast<long long>(item) + acc.offset;
        if (idx < 0) continue;
        const std::uint64_t addr =
            base + static_cast<std::uint64_t>(idx) * a.elem_bytes;
        const cachesim::AccessResult r =
            machine.access(0, addr, a.elem_bytes, acc.is_write);
        if (r.hit_level >= 1 && r.hit_level <= 5) {
          ++hits_by_level[r.hit_level];
        }
        total_cycles += r.cycles;
        ++total_accesses;
      }
    }
  }
  if (total_accesses == 0) return;
  int modal = 1;
  for (int level = 1; level <= 5; ++level) {
    if (hits_by_level[level] > hits_by_level[modal]) modal = level;
  }
  out.locality_class = modal == 5 ? 4 : modal;  // remote folds into memory
  out.sim_cycles_per_access =
      static_cast<double>(total_cycles) / static_cast<double>(total_accesses);
}

Features compute_features(const ocl::KernelDef& def) {
  Features f;
  f.barrier = def.needs_barrier;
  f.has_simd_form = def.simd != nullptr;
  f.has_workgroup_form = def.workgroup != nullptr;

  const std::shared_ptr<const verify::KernelFacts> facts =
      verify::facts_for(def.name);
  if (!facts) return f;  // no IR registered: have_facts stays false
  f.have_facts = true;

  // Stride-class histogram over every declared access, weighted equally per
  // access (the per-item weighting of the paper's dynamic traces collapses
  // to this under an affine single-loop model: every access runs once/item).
  std::map<long long, std::size_t> stride_hist;
  std::size_t accesses = 0;
  std::size_t unit = 0;
  double bytes_per_item = 0.0;
  for (const verify::ArrayFacts& a : facts->arrays) {
    for (const verify::AccessFacts& acc : a.accesses) {
      const long long cls = std::llabs(acc.scale);
      ++stride_hist[cls];
      ++accesses;
      if (cls <= 1) ++unit;
      bytes_per_item += static_cast<double>(a.elem_bytes);
    }
    if (a.local) f.local_mem = true;
    if (a.read_pattern == verify::Pattern::Gather ||
        a.write_pattern == verify::Pattern::Scatter) {
      f.gather_scatter = true;
    }
    if (!a.race_free && (a.written || a.read)) f.race_free = false;
    switch (a.reuse) {
      case verify::Reuse::Both:
        f.reuse_score = std::max(f.reuse_score, 1.0);
        break;
      case verify::Reuse::Spatial:
      case verify::Reuse::Temporal:
        f.reuse_score = std::max(f.reuse_score, 0.5);
        break;
      case verify::Reuse::None:
        break;
    }
  }
  if (accesses > 0) {
    f.unit_stride_fraction =
        static_cast<double>(unit) / static_cast<double>(accesses);
    // Shannon entropy of the stride-class distribution, in bits.
    double entropy = 0.0;
    std::size_t dominant_count = 0;
    for (const auto& [cls, count] : stride_hist) {
      const double p =
          static_cast<double>(count) / static_cast<double>(accesses);
      entropy -= p * std::log2(p);
      if (count > dominant_count) {
        dominant_count = count;
        f.dominant_stride = cls;
      }
    }
    f.memory_entropy = entropy;
  }

  // Arithmetic intensity proxy: compute statements per byte moved per item.
  // The IR has no flop counts, so every non-barrier statement counts as one
  // "op"; the RATIO is what the cost model consumes, not absolute flops/B.
  const veclegal::KernelIr* ir =
      veclegal::KernelIrRegistry::instance().find(def.name);
  if (ir != nullptr && bytes_per_item > 0.0) {
    std::size_t ops = 0;
    for (const veclegal::Stmt& s : ir->body.stmts) {
      if (!s.barrier) ++ops;
      if (s.barrier) f.barrier = true;
      if (s.divergent || s.guard_temp.has_value()) f.divergent_guards = true;
    }
    f.arithmetic_intensity = static_cast<double>(ops) / bytes_per_item;
  }
  if (facts->barrier_divergence_possible) f.divergent_guards = true;

  replay_locality(*facts, f);
  return f;
}

}  // namespace

Features features_for(const ocl::KernelDef& def) {
  // Memoized in the IR registry's analysis cache: re-registering the kernel
  // drops the entry with every other derived fact, for free.
  const std::shared_ptr<const Features> cached =
      veclegal::KernelIrRegistry::instance().memoize<Features>(
          def.name, "tune.features", [&] { return compute_features(def); });
  return *cached;
}

}  // namespace mcl::tune
