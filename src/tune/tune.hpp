// mcltune: self-tuning runtime — closes the loop from measurement to policy.
//
// For seven PRs the runtime has measured everything (mclprof IPC/GB/s,
// cachesim, mclverify KernelFacts) while every launch knob the source paper
// shows is worth 1.5-10x — workgroup size, executor choice, chunking,
// dispatch order, map-vs-copy plan — stayed hand-set per bench. The Tuner
// turns that observability into policy, per (kernel, shape-class, device)
// key:
//
//   1. static features from mclverify KernelFacts + a cachesim replay of the
//      declared affine access stream (stride/locality class, reuse, memory
//      entropy, arithmetic intensity, barrier/local-memory use) — the
//      architecture-independent feature set of Chilukuri & Milthorpe;
//   2. a cost model seeded from those features ranks candidate configs
//      (workgroup size, executor {loop/fiber/simd; Checked excluded}, chunk
//      divisor, dispatch order, map-vs-copy plan), pruning every candidate
//      veclegal/mclverify legality rules reject (barrier kernels never get
//      Loop/Simd, Simd needs a registered simd form, locals must divide the
//      global size, kernels with local-memory args keep their caller-sized
//      local);
//   3. online refinement from repeated-launch timing via a bounded
//      explore/exploit policy: round-robin trials over the top-ranked
//      candidates, epsilon-greedy afterwards, with a regression guard that
//      quarantines any config measurably worse than the incumbent;
//   4. persistence to an MCL_TUNE_CACHE file (versioned, checksummed,
//      invalidated by KernelIrRegistry generation counters) so warm
//      processes skip exploration entirely.
//
// Launch-path wiring lives in ocl::CpuDevice::launch behind
// MCL_TUNE={off,seed,online}; the C API exposes mclSetTuning /
// mclGetTunedConfig. Decisions surface as "tune.decide:<kernel>" trace
// instants and tune.* metrics. See docs/tune.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "threading/thread_pool.hpp"

namespace mcl::tune {

/// MCL_TUNE values. Off: the launch path is untouched (one relaxed load).
/// Seed: the cost model's top-ranked config is applied, no exploration.
/// Online: seed + bounded explore/exploit refinement from measured seconds.
enum class Mode { Off, Seed, Online };

[[nodiscard]] const char* to_string(Mode m) noexcept;

/// One concrete knob setting the tuner can apply to a launch.
struct TunedConfig {
  /// Workgroup size override; null means "leave the caller/runtime choice".
  /// Only applied when the caller passed NullRange and the kernel binds no
  /// local-memory args (their size was chosen for the caller's local).
  ocl::NDRange local;
  ocl::ExecutorKind executor = ocl::ExecutorKind::Auto;
  /// Replaces the launch path's fixed divisor in
  /// chunk = clamp(total_groups / (threads * chunk_divisor), 1, 64).
  std::size_t chunk_divisor = 16;
  /// Workgroup dispatch order (the paper's scheduling axis).
  threading::ScheduleStrategy scheduler =
      threading::ScheduleStrategy::CentralCounter;
  /// Transfer-plan advice: map/unmap instead of explicit copies. Advisory —
  /// the launch path does not move data; benches and mclGetTunedConfig
  /// consume it (on the CPU mapping is zero-copy, paper Fig 7/8).
  bool prefer_map = true;

  [[nodiscard]] std::string to_string() const;
};

/// Architecture-independent feature vector of one kernel (cached per
/// (kernel, IR generation) in the KernelIrRegistry analysis cache).
struct Features {
  bool have_facts = false;  ///< false: no IR registered, defaults below
  double arithmetic_intensity = 0.0;  ///< fold stmts per byte accessed/item
  /// Shannon entropy (bits) over the access-count-weighted |stride| class
  /// distribution: 0 = one uniform access pattern, higher = mixed strides.
  double memory_entropy = 0.0;
  double reuse_score = 0.0;       ///< 0 none, 0.5 spatial|temporal, 1 both
  double unit_stride_fraction = 0.0;  ///< accesses with |scale| <= 1
  long long dominant_stride = 1;
  bool gather_scatter = false;    ///< any mixed-stride array
  bool race_free = true;
  bool divergent_guards = false;  ///< any item-dependent guarded statement
  bool barrier = false;
  bool local_mem = false;
  bool has_simd_form = false;
  bool has_workgroup_form = false;
  /// Modal cachesim hit level replaying the declared access stream over a
  /// model shape: 1=L1 .. 4=memory (1 when no facts).
  int locality_class = 1;
  double sim_cycles_per_access = 0.0;
};

/// Computes the feature vector for `def` (facts come from verify::facts_for;
/// absent IR degrades to a default vector with have_facts=false). Cached per
/// (kernel, generation); thread-safe.
[[nodiscard]] Features features_for(const ocl::KernelDef& def);

/// Cost-model score of one candidate under `feats` for a launch of `global`
/// on `threads` workers — higher is better. Pure; exposed for tests/docs.
[[nodiscard]] double score_candidate(const TunedConfig& cfg,
                                     const Features& feats,
                                     const ocl::NDRange& global,
                                     std::size_t threads);

/// Legal candidate configs for one launch, ranked by score (best first),
/// truncated to the exploration width. Pure; exposed for tests.
[[nodiscard]] std::vector<TunedConfig> enumerate_candidates(
    const ocl::KernelDef& def, const Features& feats,
    const ocl::NDRange& global, const ocl::NDRange& local,
    bool has_local_args, std::size_t threads);

/// One decision handed to the launch path; pass it back to report().
struct Decision {
  TunedConfig config;
  bool explore = false;   ///< this launch is an exploration trial
  std::string key;        ///< tuner entry key (kernel|shape|threads|localargs)
  std::uint32_t candidate = 0;  ///< index into the entry's candidate list
  /// IR generation of the entry at decide() time; report() drops the sample
  /// when it no longer matches (the entry was evicted and recreated for a
  /// re-registered kernel body between decide and report).
  std::uint64_t generation = 0;
};

/// Monotone internal counters (metrics-registry independent, so tests can
/// assert on them without enabling mclprof).
struct TunerStats {
  std::uint64_t decisions = 0;
  std::uint64_t explore = 0;      ///< exploration launches issued
  std::uint64_t exploit = 0;      ///< incumbent/seed launches issued
  std::uint64_t quarantined = 0;  ///< candidates retired by regression guard
  std::uint64_t converged = 0;    ///< entries that finished exploring
  std::uint64_t cache_rows_loaded = 0;   ///< persisted rows accepted
  std::uint64_t cache_rows_rejected = 0; ///< rows dropped (stale/corrupt)
  std::uint64_t cache_hits = 0;   ///< decisions served by a warm entry
  std::uint64_t evictions = 0;    ///< entries dropped on IR re-registration
};

[[nodiscard]] Mode mode_from_env();  ///< parses MCL_TUNE (default Off)

namespace detail {
/// g_mode starts at kModeUnset and resolves from MCL_TUNE on the first
/// enabled()/mode() query — NOT in the Tuner constructor, which is only
/// reached once a decision is requested; gating the env parse behind the
/// singleton would make `MCL_TUNE=online some_binary` a no-op.
inline constexpr int kModeUnset = -1;
extern std::atomic<int> g_mode;
int resolve_mode_from_env() noexcept;  ///< one-time CAS publish of MCL_TUNE
}

/// True when any tuning is active — the only cost on the launch path when
/// MCL_TUNE is off (one relaxed load + not-taken branch after the first
/// query, same budget as the trace/prof gates).
[[nodiscard]] inline bool enabled() noexcept {
  int m = detail::g_mode.load(std::memory_order_relaxed);
  if (m == detail::kModeUnset) m = detail::resolve_mode_from_env();
  return m != static_cast<int>(Mode::Off);
}

/// Process-wide tuner. One instance; tenants, queues and devices share it —
/// that is what makes mclserve's per-tenant kernel caches converge onto one
/// tuned config per (kernel, shape, device) instead of re-exploring per
/// tenant.
class Tuner {
 public:
  /// Leaky singleton (never destroyed: decisions may be reported from
  /// worker threads during static teardown). First call installs the
  /// KernelIrRegistry invalidation hook and loads MCL_TUNE_CACHE if set.
  [[nodiscard]] static Tuner& instance();

  [[nodiscard]] Mode mode() const noexcept {
    int m = detail::g_mode.load(std::memory_order_relaxed);
    if (m == detail::kModeUnset) m = detail::resolve_mode_from_env();
    return static_cast<Mode>(m);
  }
  void set_mode(Mode m) noexcept;

  /// Decides the config for one launch. Returns nullopt when tuning is off
  /// or the launch is not tunable (explicit executor configs never reach
  /// here; workgroup-form kernels with nothing to choose return the single
  /// legal candidate). `has_local_args` gates local-size overrides.
  [[nodiscard]] std::optional<Decision> decide(const ocl::KernelDef& def,
                                               const ocl::NDRange& global,
                                               const ocl::NDRange& local,
                                               bool has_local_args,
                                               std::size_t threads);

  /// Feeds one measured launch back (online mode). Unknown/evicted keys are
  /// ignored (the entry was invalidated between decide and report).
  void report(const Decision& decision, double seconds);

  /// The current best config for a launch shape without recording a
  /// decision: the incumbent when an entry exists, else the seed ranking's
  /// top candidate. Works in every mode (pure query; mclGetTunedConfig).
  [[nodiscard]] std::optional<TunedConfig> tuned_config(
      const ocl::KernelDef& def, const ocl::NDRange& global,
      const ocl::NDRange& local, bool has_local_args, std::size_t threads);

  /// Computes (and caches) the feature vector ahead of the first launch —
  /// mclserve calls this on kernel-descriptor cache misses so feature
  /// extraction cost never lands on a tenant's first request.
  void prewarm(const ocl::KernelDef& def);

  /// Drops every entry of `kernel` (all shapes) plus its pending persisted
  /// rows. Wired to KernelIrRegistry re-registration; also for tests.
  void evict(const std::string& kernel);

  /// Drops all entries and loaded rows (tests).
  void reset();

  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t entry_count(const std::string& kernel) const;

  /// True when the entry for this exact launch shape finished exploring
  /// (exhausted its trial budget or was loaded from a warm cache).
  [[nodiscard]] bool converged(const std::string& kernel,
                               const ocl::NDRange& global,
                               const ocl::NDRange& local, std::size_t threads,
                               bool has_local_args = false) const;

  [[nodiscard]] TunerStats stats() const;
  void reset_stats();

  /// Persists every converged entry: "mcltune v2" header, one row per
  /// entry carrying the kernel's IR generation, FNV-1a checksum trailer.
  /// Written to <path>.tmp.<pid> then renamed (concurrent-writer safe).
  [[nodiscard]] bool save_cache(const std::string& path) const;

  /// Loads a cache file; returns rows accepted. A version mismatch, bad
  /// checksum, or truncated file rejects the whole file (cold start); a row
  /// whose generation differs from the kernel's current IR generation is
  /// skipped individually.
  std::size_t load_cache(const std::string& path);

 private:
  Tuner();

  struct CandidateState {
    TunedConfig config;
    double seed_score = 0.0;
    double best_seconds = 0.0;  ///< 0 = never measured
    int trials = 0;
    bool quarantined = false;
  };
  struct Entry {
    std::string kernel;
    std::uint64_t generation = 0;
    std::vector<CandidateState> candidates;
    std::uint32_t incumbent = 0;
    bool converged = false;
    bool from_cache = false;   ///< warm start: never explores
    /// Warm entries carry configs written by a possibly different build;
    /// the first decide() re-checks the incumbent against live executor
    /// legality (candidate_executors + simd width) and drops the entry if
    /// it no longer holds. Entries built in-process are legal by
    /// construction.
    bool validated = false;
    std::uint64_t launches = 0;
    std::uint64_t rng = 0x9E3779B97F4A7C15ull;  ///< per-entry epsilon stream
  };

  [[nodiscard]] static std::string entry_key(const std::string& kernel,
                                             const ocl::NDRange& global,
                                             const ocl::NDRange& local,
                                             std::size_t threads,
                                             bool has_local_args);
  Entry* find_or_create(const ocl::KernelDef& def, const ocl::NDRange& global,
                        const ocl::NDRange& local, bool has_local_args,
                        std::size_t threads, const std::string& key);
  /// Returns the number of candidates newly quarantined by this call so
  /// report() can raise the mclobs anomaly after mutex_ is released (the
  /// tune dump section takes mutex_; dumping under it would deadlock).
  std::size_t maybe_quarantine(Entry& entry);
  [[nodiscard]] std::string obs_section_json() const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  TunerStats stats_;
  std::string cache_path_;  ///< MCL_TUNE_CACHE; empty = no persistence
};

}  // namespace mcl::tune
