// Tuner core: candidate enumeration (with GroupRunner-matched legality
// pruning), cost-model ranking, and the bounded explore/exploit policy.
//
// Online policy (docs/tune.md): a cold entry round-robins its top-ranked
// candidates for kTrialsPerCandidate timed launches each — a bounded budget
// of at most kMaxCandidates * kTrialsPerCandidate exploration launches —
// quarantining any candidate whose best observed time is measurably worse
// than the current minimum (regression guard). Once every candidate is
// trialed or quarantined the entry CONVERGES: the incumbent (argmin best
// time) is served forever after with zero exploration, which is what makes
// warm-cache processes deterministic (tune.explore == 0).
#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "prof/metrics.hpp"
#include "simd/vec.hpp"
#include "threading/thread_pool.hpp"
#include "trace/trace.hpp"
#include "tune/tune.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::tune {
namespace {

/// Exploration budget per entry.
constexpr std::size_t kMaxCandidates = 8;
constexpr int kTrialsPerCandidate = 3;
/// Regression guard: quarantined when best observed time exceeds the
/// entry-wide minimum by this factor (measurably worse, beyond timer noise).
constexpr double kQuarantineRatio = 1.25;
/// Soft cap on tuner entries; beyond it new shapes fall back to seed-only
/// decisions (no stored state) instead of growing without bound.
constexpr std::size_t kMaxEntries = 4096;

/// Fiber stacks are allocated per workitem of a group, so barrier kernels
/// cap their candidate group size well below the generic 1024 limit.
constexpr std::size_t kMaxItemsPerGroup = 1024;
constexpr std::size_t kMaxBarrierItemsPerGroup = 256;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// xorshift64*: deterministic per-entry epsilon stream (no global RNG, no
/// wall clock — warm runs replay identically).
std::uint64_t next_rand(std::uint64_t& state) {
  std::uint64_t x = state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

/// Largest divisor of `n` that is <= `target` — the same clamping rule
/// pick_default_local applies (replicated here: that helper lives in
/// mcl_ocl, which links mcl_tune, not the other way round).
std::size_t largest_divisor_le(std::size_t n, std::size_t target) {
  if (n == 0) return 1;
  for (std::size_t d = std::min(target, n); d > 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

bool divides(const ocl::NDRange& local, const ocl::NDRange& global) {
  for (std::size_t d = 0; d < global.dims && d < 3; ++d) {
    if (local[d] == 0 || global[d] % local[d] != 0) return false;
  }
  return true;
}

/// Candidate local sizes for one global shape: the runtime default plus the
/// paper's Fig 2 sweep points, legality-filtered (must divide the global,
/// items/group capped). Returns an empty vector when the caller fixed the
/// local size or the kernel binds local-memory args (whose byte counts were
/// sized for the caller's groups — overriding would corrupt them).
std::vector<ocl::NDRange> candidate_locals(const ocl::NDRange& global,
                                           const ocl::NDRange& local,
                                           bool has_local_args,
                                           bool barrier) {
  std::vector<ocl::NDRange> out;
  if (!local.is_null() || has_local_args) return out;
  const std::size_t cap =
      barrier ? kMaxBarrierItemsPerGroup : kMaxItemsPerGroup;
  auto push = [&](const ocl::NDRange& cand) {
    if (!divides(cand, global) || cand.total() > cap) return;
    if (std::find(out.begin(), out.end(), cand) == out.end()) out.push_back(cand);
  };
  if (global.dims == 1) {
    push(ocl::NDRange{largest_divisor_le(global[0], 64)});  // runtime default
    for (const std::size_t w : {std::size_t{64}, std::size_t{128},
                                std::size_t{256}, std::size_t{512}}) {
      push(ocl::NDRange{w});
    }
  } else if (global.dims == 2) {
    push(ocl::NDRange{largest_divisor_le(global[0], 8),
                      largest_divisor_le(global[1], 8)});
    push(ocl::NDRange{8, 8});
    push(ocl::NDRange{16, 16});
    push(ocl::NDRange{32, 4});
  } else {
    push(ocl::NDRange{largest_divisor_le(global[0], 4),
                      largest_divisor_le(global[1], 4),
                      largest_divisor_le(global[2], 4)});
    push(ocl::NDRange{4, 4, 4});
    push(ocl::NDRange{8, 8, 2});
  }
  return out;
}

/// Executors legal for this kernel — exactly GroupRunner's rules:
/// workgroup-form kernels ignore the knob (Auto only); barrier kernels must
/// run on fibers (Loop/Simd throw InvalidLaunch); Simd needs a registered
/// simd form and a multi-lane build. Checked is never a tuning candidate
/// (it is the sanitizer, ~100x slower by design).
std::vector<ocl::ExecutorKind> candidate_executors(const ocl::KernelDef& def) {
  if (def.workgroup != nullptr && def.scalar == nullptr) {
    return {ocl::ExecutorKind::Auto};
  }
  if (def.needs_barrier) return {ocl::ExecutorKind::Fiber};
  std::vector<ocl::ExecutorKind> out{ocl::ExecutorKind::Loop};
  if (def.simd != nullptr && simd::kNativeFloatWidth > 1) {
    out.push_back(ocl::ExecutorKind::Simd);
  }
  return out;
}

/// Legality of one concrete config for one launch — the same rules candidate
/// enumeration applies, re-checkable after the fact. Used to vet warm-cache
/// rows on their first decide(): the generation guard only proves the IR is
/// unchanged, not that the row is legal for THIS build (executor legality is
/// build-dependent — a cache written by a SIMD-enabled build loads into a
/// scalar build — and the file may have been hand-edited).
bool config_legal(const ocl::KernelDef& def, const TunedConfig& cfg,
                  const ocl::NDRange& global, const ocl::NDRange& local,
                  bool has_local_args) {
  if (cfg.executor != ocl::ExecutorKind::Auto) {
    const std::vector<ocl::ExecutorKind> execs = candidate_executors(def);
    if (std::find(execs.begin(), execs.end(), cfg.executor) == execs.end()) {
      return false;
    }
  }
  if (!cfg.local.is_null()) {
    if (!local.is_null() || has_local_args) return false;
    const std::size_t cap =
        def.needs_barrier ? kMaxBarrierItemsPerGroup : kMaxItemsPerGroup;
    if (!divides(cfg.local, global) || cfg.local.total() > cap) return false;
  }
  return cfg.chunk_divisor != 0;
}

}  // namespace

namespace detail {
std::atomic<int> g_mode{kModeUnset};

int resolve_mode_from_env() noexcept {
  int expected = kModeUnset;
  const int from_env = static_cast<int>(mode_from_env());
  // CAS: if a concurrent set_mode() already published a mode, keep it —
  // programmatic configuration always beats the environment default.
  if (g_mode.compare_exchange_strong(expected, from_env,
                                     std::memory_order_relaxed)) {
    return from_env;
  }
  return expected;
}
}  // namespace detail

const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Seed: return "seed";
    case Mode::Online: return "online";
  }
  return "off";
}

Mode mode_from_env() {
  const char* v = std::getenv("MCL_TUNE");
  if (v == nullptr) return Mode::Off;
  const std::string s{v};
  if (s == "seed") return Mode::Seed;
  if (s == "online" || s == "on" || s == "1") return Mode::Online;
  return Mode::Off;
}

std::string TunedConfig::to_string() const {
  std::ostringstream out;
  out << "local=";
  if (local.is_null()) {
    out << "auto";
  } else {
    out << local[0];
    for (std::size_t d = 1; d < local.dims; ++d) out << "x" << local[d];
  }
  out << " exec=";
  switch (executor) {
    case ocl::ExecutorKind::Auto: out << "auto"; break;
    case ocl::ExecutorKind::Loop: out << "loop"; break;
    case ocl::ExecutorKind::Fiber: out << "fiber"; break;
    case ocl::ExecutorKind::Simd: out << "simd"; break;
    case ocl::ExecutorKind::Checked: out << "checked"; break;
  }
  out << " chunk_div=" << chunk_divisor << " sched="
      << (scheduler == threading::ScheduleStrategy::CentralCounter ? "central"
                                                                   : "steal")
      << " map=" << (prefer_map ? 1 : 0);
  return out.str();
}

double score_candidate(const TunedConfig& cfg, const Features& feats,
                       const ocl::NDRange& global, std::size_t threads) {
  double score = 0.0;
  const std::size_t total = std::max<std::size_t>(global.total(), 1);
  const std::size_t items_per_group =
      cfg.local.is_null() ? std::min<std::size_t>(total, 64)
                          : std::max<std::size_t>(cfg.local.total(), 1);
  const std::size_t groups = std::max<std::size_t>(total / items_per_group, 1);

  // Executor axis. SIMD pays off in proportion to the coalescable fraction
  // of the access stream (paper Fig 10: implicit vectorization on
  // unit-stride kernels); gather/scatter kernels keep little of it.
  if (cfg.executor == ocl::ExecutorKind::Simd) {
    double simd_gain = 2.0 * feats.unit_stride_fraction;
    if (feats.gather_scatter) simd_gain *= 0.25;
    if (!feats.have_facts) simd_gain = 1.0;  // optimistic default: simd forms
                                             // exist because they won Fig 10
    score += simd_gain;
  } else if (cfg.executor == ocl::ExecutorKind::Fiber) {
    score -= 0.5;  // fiber switching overhead; only ever legal-mandatory
  }

  // Workgroup-size axis (paper Fig 2: CPUs want >= 64 items per group so
  // the per-group dispatch cost amortizes; advisor::kMinCpuWorkGroup).
  if (items_per_group >= 64) score += 0.5;
  if (items_per_group >= 256 && feats.arithmetic_intensity < 0.25 &&
      feats.locality_class >= 3) {
    score += 0.25;  // streaming kernels amortize further with bigger groups
  }
  if (feats.local_mem && items_per_group > 256) score -= 0.5;
  if (cfg.executor == ocl::ExecutorKind::Simd && !cfg.local.is_null() &&
      cfg.local[0] % static_cast<std::size_t>(simd::kNativeFloatWidth) == 0) {
    score += 0.25;  // whole lane groups per row, no scalar remainder
  }

  // Parallel-slack axis: fewer groups than workers starves the pool.
  if (groups < threads) score -= 1.0;
  else if (groups < threads * 4) score -= 0.25;

  // Chunking axis: divergent/guarded kernels have irregular per-group cost
  // and want small chunks (divisor 64 -> chunk 1 earlier); uniform streaming
  // kernels want big chunks for locality (divisor 4).
  const bool irregular = feats.divergent_guards || feats.gather_scatter;
  if (irregular && cfg.chunk_divisor >= 64) score += 0.25;
  if (!irregular && feats.reuse_score >= 0.5 && cfg.chunk_divisor <= 4) {
    score += 0.25;
  }
  if (irregular && cfg.chunk_divisor <= 4) score -= 0.25;

  // Dispatch-order axis: work stealing only earns its fences on irregular
  // cost; a uniform stream is served perfectly by the central counter.
  if (cfg.scheduler == threading::ScheduleStrategy::WorkStealing) {
    score += irregular ? 0.25 : -0.25;
  }
  return score;
}

std::vector<TunedConfig> enumerate_candidates(const ocl::KernelDef& def,
                                              const Features& feats,
                                              const ocl::NDRange& global,
                                              const ocl::NDRange& local,
                                              bool has_local_args,
                                              std::size_t threads) {
  const std::vector<ocl::ExecutorKind> execs = candidate_executors(def);
  std::vector<ocl::NDRange> locals =
      candidate_locals(global, local, has_local_args, def.needs_barrier);
  if (locals.empty()) locals.push_back(ocl::NDRange{});  // keep caller/default

  const std::size_t total = std::max<std::size_t>(global.total(), 1);
  const std::size_t groups_est =
      total / std::max<std::size_t>(
                  locals.front().is_null() ? 64 : locals.front().total(), 1);
  std::vector<std::size_t> chunk_divs{16};
  if (groups_est >= threads * 4) {
    chunk_divs.push_back(4);
    chunk_divs.push_back(64);
  }
  std::vector<threading::ScheduleStrategy> scheds{
      threading::ScheduleStrategy::CentralCounter};
  if (groups_est >= threads * 2) {
    scheds.push_back(threading::ScheduleStrategy::WorkStealing);
  }
  // Map-vs-copy plan: on the CPU device map IS zero-copy, so the plan knob
  // has one sensible value (paper Fig 7/8); kept in the config for the C
  // API and the ablation bench rather than explored.
  const bool prefer_map = true;

  std::vector<TunedConfig> out;
  for (const ocl::ExecutorKind exec : execs) {
    for (const ocl::NDRange& l : locals) {
      for (const std::size_t cd : chunk_divs) {
        for (const threading::ScheduleStrategy sched : scheds) {
          TunedConfig cfg;
          cfg.local = l;
          cfg.executor = exec;
          cfg.chunk_divisor = cd;
          cfg.scheduler = sched;
          cfg.prefer_map = prefer_map;
          out.push_back(cfg);
        }
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](const TunedConfig& a, const TunedConfig& b) {
                     return score_candidate(a, feats, global, threads) >
                            score_candidate(b, feats, global, threads);
                   });
  if (out.size() > kMaxCandidates) out.resize(kMaxCandidates);
  return out;
}

Tuner& Tuner::instance() {
  // Leaky: decisions can be reported from pool workers during static
  // teardown, and the IR-registry hook below outlives any scoped object.
  static Tuner* tuner = new Tuner();
  return *tuner;
}

Tuner::Tuner() {
  (void)detail::resolve_mode_from_env();  // no-op if a mode is already set
  // Satellite of ISSUE 8: re-registering a kernel's IR (generation bump)
  // must evict its tuner entries — configs tuned for the old body are stale.
  veclegal::KernelIrRegistry::instance().add_invalidation_hook(
      [this](const std::string& kernel) { evict(kernel); });
  if (const char* path = std::getenv("MCL_TUNE_CACHE")) {
    cache_path_ = path;
    load_cache(cache_path_);
    // Persist converged entries on clean exit; the temp+rename writer makes
    // several processes exiting at once safe (last complete file wins).
    std::atexit([] {
      Tuner& t = Tuner::instance();
      if (!t.cache_path_.empty()) (void)t.save_cache(t.cache_path_);
    });
  }
  // Flight-recorder dump section: incumbents + convergence at anomaly time.
  // The singleton is leaked (see instance()), so this never unregisters.
  (void)obs::register_section("tune",
                              [this] { return obs_section_json(); });
}

void Tuner::set_mode(Mode m) noexcept {
  detail::g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

std::string Tuner::entry_key(const std::string& kernel,
                             const ocl::NDRange& global,
                             const ocl::NDRange& local, std::size_t threads,
                             bool has_local_args) {
  std::ostringstream out;
  out << kernel << "|g" << global[0] << "x" << global[1] << "x" << global[2]
      << "|l";
  if (local.is_null()) {
    out << "auto";
  } else {
    out << local[0] << "x" << local[1] << "x" << local[2];
  }
  // has_local_args is part of the key, not just candidate enumeration: a
  // kernel launched both with and without local-memory args must get two
  // entries, or the no-local-args entry's learned local-size override leaks
  // into launches whose local byte counts were sized for different groups.
  out << "|t" << threads << "|a" << (has_local_args ? 1 : 0);
  return out.str();
}

Tuner::Entry* Tuner::find_or_create(const ocl::KernelDef& def,
                                    const ocl::NDRange& global,
                                    const ocl::NDRange& local,
                                    bool has_local_args, std::size_t threads,
                                    const std::string& key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    if (!entry.from_cache || entry.validated) return &entry;
    // First hit on a warm row: the generation guard at load time only proves
    // the IR is unchanged, not that the persisted config is legal for this
    // build/kernel (a SIMD row in a scalar build, a Loop row for a barrier
    // kernel in a hand-edited file). An illegal row would make GroupRunner
    // throw InvalidLaunch on every launch — drop it as stale and fall
    // through to a fresh entry instead.
    if (config_legal(def, entry.candidates[entry.incumbent].config, global,
                     local, has_local_args)) {
      entry.validated = true;
      return &entry;
    }
    entries_.erase(it);
    ++stats_.cache_rows_rejected;
  }
  if (entries_.size() >= kMaxEntries) return nullptr;

  // Feature extraction and candidate ranking run outside entries_ churn but
  // inside mutex_ — acceptable because features_for memoizes per kernel, so
  // only the first shape of a kernel pays the cachesim replay.
  const Features feats = features_for(def);
  std::vector<TunedConfig> candidates =
      enumerate_candidates(def, feats, global, local, has_local_args, threads);
  if (candidates.empty()) return nullptr;

  Entry entry;
  entry.kernel = def.name;
  entry.generation =
      veclegal::KernelIrRegistry::instance().generation(def.name);
  entry.rng = fnv1a64(key) | 1;  // deterministic per-key stream, never 0
  entry.candidates.reserve(candidates.size());
  for (TunedConfig& cfg : candidates) {
    CandidateState cs;
    cs.seed_score = score_candidate(cfg, feats, global, threads);
    cs.config = std::move(cfg);
    entry.candidates.push_back(std::move(cs));
  }
  // A single candidate leaves nothing to explore.
  if (entry.candidates.size() == 1) {
    entry.converged = true;
    ++stats_.converged;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

std::optional<Decision> Tuner::decide(const ocl::KernelDef& def,
                                      const ocl::NDRange& global,
                                      const ocl::NDRange& local,
                                      bool has_local_args,
                                      std::size_t threads) {
  const Mode m = mode();
  if (m == Mode::Off) return std::nullopt;
  const std::string key =
      entry_key(def.name, global, local, threads, has_local_args);

  const std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(def, global, local, has_local_args, threads, key);
  if (entry == nullptr) return std::nullopt;
  ++stats_.decisions;
  ++entry->launches;
  if (entry->from_cache) ++stats_.cache_hits;

  Decision d;
  d.key = key;
  d.generation = entry->generation;

  if (m == Mode::Online && !entry->converged) {
    // Round-robin exploration: the live candidate with the fewest trials.
    std::uint32_t pick = entry->incumbent;
    int fewest = kTrialsPerCandidate;
    for (std::uint32_t i = 0; i < entry->candidates.size(); ++i) {
      const CandidateState& cs = entry->candidates[i];
      if (cs.quarantined || cs.trials >= kTrialsPerCandidate) continue;
      if (cs.trials < fewest) {
        fewest = cs.trials;
        pick = i;
      }
    }
    d.candidate = pick;
    d.explore = fewest < kTrialsPerCandidate;
    if (!d.explore) {
      // Every candidate trialed or quarantined: converge permanently.
      entry->converged = true;
      ++stats_.converged;
      d.candidate = entry->incumbent;
    }
  } else {
    // Seed mode, or a converged/warm entry: serve the incumbent.
    d.candidate = entry->incumbent;
    d.explore = false;
  }
  d.config = entry->candidates[d.candidate].config;
  if (d.explore) {
    ++stats_.explore;
  } else {
    ++stats_.exploit;
  }
  // next_rand reserved for future epsilon jitter; keep the stream advancing
  // so entry state remains deterministic if it is ever enabled.
  (void)next_rand(entry->rng);

  MCL_PROF_COUNT("tune.decisions", 1);
  if (d.explore) MCL_PROF_COUNT("tune.explore", 1);
  else MCL_PROF_COUNT("tune.exploit", 1);
  if (entry->from_cache) MCL_PROF_COUNT("tune.cache_hits", 1);
  if (trace::enabled()) {
    MCL_TRACE_INSTANT(trace::intern("tune.decide:" + def.name),
                      "candidate,explore,launches", d.candidate,
                      d.explore ? 1 : 0, entry->launches);
  }
  return d;
}

void Tuner::report(const Decision& decision, double seconds) {
  if (seconds <= 0.0) return;
  std::size_t newly_quarantined = 0;
  const char* kernel_name = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(decision.key);
    if (it == entries_.end()) return;  // evicted between decide and report
    Entry& entry = it->second;
    // Evicted AND recreated between decide and report (IR re-registration):
    // the stale timing belongs to the old body's candidate list, not this
    // one.
    if (entry.generation != decision.generation) return;
    if (decision.candidate >= entry.candidates.size()) return;
    CandidateState& cs = entry.candidates[decision.candidate];
    if (cs.best_seconds == 0.0 || seconds < cs.best_seconds) {
      cs.best_seconds = seconds;
    }
    if (decision.explore) ++cs.trials;

    // Incumbent = argmin over measured candidates (seed ranking until then).
    double best = 0.0;
    for (std::uint32_t i = 0; i < entry.candidates.size(); ++i) {
      const CandidateState& c = entry.candidates[i];
      if (c.best_seconds <= 0.0) continue;
      if (best == 0.0 || c.best_seconds < best) {
        best = c.best_seconds;
        entry.incumbent = i;
      }
    }
    newly_quarantined = maybe_quarantine(entry);
    if (newly_quarantined > 0) kernel_name = trace::intern(entry.kernel);
  }
  // Anomaly outside the lock: the tune dump section re-acquires mutex_.
  // The reporting thread still carries the triggering request's context.
  if (newly_quarantined > 0 && obs::enabled()) {
    obs::anomaly(obs::Kind::Quarantine, trace::current_context(), kernel_name,
                 core::Status::Success, newly_quarantined);
  }
}

std::size_t Tuner::maybe_quarantine(Entry& entry) {
  double best = 0.0;
  for (const CandidateState& c : entry.candidates) {
    if (c.best_seconds > 0.0 && (best == 0.0 || c.best_seconds < best)) {
      best = c.best_seconds;
    }
  }
  if (best <= 0.0) return 0;
  std::size_t newly = 0;
  for (CandidateState& c : entry.candidates) {
    // Two trials of headroom before the guard fires: one bad sample can be
    // scheduler noise; best-of-two above the ratio is a real regression.
    if (!c.quarantined && c.trials >= 2 &&
        c.best_seconds > best * kQuarantineRatio) {
      c.quarantined = true;
      ++stats_.quarantined;
      ++newly;
      MCL_PROF_COUNT("tune.quarantined", 1);
    }
  }
  return newly;
}

std::optional<TunedConfig> Tuner::tuned_config(const ocl::KernelDef& def,
                                               const ocl::NDRange& global,
                                               const ocl::NDRange& local,
                                               bool has_local_args,
                                               std::size_t threads) {
  const std::string key =
      entry_key(def.name, global, local, threads, has_local_args);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      return it->second.candidates[it->second.incumbent].config;
    }
  }
  // No entry: pure seed ranking, no state recorded.
  const Features feats = features_for(def);
  std::vector<TunedConfig> candidates =
      enumerate_candidates(def, feats, global, local, has_local_args, threads);
  if (candidates.empty()) return std::nullopt;
  return candidates.front();
}

void Tuner::prewarm(const ocl::KernelDef& def) { (void)features_for(def); }

void Tuner::evict(const std::string& kernel) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.kernel == kernel) {
      it = entries_.erase(it);
      ++stats_.evictions;
      MCL_PROF_COUNT("tune.evictions", 1);
    } else {
      ++it;
    }
  }
}

void Tuner::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t Tuner::entry_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t Tuner::entry_count(const std::string& kernel) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.kernel == kernel) ++n;
  }
  return n;
}

bool Tuner::converged(const std::string& kernel, const ocl::NDRange& global,
                      const ocl::NDRange& local, std::size_t threads,
                      bool has_local_args) const {
  const std::string key =
      entry_key(kernel, global, local, threads, has_local_args);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.converged;
}

std::string Tuner::obs_section_json() const {
  // Called from obs dump assembly; must only take mutex_ (no obs calls).
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back('?');
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"decisions\":" << stats_.decisions
      << ",\"explore\":" << stats_.explore
      << ",\"exploit\":" << stats_.exploit
      << ",\"quarantined\":" << stats_.quarantined
      << ",\"converged\":" << stats_.converged
      << ",\"cache_hits\":" << stats_.cache_hits << ",\"entries\":[";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out << ',';
    first = false;
    const CandidateState& inc = entry.candidates[entry.incumbent];
    out << "{\"key\":\"" << escape(key) << "\",\"kernel\":\""
        << escape(entry.kernel) << "\",\"incumbent\":" << entry.incumbent
        << ",\"incumbent_local\":\"";
    if (inc.config.local.is_null()) {
      out << "auto";
    } else {
      out << inc.config.local[0] << "x" << inc.config.local[1] << "x"
          << inc.config.local[2];
    }
    out << "\",\"best_seconds\":" << inc.best_seconds
        << ",\"converged\":" << (entry.converged ? "true" : "false")
        << ",\"from_cache\":" << (entry.from_cache ? "true" : "false")
        << ",\"launches\":" << entry.launches
        << ",\"candidates\":" << entry.candidates.size() << "}";
  }
  out << "]}";
  return out.str();
}

TunerStats Tuner::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Tuner::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = TunerStats{};
}

}  // namespace mcl::tune
