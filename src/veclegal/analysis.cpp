#include "veclegal/analysis.hpp"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace mcl::veclegal {

namespace {

/// Whether two affine refs to the same array can touch the same element at
/// loop distance d (i vs i+d): s1*i + o1 == s2*(i+d) + o2 for some valid i.
/// Returns the set of "small" distances (|d| < width) with a solution;
/// unequal scales are treated conservatively as dependent at distance 1.
std::vector<long long> carried_distances(const Subscript& a, const Subscript& b,
                                         int width) {
  std::vector<long long> out;
  if (a.scale != b.scale) {
    out.push_back(1);  // conservative: assume a dependence inside the window
    return out;
  }
  if (a.scale == 0) {
    // Both loop-invariant: same element iff offsets match, at every distance.
    if (a.offset == b.offset) out.push_back(1);
    return out;
  }
  // s*(i) + o1 == s*(i+d) + o2  =>  d = (o1 - o2) / s
  const long long num = a.offset - b.offset;
  if (num % a.scale != 0) return out;
  const long long d = num / a.scale;
  if (d != 0 && std::llabs(d) < width) out.push_back(d);
  return out;
}

/// `t = t OP expr` where t is read only by its own defining statement: a
/// reduction idiom, vectorizable with partial accumulators when the
/// compiler may reassociate.
bool is_reduction_idiom(const LoopBody& body, std::size_t stmt_index) {
  const Stmt& s = body.stmts[stmt_index];
  if (!s.temp_write) return false;
  const int t = *s.temp_write;
  bool self_read = false;
  for (int r : s.temp_reads) self_read |= (r == t);
  if (!self_read) return false;
  for (std::size_t j = 0; j < body.stmts.size(); ++j) {
    if (j == stmt_index) continue;
    for (int r : body.stmts[j].temp_reads) {
      if (r == t) return false;  // consumed elsewhere in the loop
    }
    if (body.stmts[j].temp_write && *body.stmts[j].temp_write == t) {
      return false;  // multiply-defined
    }
  }
  return true;
}

void check_loop_model(const LoopBody& body, const AnalysisOptions& opts,
                      Verdict& v) {
  const int width = opts.width;
  // L1: shape.
  if (body.trip_count <= 0)
    v.reasons.push_back("L1: loop is not countable");
  if (!body.single_entry_exit)
    v.reasons.push_back("L1: loop has multiple entries/exits");
  if (!body.straight_line)
    v.reasons.push_back("L1: control flow inside the loop body");

  // L2: strides.
  for (const Stmt& s : body.stmts) {
    auto check_stride = [&](const ArrayRef& r, bool is_write) {
      const long long sc = r.subscript.scale;
      if (sc == 1) return;
      if (sc == 0 && !is_write) return;  // loop-invariant load is fine
      std::ostringstream os;
      os << "L2: noncontiguous " << (is_write ? "store" : "load")
         << " (stride " << sc << ") in '" << s.text << "'";
      v.reasons.push_back(os.str());
    };
    if (s.array_write) check_stride(*s.array_write, true);
    for (const ArrayRef& r : s.array_reads) check_stride(r, false);
  }

  // L3: loop-carried dependences through arrays.
  for (std::size_t i = 0; i < body.stmts.size(); ++i) {
    const Stmt& w = body.stmts[i];
    if (!w.array_write) continue;
    for (const Stmt& other : body.stmts) {
      auto note = [&](const ArrayRef& r, const char* kind) {
        if (r.array != w.array_write->array) return;
        for (long long d :
             carried_distances(w.array_write->subscript, r.subscript, width)) {
          std::ostringstream os;
          os << "L3: loop-carried " << kind << " dependence, distance " << d
             << ", between '" << w.text << "' and '" << other.text << "'";
          v.reasons.push_back(os.str());
        }
      };
      for (const ArrayRef& r : other.array_reads) note(r, "flow/anti");
      if (other.array_write && &other != &w) note(*other.array_write, "output");
    }
  }

  // L3 (scalars): a temp read before any definition in the same iteration is
  // a recurrence carried from the previous iteration — unless it is a
  // recognized reduction idiom and reassociation is allowed.
  {
    std::set<int> defined;
    for (std::size_t i = 0; i < body.stmts.size(); ++i) {
      const Stmt& s = body.stmts[i];
      const bool reduction_ok =
          opts.allow_reduction_idioms && is_reduction_idiom(body, i);
      for (int t : s.temp_reads) {
        if (defined.count(t) == 0 && !reduction_ok) {
          v.reasons.push_back("L3: scalar recurrence on temp t" +
                              std::to_string(t) + " in '" + s.text + "'");
        }
      }
      if (s.temp_write) defined.insert(*s.temp_write);
    }
  }

  // L4: chained read-modify-write of one location within the iteration.
  // Count, per (array, subscript), stores that also read the same element.
  {
    std::map<std::pair<int, std::pair<long long, long long>>, int> rmw_count;
    for (const Stmt& s : body.stmts) {
      if (!s.array_write) continue;
      const ArrayRef& w = *s.array_write;
      const bool reads_same = [&] {
        for (const ArrayRef& r : s.array_reads) {
          if (r.array == w.array && r.subscript.scale == w.subscript.scale &&
              r.subscript.offset == w.subscript.offset)
            return true;
        }
        return false;
      }();
      if (!reads_same) continue;
      const auto key = std::make_pair(
          w.array, std::make_pair(w.subscript.scale, w.subscript.offset));
      if (++rmw_count[key] == 2) {
        v.reasons.push_back(
            "L4: true-dependence chain through memory (repeated "
            "read-modify-write of one element, e.g. '" +
            s.text + "') — vectorization would reorder dependent operations");
      }
    }
  }
}

void check_spmd_model(const LoopBody& body, const AnalysisOptions& opts,
                      Verdict& v) {
  // S1: writes must be item-distinct.
  for (const Stmt& s : body.stmts) {
    if (!s.array_write) continue;
    if (s.array_write->subscript.scale == 0) {
      v.reasons.push_back(
          "S1: all workitems store to one element in '" + s.text +
          "' — lanes would collide (and the kernel races regardless)");
    }
  }
  // S4: barriers are group-wide synchronization points; a guarded barrier is
  // legal only with a uniformity proof for its guard. The proof bits come
  // from the mclverify dataflow (verify::uniform_guards), so kernels whose
  // guards are computed from uniform inputs are no longer scalarized.
  for (std::size_t k = 0; k < body.stmts.size(); ++k) {
    const Stmt& s = body.stmts[k];
    if (!s.barrier) continue;
    bool uniform = !s.divergent;
    if (uniform && s.guard_temp) {
      uniform = opts.uniform_guard != nullptr &&
                k < opts.uniform_guard->size() && (*opts.uniform_guard)[k];
    }
    if (!uniform) {
      v.reasons.push_back(
          "S4: barrier under (potentially) item-dependent control in '" +
          s.text + "' — workitems of a group would diverge at a group-wide "
          "synchronization point");
    }
  }
}

}  // namespace

std::string Verdict::summary() const {
  std::string out = vectorizable ? "VECTORIZABLE" : "NOT vectorizable";
  for (const std::string& r : reasons) {
    out += "\n  - " + r;
  }
  return out;
}

Verdict analyze(const LoopBody& body, Model model, int width) {
  AnalysisOptions opts;
  opts.width = width;
  return analyze(body, model, opts);
}

Verdict analyze(const LoopBody& body, Model model,
                const AnalysisOptions& options) {
  Verdict v;
  if (model == Model::Loop) {
    check_loop_model(body, options, v);
  } else {
    check_spmd_model(body, options, v);
  }
  v.vectorizable = v.reasons.empty();
  if (v.vectorizable) {
    v.reasons.push_back(model == Model::Loop
                            ? "all loop-vectorizer legality rules hold"
                            : "workitems are independent by the SPMD contract; "
                              "lanes pack across items");
  }
  return v;
}

std::string to_string(const LoopBody& body) {
  std::ostringstream os;
  os << "loop '" << body.name << "'";
  if (body.trip_count > 0) {
    os << ", trip count " << body.trip_count;
  } else {
    os << ", uncountable";
  }
  if (!body.straight_line) os << ", control flow in body";
  if (!body.single_entry_exit) os << ", multiple entries/exits";
  os << ":\n";
  for (const Stmt& s : body.stmts) os << "  " << s.text << "\n";
  return os.str();
}

std::string explain_both(const LoopBody& body, int width) {
  std::ostringstream os;
  os << "body '" << body.name << "':\n";
  for (const Stmt& s : body.stmts) os << "    " << s.text << "\n";
  const Verdict loop = analyze(body, Model::Loop, width);
  const Verdict spmd = analyze(body, Model::Spmd, width);
  os << "  loop auto-vectorizer (OpenMP model): " << loop.summary() << "\n";
  os << "  SPMD vectorizer (OpenCL model):      " << spmd.summary() << "\n";
  return os.str();
}

}  // namespace mcl::veclegal
