// Vectorization legality analysis for the two programming models.
//
// Loop model (OpenMP-style auto-vectorizer, after Intel's documented rules
// [17] and the paper's Sec. III-F):
//   L1 countable loop, single entry/exit, straight-line body;
//   L2 every array access has unit stride (scale 1) or is loop-invariant
//      (scale 0, read-only) — "noncontiguous memory access" rule;
//   L3 no loop-carried dependence with distance 0 < d < W — "data
//      dependence" rule (includes scalar recurrences);
//   L4 no chained read-modify-write of the same location inside one
//      iteration — vectorization reorders operations, and a true dependence
//      chain through memory forbids that reordering (the Fig 11 FMUL case).
//
// SPMD model (OpenCL implicit vectorizer): workitems are independent by
// contract, so lanes can always be packed — legality only fails when the
// kernel itself races:
//   S1 every array write must be item-distinct (|scale| >= 1), otherwise
//      adjacent lanes would collide on one element;
//   S4 a barrier must be reached by every workitem of a group — a
//      guarded barrier is legal only when the guard is PROVEN uniform (the
//      mclverify uniformity dataflow exports that proof through
//      AnalysisOptions::uniform_guard; without it the vectorizer must
//      assume divergence).
// Intra-item dependence chains are irrelevant — precisely why the OpenCL
// compiler vectorizes the Fig 11 body while the loop vectorizer refuses.
#pragma once

#include <string>
#include <vector>

#include "veclegal/ir.hpp"

namespace mcl::veclegal {

enum class Model { Loop, Spmd };

struct Verdict {
  bool vectorizable = false;
  std::vector<std::string> reasons;  ///< failures, or positive rationale

  [[nodiscard]] std::string summary() const;
};

/// Knobs of the modeled loop compiler.
struct AnalysisOptions {
  int width = 8;  ///< SIMD width W used for the distance test (L3)
  /// Recognize `t = t OP expr` reduction idioms and vectorize them with
  /// partial accumulators (requires reassociation — the -ffast-math /
  /// modern-compiler behavior; the paper-era fragile vectorizer refuses,
  /// which is the default).
  bool allow_reduction_idioms = false;
  /// Per-statement "guard proven uniform" bits from the mclverify uniformity
  /// dataflow (verify::uniform_guards), index-aligned with body.stmts. When
  /// null, any guarded barrier is conservatively treated as divergent (S4).
  const std::vector<bool>* uniform_guard = nullptr;
};

/// `width` is the SIMD width W used for the distance test (L3).
[[nodiscard]] Verdict analyze(const LoopBody& body, Model model, int width = 8);

/// Full-options form.
[[nodiscard]] Verdict analyze(const LoopBody& body, Model model,
                              const AnalysisOptions& options);

/// Renders the loop body as pseudo-source (statement texts + metadata).
[[nodiscard]] std::string to_string(const LoopBody& body);

/// Renders a Fig-11-style side-by-side explanation for one body.
[[nodiscard]] std::string explain_both(const LoopBody& body, int width = 8);

}  // namespace mcl::veclegal
