// Affine loop IR for vectorization-legality analysis.
//
// The paper's Fig 10/11 point is that *which* code gets vectorized is a
// property of the programming model: a loop auto-vectorizer must prove
// legality rules that an SPMD (OpenCL) vectorizer does not need. To make
// that policy difference computable (rather than hard-coding who wins), the
// MBench bodies are declared once in this IR and src/veclegal/analysis
// renders the verdict for each model. The benches then time the real scalar
// or SIMD implementation the "compiler" chose.
//
// Model: a single innermost loop (or kernel body) over induction variable i
// (loop iteration == workitem id). Statements execute in order; array
// subscripts are affine in i (scale * i + offset); scalar temporaries are
// tracked by id.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mcl::veclegal {

/// scale * i + offset, elements (not bytes).
struct Subscript {
  long long scale = 1;
  long long offset = 0;
};

struct ArrayRef {
  int array = 0;  ///< array identity (same id = same base pointer)
  Subscript subscript;
};

/// One statement: target = op(sources). Either an array store or a scalar
/// temp definition; sources are array loads and/or scalar temps. A statement
/// may instead be a workgroup barrier (no accesses), which partitions the
/// body into synchronization epochs for the sanitizer's race rules.
struct Stmt {
  std::optional<ArrayRef> array_write;
  std::optional<int> temp_write;
  std::vector<ArrayRef> array_reads;
  std::vector<int> temp_reads;
  std::string text;  ///< pretty form for explanations ("a[i] = a[i] * b[i]")
  bool barrier = false;   ///< barrier(CLK_*_MEM_FENCE) statement
  bool divergent = false; ///< executes under an item-id-dependent condition
  /// Temp id holding the guard condition, when the statement executes under
  /// `if (tN)`. Unlike the blunt `divergent` bit, the uniformity dataflow in
  /// src/verify classifies the guard temp itself, so a condition computed
  /// from uniform inputs keeps the statement uniform.
  std::optional<int> guard_temp;
};

struct LoopBody {
  std::string name;
  std::vector<Stmt> stmts;
  long long trip_count = 0;   ///< 0 = unknown (uncountable)
  bool single_entry_exit = true;
  bool straight_line = true;  ///< no control flow inside the body
};

// -- tiny builder helpers so app code stays readable -------------------------

[[nodiscard]] inline ArrayRef ref(int array, long long scale = 1,
                                  long long offset = 0) {
  return ArrayRef{array, Subscript{scale, offset}};
}

/// a[w] = f(reads...)
[[nodiscard]] inline Stmt store(ArrayRef w, std::vector<ArrayRef> reads,
                                std::string text = {},
                                std::vector<int> temp_reads = {}) {
  Stmt s;
  s.array_write = w;
  s.array_reads = std::move(reads);
  s.temp_reads = std::move(temp_reads);
  s.text = std::move(text);
  return s;
}

/// t = f(reads..., temps...)
[[nodiscard]] inline Stmt assign_temp(int temp, std::vector<ArrayRef> reads,
                                      std::vector<int> temp_reads = {},
                                      std::string text = {}) {
  Stmt s;
  s.temp_write = temp;
  s.array_reads = std::move(reads);
  s.temp_reads = std::move(temp_reads);
  s.text = std::move(text);
  return s;
}

/// barrier(); `divergent` marks a barrier reached only by some workitems
/// (an item-id-dependent condition guards it) — illegal in OpenCL.
[[nodiscard]] inline Stmt barrier_stmt(bool divergent = false,
                                       std::string text = "barrier()") {
  Stmt s;
  s.barrier = true;
  s.divergent = divergent;
  s.text = std::move(text);
  return s;
}

/// Marks an access statement as guarded by an item-id-dependent condition.
[[nodiscard]] inline Stmt divergent_stmt(Stmt s) {
  s.divergent = true;
  return s;
}

/// Marks a statement as guarded by `if (t<guard_temp>)`; whether that makes
/// it divergent is decided by the uniformity analysis of the guard temp.
[[nodiscard]] inline Stmt guarded(Stmt s, int guard_temp) {
  s.guard_temp = guard_temp;
  return s;
}

}  // namespace mcl::veclegal
