#include "veclegal/kernel_ir.hpp"

#include <sstream>

#include "veclegal/analysis.hpp"

namespace mcl::veclegal {

std::string to_string(const KernelIr& ir) {
  std::ostringstream out;
  out << to_string(ir.body);
  for (const ArrayInfo& a : ir.arrays) {
    out << "array A" << a.array << ": extent=" << a.extent
        << " elem_bytes=" << a.elem_bytes << " arg=" << a.arg_index;
    if (a.read_only) out << " read_only";
    if (a.local) out << " local";
    out << "\n";
  }
  return out.str();
}

KernelIrRegistry& KernelIrRegistry::instance() {
  static KernelIrRegistry registry;
  return registry;
}

void KernelIrRegistry::add(std::string kernel_name, KernelIr ir) {
  std::vector<std::function<void(const std::string&)>> hooks;
  {
    // One critical section invalidates the analysis cache, bumps the
    // generation, AND publishes the new IR: concurrent find()/names()
    // readers (the tune launch path calls features_for -> find() while
    // mclcheck-style clients re-register at runtime) must never observe the
    // map mid-mutation, and no reader may see the new IR paired with a
    // stale cached analysis.
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.erase(kernel_name);
    ++generations_[kernel_name];
    irs_[kernel_name] = std::move(ir);
    hooks = invalidation_hooks_;
  }
  // Hooks run outside the cache lock (they may re-enter the registry, e.g.
  // to read the new generation) and after the new IR is visible.
  for (const auto& hook : hooks) hook(kernel_name);
}

void KernelIrRegistry::add_invalidation_hook(
    std::function<void(const std::string&)> hook) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  invalidation_hooks_.push_back(std::move(hook));
}

std::shared_ptr<const void> KernelIrRegistry::cached(
    const std::string& kernel_name, const std::string& key) const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto kernel_it = cache_.find(kernel_name);
  if (kernel_it == cache_.end()) return nullptr;
  const auto it = kernel_it->second.find(key);
  return it == kernel_it->second.end() ? nullptr : it->second;
}

void KernelIrRegistry::put_cache(const std::string& kernel_name,
                                 const std::string& key,
                                 std::shared_ptr<const void> value) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_[kernel_name][key] = std::move(value);
}

std::uint64_t KernelIrRegistry::generation(
    const std::string& kernel_name) const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = generations_.find(kernel_name);
  return it == generations_.end() ? 0 : it->second;
}

const KernelIr* KernelIrRegistry::find(const std::string& kernel_name) const {
  // The returned pointer stays valid across concurrent add()s of OTHER
  // kernels (map nodes are stable); re-registering the SAME kernel while a
  // caller still reads its IR remains the caller's race to avoid, as it was
  // before the map itself was locked.
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = irs_.find(kernel_name);
  return it == irs_.end() ? nullptr : &it->second;
}

std::vector<std::string> KernelIrRegistry::names() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  std::vector<std::string> out;
  out.reserve(irs_.size());
  for (const auto& [name, ir] : irs_) out.push_back(name);
  return out;
}

}  // namespace mcl::veclegal
