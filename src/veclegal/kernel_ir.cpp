#include "veclegal/kernel_ir.hpp"

namespace mcl::veclegal {

KernelIrRegistry& KernelIrRegistry::instance() {
  static KernelIrRegistry registry;
  return registry;
}

void KernelIrRegistry::add(std::string kernel_name, KernelIr ir) {
  irs_[std::move(kernel_name)] = std::move(ir);
}

const KernelIr* KernelIrRegistry::find(const std::string& kernel_name) const {
  auto it = irs_.find(kernel_name);
  return it == irs_.end() ? nullptr : &it->second;
}

std::vector<std::string> KernelIrRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(irs_.size());
  for (const auto& [name, ir] : irs_) out.push_back(name);
  return out;
}

}  // namespace mcl::veclegal
