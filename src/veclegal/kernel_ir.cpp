#include "veclegal/kernel_ir.hpp"

#include <sstream>

#include "veclegal/analysis.hpp"

namespace mcl::veclegal {

std::string to_string(const KernelIr& ir) {
  std::ostringstream out;
  out << to_string(ir.body);
  for (const ArrayInfo& a : ir.arrays) {
    out << "array A" << a.array << ": extent=" << a.extent
        << " elem_bytes=" << a.elem_bytes << " arg=" << a.arg_index;
    if (a.read_only) out << " read_only";
    if (a.local) out << " local";
    out << "\n";
  }
  return out.str();
}

KernelIrRegistry& KernelIrRegistry::instance() {
  static KernelIrRegistry registry;
  return registry;
}

void KernelIrRegistry::add(std::string kernel_name, KernelIr ir) {
  irs_[std::move(kernel_name)] = std::move(ir);
}

const KernelIr* KernelIrRegistry::find(const std::string& kernel_name) const {
  auto it = irs_.find(kernel_name);
  return it == irs_.end() ? nullptr : &it->second;
}

std::vector<std::string> KernelIrRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(irs_.size());
  for (const auto& [name, ir] : irs_) out.push_back(name);
  return out;
}

}  // namespace mcl::veclegal
