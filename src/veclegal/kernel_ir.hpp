// Kernel IR descriptors: the bridge between the affine loop IR and the
// runtime's kernel registry.
//
// MiniCL has no OpenCL C frontend, so the analyzable form of a kernel (a
// veclegal::LoopBody whose induction variable is the dim-0 global id) is
// declared alongside the compiled body and registered here by kernel name.
// The mclsan static analyzer walks every registered descriptor; the Checked
// executor replays a launch's access sets from it at run time.
//
// ArrayInfo augments the bare array ids of the IR with what the checkers
// need: the declared extent (for bounds rule B1), the KernelArgs slot the
// array is bound to (for runtime replay), the element size, and whether the
// array is read-only or lives in workgroup-local memory (local arrays are
// barrier-scoped for the race rules; global arrays are not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "veclegal/ir.hpp"

namespace mcl::veclegal {

/// Metadata for one array of a kernel IR.
struct ArrayInfo {
  int array = 0;             ///< matches ArrayRef::array
  int arg_index = -1;        ///< KernelArgs slot bound at launch (-1 unknown)
  long long extent = 0;      ///< declared extent in elements; 0 = unknown
                             ///< (runtime replay takes it from the buffer)
  std::size_t elem_bytes = sizeof(float);
  bool read_only = false;    ///< kernel contract: never written
  bool local = false;        ///< workgroup-local arena array
};

/// A kernel's analyzable form: body + per-array metadata.
struct KernelIr {
  LoopBody body;
  std::vector<ArrayInfo> arrays;

  /// nullptr when array id has no declared metadata.
  [[nodiscard]] const ArrayInfo* array_info(int id) const noexcept {
    for (const ArrayInfo& a : arrays) {
      if (a.array == id) return &a;
    }
    return nullptr;
  }
};

/// Process-wide kernel-name -> IR descriptor map (the analysis-side analogue
/// of ocl::Program::builtin()).
class KernelIrRegistry {
 public:
  [[nodiscard]] static KernelIrRegistry& instance();

  void add(std::string kernel_name, KernelIr ir);
  /// Thread-safe lookup. The pointer stays valid across add()s of other
  /// kernels (map nodes are stable); holding it across a re-registration of
  /// the SAME kernel races with the in-place overwrite.
  [[nodiscard]] const KernelIr* find(const std::string& kernel_name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  // -- per-kernel analysis cache --------------------------------------------
  //
  // Derived analysis results (san reports, verify facts, discharged launch
  // proofs) are memoized here, keyed (kernel, analysis-key), type-erased so
  // the registry does not depend on its clients. add() drops every cached
  // entry of the re-registered kernel and bumps its generation, so stale
  // facts can never outlive the IR they were computed from.

  /// Cached entry, or nullptr. Thread-safe.
  [[nodiscard]] std::shared_ptr<const void> cached(
      const std::string& kernel_name, const std::string& key) const;

  /// Stores an entry (last writer wins). Thread-safe.
  void put_cache(const std::string& kernel_name, const std::string& key,
                 std::shared_ptr<const void> value);

  /// Monotone counter, bumped each time the kernel's IR is (re)registered.
  [[nodiscard]] std::uint64_t generation(const std::string& kernel_name) const;

  /// Registers a callback run (after the analysis cache is dropped and the
  /// generation bumped, outside the cache lock) every time a kernel's IR is
  /// (re)registered. Clients holding derived state OUTSIDE this registry's
  /// cache — the mcltune Tuner's per-shape entries — use it to evict on
  /// re-registration. Hooks are never removed; register process-lifetime
  /// objects only.
  void add_invalidation_hook(std::function<void(const std::string&)> hook);

  /// Lookup-or-compute convenience. `compute` runs outside the cache lock;
  /// concurrent first callers may compute twice, last write wins.
  template <typename T, typename Fn>
  [[nodiscard]] std::shared_ptr<const T> memoize(const std::string& kernel_name,
                                                 const std::string& key,
                                                 Fn&& compute) {
    if (auto hit = cached(kernel_name, key)) {
      return std::static_pointer_cast<const T>(std::move(hit));
    }
    auto value = std::make_shared<const T>(std::forward<Fn>(compute)());
    put_cache(kernel_name, key, value);
    return value;
  }

 private:
  std::map<std::string, KernelIr> irs_;
  mutable std::mutex cache_mutex_;
  std::map<std::string, std::map<std::string, std::shared_ptr<const void>>>
      cache_;
  std::map<std::string, std::uint64_t> generations_;
  std::vector<std::function<void(const std::string&)>> invalidation_hooks_;
};

/// Builder helper mirroring veclegal::ref/store: declares one array's
/// metadata in a single expression.
[[nodiscard]] inline ArrayInfo array_info(int array, long long extent,
                                          int arg_index = -1,
                                          bool read_only = false,
                                          bool local = false,
                                          std::size_t elem_bytes = sizeof(float)) {
  return ArrayInfo{array, arg_index, extent, elem_bytes, read_only, local};
}

/// Renders the full descriptor — body pseudo-source plus one metadata line
/// per array — for diagnostics and mclcheck repro files.
[[nodiscard]] std::string to_string(const KernelIr& ir);

/// Static registration helper, mirroring ocl::KernelRegistrar:
///   const KernelIrRegistrar ir_reg{"square", KernelIr{...}};
struct KernelIrRegistrar {
  KernelIrRegistrar(std::string kernel_name, KernelIr ir) {
    KernelIrRegistry::instance().add(std::move(kernel_name), std::move(ir));
  }
};

}  // namespace mcl::veclegal
