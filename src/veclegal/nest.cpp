#include "veclegal/nest.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <sstream>

namespace mcl::veclegal {

std::string Dependence2::direction() const {
  auto dir = [](long long d) { return d > 0 ? "<" : (d < 0 ? ">" : "="); };
  return std::string("(") + dir(di) + ", " + dir(dj) + ")";
}

namespace {

bool in_space(const LoopNest& nest, long long di, long long dj) {
  return std::llabs(di) < std::max<long long>(nest.outer_trip, 1) &&
         std::llabs(dj) < std::max<long long>(nest.inner_trip, 1);
}

void push_canonical(long long di, long long dj, const std::string& label,
                    std::vector<Dependence2>& out) {
  if (di == 0 && dj == 0) return;  // same iteration: not loop-carried
  if (di < 0 || (di == 0 && dj < 0)) {
    di = -di;
    dj = -dj;
  }
  for (const Dependence2& d : out) {
    if (d.di == di && d.dj == dj && d.between == label) return;  // dedupe
  }
  out.push_back({di, dj, label});
}

/// Solves the per-dimension equality system for (di, dj): for each dim d,
///   w_d(i, j) == r_d(i + di, j + dj)
///   =>  r.ci*di + r.cj*dj == w.off - r.off          (when scales match)
/// Mismatched scales in a dimension make that equation nonlinear in the
/// iteration variables; we then conservatively assume a dependence.
void solve_pair(const LoopNest& nest, const ArrayRef2& w, const ArrayRef2& r,
                const std::string& label, std::vector<Dependence2>& out) {
  if (w.subs.size() != r.subs.size()) {
    push_canonical(0, 1, label + " (rank mismatch: assumed)", out);
    return;
  }
  // Gather the linear equations A*di + B*dj = C.
  std::vector<std::array<long long, 3>> eqs;
  for (std::size_t d = 0; d < w.subs.size(); ++d) {
    if (w.subs[d].ci != r.subs[d].ci || w.subs[d].cj != r.subs[d].cj) {
      push_canonical(0, 1, label + " (unequal subscript scales: assumed)", out);
      return;
    }
    eqs.push_back({r.subs[d].ci, r.subs[d].cj, w.subs[d].off - r.subs[d].off});
  }

  // Try to find two independent equations.
  for (std::size_t a = 0; a < eqs.size(); ++a) {
    for (std::size_t b = a + 1; b < eqs.size(); ++b) {
      const long long det = eqs[a][0] * eqs[b][1] - eqs[a][1] * eqs[b][0];
      if (det == 0) continue;
      const long long num_di = eqs[a][2] * eqs[b][1] - eqs[a][1] * eqs[b][2];
      const long long num_dj = eqs[a][0] * eqs[b][2] - eqs[a][2] * eqs[b][0];
      if (num_di % det != 0 || num_dj % det != 0) return;  // no integer sol
      const long long di = num_di / det;
      const long long dj = num_dj / det;
      if (in_space(nest, di, dj)) push_canonical(di, dj, label, out);
      return;  // unique solution handled
    }
  }

  // Rank-deficient: every equation constrains the same line (or nothing).
  // Enumerate di over a bounded window and derive dj per equation.
  const long long wi = std::min<long long>(nest.outer_trip - 1, 8);
  for (long long di = -wi; di <= wi; ++di) {
    bool feasible = true;
    long long dj = 0;
    bool dj_bound = false;
    for (const auto& [A, B, C] : eqs) {
      const long long rem = C - A * di;
      if (B == 0) {
        if (rem != 0) {
          feasible = false;
          break;
        }
      } else {
        if (rem % B != 0) {
          feasible = false;
          break;
        }
        const long long cand = rem / B;
        if (dj_bound && cand != dj) {
          feasible = false;
          break;
        }
        dj = cand;
        dj_bound = true;
      }
    }
    if (!feasible) continue;
    if (!dj_bound) {
      // dj unconstrained: the tightest loop-carried instance is (di, 0) for
      // di != 0, or (0, 1) when even di is free.
      if (di != 0 && in_space(nest, di, 0)) push_canonical(di, 0, label, out);
      if (di == 0) push_canonical(0, 1, label, out);
      continue;
    }
    if (in_space(nest, di, dj)) push_canonical(di, dj, label, out);
  }
}

}  // namespace

std::vector<Dependence2> find_dependences(const LoopNest& nest) {
  std::vector<Dependence2> deps;
  for (const Stmt2& ws : nest.stmts) {
    if (!ws.array_write) continue;
    for (const Stmt2& rs : nest.stmts) {
      const std::string label = "'" + ws.text + "' -> '" + rs.text + "'";
      for (const ArrayRef2& r : rs.array_reads) {
        if (r.array != ws.array_write->array) continue;
        solve_pair(nest, *ws.array_write, r, label, deps);
      }
      if (rs.array_write && &rs != &ws &&
          rs.array_write->array == ws.array_write->array) {
        solve_pair(nest, *ws.array_write, *rs.array_write, label + " (output)",
                   deps);
      }
    }
  }
  return deps;
}

Verdict analyze_inner(const LoopNest& nest, int width) {
  return analyze_inner(nest, width, true);
}

Verdict analyze_inner(const LoopNest& nest, int width, bool check_strides) {
  Verdict v;
  if (nest.inner_trip <= 0 || nest.outer_trip <= 0) {
    v.reasons.push_back("N1: nest is not countable");
  }
  for (const Stmt2& s : nest.stmts) {
    if (!check_strides) break;
    auto check = [&](const ArrayRef2& ref, bool is_write) {
      // Contiguity along j: the last dimension must move with j at stride
      // 1 (or not at all, for loads); any other dimension moving with j is
      // a row-crossing (huge-stride) access.
      for (std::size_t d = 0; d + 1 < ref.subs.size(); ++d) {
        if (ref.subs[d].cj != 0) {
          v.reasons.push_back("N2: dimension " + std::to_string(d) +
                              " varies with the inner index in '" + s.text +
                              "' (non-contiguous)");
          return;
        }
      }
      const long long cj = ref.subs.back().cj;
      if (cj == 1) return;
      if (cj == 0 && !is_write) return;  // inner-invariant load
      std::ostringstream os;
      os << "N2: non-unit inner stride (" << cj << ") in '" << s.text << "'";
      v.reasons.push_back(os.str());
    };
    if (s.array_write) check(*s.array_write, true);
    for (const ArrayRef2& r : s.array_reads) check(r, false);
  }
  for (const Dependence2& d : find_dependences(nest)) {
    // Only dependences carried by j with i equal constrain inner
    // vectorization; outer-carried ones are honored by the outer loop.
    if (d.di == 0 && d.dj != 0 && std::llabs(d.dj) < width) {
      std::ostringstream os;
      os << "N3: inner-carried dependence, distance (" << d.di << ", " << d.dj
         << ") " << d.direction() << " between " << d.between;
      v.reasons.push_back(os.str());
    }
  }
  v.vectorizable = v.reasons.empty();
  if (v.vectorizable) v.reasons.push_back("inner loop vectorizes as written");
  return v;
}

Verdict can_interchange(const LoopNest& nest) {
  Verdict v;
  for (const Dependence2& d : find_dependences(nest)) {
    if (d.di > 0 && d.dj < 0) {
      std::ostringstream os;
      os << "I1: dependence with direction (<, >) — distance (" << d.di << ", "
         << d.dj << ") between " << d.between
         << " — would become the impossible (>, <) after interchange";
      v.reasons.push_back(os.str());
    }
  }
  v.vectorizable = v.reasons.empty();
  if (v.vectorizable) v.reasons.push_back("interchange preserves all dependences");
  return v;
}

std::string vectorization_strategy(const LoopNest& nest, int width) {
  if (analyze_inner(nest, width).vectorizable) return "inner";
  if (can_interchange(nest).vectorizable) {
    // After interchange the old outer index becomes the inner one: swap the
    // trip counts and every subscript's (ci, cj).
    LoopNest swapped = nest;
    std::swap(swapped.outer_trip, swapped.inner_trip);
    for (Stmt2& s : swapped.stmts) {
      auto flip = [](ArrayRef2& r) {
        for (Affine2& a : r.subs) std::swap(a.ci, a.cj);
      };
      if (s.array_write) flip(*s.array_write);
      for (ArrayRef2& r : s.array_reads) flip(r);
    }
    // Dependence-level legality only: interchanging a row-major nest makes
    // the new inner accesses strided, which is a cost problem (gathers),
    // not a correctness one — the strategy answer reports what a
    // dependence-driven vectorizer could do.
    if (analyze_inner(swapped, width, false).vectorizable) {
      return "after-interchange";
    }
  }
  return "none";
}

}  // namespace mcl::veclegal
