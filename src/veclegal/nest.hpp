// Two-level loop-nest dependence analysis: direction vectors, inner-loop
// vectorization legality, and loop-interchange legality.
//
// Extends the single-loop model of analysis.hpp to the classic nested case
// (i outer, j inner). Array references carry one affine subscript *per
// dimension* (ci*i + cj*j + off), the textbook representation: a[i][j-1]
// can then never alias a different row, unlike a flattened linear
// subscript. Dependences are distance vectors (di, dj) obtained by solving
// the per-dimension equations exactly (Cramer) with a windowed fallback for
// rank-deficient systems.
//
// This is the machinery a loop vectorizer needs for 2D kernels like the
// paper's Matrixmul/Blackscholes OpenMP ports: an inner loop may be
// unvectorizable as written yet become vectorizable after interchange — and
// interchange is itself only legal when no dependence has direction (<, >).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "veclegal/analysis.hpp"

namespace mcl::veclegal {

/// ci*i + cj*j + off (array elements along one dimension).
struct Affine2 {
  long long ci = 0;
  long long cj = 0;
  long long off = 0;
};

/// 1D or 2D array reference: one affine index per dimension (the last
/// dimension is contiguous in memory).
struct ArrayRef2 {
  int array = 0;
  std::vector<Affine2> subs;
};

struct Stmt2 {
  std::optional<ArrayRef2> array_write;
  std::vector<ArrayRef2> array_reads;
  std::string text;
};

struct LoopNest {
  std::string name;
  long long outer_trip = 0;  ///< i extent
  long long inner_trip = 0;  ///< j extent
  std::vector<Stmt2> stmts;
};

/// One dependence between two references, as a distance vector (di, dj).
struct Dependence2 {
  long long di = 0;
  long long dj = 0;
  std::string between;  ///< "'w-text' -> 'r-text'"

  /// Direction vector in the classic (<, =, >) notation.
  [[nodiscard]] std::string direction() const;
};

/// All loop-carried dependences within the iteration space, between each
/// write and every same-array reference. Distances are canonicalized to
/// lexicographically positive form.
[[nodiscard]] std::vector<Dependence2> find_dependences(const LoopNest& nest);

/// Inner-loop (j) vectorization legality: shape rules on j-strides plus
/// "no dependence carried by j (i equal) at distance < width".
[[nodiscard]] Verdict analyze_inner(const LoopNest& nest, int width = 8);

/// As above; `check_strides = false` skips the contiguity rules (N2),
/// leaving pure dependence legality — what the interchange strategy query
/// needs, since interchange changes iteration order but not memory layout.
[[nodiscard]] Verdict analyze_inner(const LoopNest& nest, int width,
                                    bool check_strides);

/// Loop-interchange legality: illegal iff some dependence has direction
/// (<, >) — interchange would reverse it to the impossible (>, <).
[[nodiscard]] Verdict can_interchange(const LoopNest& nest);

/// Convenience: is the nest vectorizable as written, after interchange, or
/// not at all? Returns "inner" / "after-interchange" / "none".
[[nodiscard]] std::string vectorization_strategy(const LoopNest& nest,
                                                 int width = 8);

}  // namespace mcl::veclegal
