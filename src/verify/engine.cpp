#include "verify/engine.hpp"

#include <algorithm>

#include "veclegal/kernel_ir.hpp"

namespace mcl::verify {

namespace {

using veclegal::ArrayRef;
using veclegal::KernelIr;
using veclegal::Stmt;

[[nodiscard]] Uniformity join(Uniformity a, Uniformity b) noexcept {
  return (a == Uniformity::ItemDependent || b == Uniformity::ItemDependent)
             ? Uniformity::ItemDependent
             : Uniformity::Uniform;
}

}  // namespace

UniformityResult run_uniformity(const KernelIr& ir) {
  const auto& stmts = ir.body.stmts;
  UniformityResult result;
  result.stmt_guard.assign(stmts.size(), Uniformity::Uniform);
  result.stmt_value.assign(stmts.size(), Uniformity::Uniform);

  int max_temp = -1;
  for (const Stmt& s : stmts) {
    if (s.temp_write) max_temp = std::max(max_temp, *s.temp_write);
    for (const int t : s.temp_reads) max_temp = std::max(max_temp, t);
    if (s.guard_temp) max_temp = std::max(max_temp, *s.guard_temp);
  }
  // Optimistic start: everything Uniform; the monotone transfer only ever
  // lowers entries to ItemDependent, so the loop converges to the least
  // fixpoint of the system.
  result.temps.assign(static_cast<std::size_t>(max_temp + 1),
                      Uniformity::Uniform);

  // An array the kernel writes is a cross-item communication channel: even a
  // scale-0 read of it can observe another item's store, so only reads of
  // never-written arrays yield uniform values.
  std::vector<int> written_ids;
  for (const Stmt& s : stmts) {
    if (s.array_write) written_ids.push_back(s.array_write->array);
  }
  const auto array_written = [&](int id) {
    return std::find(written_ids.begin(), written_ids.end(), id) !=
           written_ids.end();
  };

  const auto read_uniformity = [&](const ArrayRef& r) {
    if (r.subscript.scale != 0) return Uniformity::ItemDependent;
    return array_written(r.array) ? Uniformity::ItemDependent
                                  : Uniformity::Uniform;
  };

  const int cap = static_cast<int>(stmts.size()) + 2;
  bool changed = true;
  while (changed && result.iterations < cap) {
    changed = false;
    ++result.iterations;
    for (std::size_t k = 0; k < stmts.size(); ++k) {
      const Stmt& s = stmts[k];
      Uniformity guard = s.divergent ? Uniformity::ItemDependent
                                     : Uniformity::Uniform;
      if (s.guard_temp) {
        guard = join(guard, result.temps[static_cast<std::size_t>(
                                *s.guard_temp)]);
      }
      Uniformity value = guard;
      for (const ArrayRef& r : s.array_reads) {
        value = join(value, read_uniformity(r));
      }
      for (const int t : s.temp_reads) {
        value = join(value, result.temps[static_cast<std::size_t>(t)]);
      }
      if (result.stmt_guard[k] != guard) {
        result.stmt_guard[k] = guard;
        changed = true;
      }
      if (result.stmt_value[k] != value) {
        result.stmt_value[k] = value;
        changed = true;
      }
      if (s.temp_write) {
        auto& slot = result.temps[static_cast<std::size_t>(*s.temp_write)];
        const Uniformity joined = join(slot, value);
        if (slot != joined) {
          slot = joined;
          changed = true;
        }
      }
    }
  }
  return result;
}

}  // namespace mcl::verify
