// mclverify dataflow engine: a fixpoint iteration over the statements of a
// KernelIr body, propagating a per-temp abstract state until it stabilizes.
//
// The engine is deliberately generic over a tiny lattice interface (an
// optimistic initial value plus a monotone per-statement transfer) because
// the IR is straight-line but temps may feed each other in any pattern; one
// monotone sweep per dependence edge reaches the least fixpoint, and the
// iteration cap makes non-termination structurally impossible.
//
// The one client today is the uniformity analysis: every expression is
// classified Uniform (one value per workgroup) or ItemDependent. Sources of
// item-dependence are affine array reads with nonzero scale (the value
// varies with the id), reads of arrays the kernel also writes (another item
// may have written the element), statements guarded by an item-dependent
// condition, and temps already classified item-dependent.
#pragma once

#include <vector>

#include "verify/facts.hpp"

namespace mcl::veclegal {
struct KernelIr;
}

namespace mcl::verify {

struct UniformityResult {
  /// Per statement: the uniformity of the condition under which it executes
  /// (Uniform when unguarded). This is what barrier rule P1 generalizes to.
  std::vector<Uniformity> stmt_guard;
  /// Per statement: the uniformity of the value it computes (guard joined
  /// with every source).
  std::vector<Uniformity> stmt_value;
  /// Per temp id: least classification over all definitions.
  std::vector<Uniformity> temps;
  int iterations = 0;  ///< sweeps until no state changed (>= 1)
};

/// Runs the uniformity dataflow to fixpoint.
[[nodiscard]] UniformityResult run_uniformity(const veclegal::KernelIr& ir);

}  // namespace mcl::verify
