// mclverify result model: the machine-checkable facts the dataflow engine
// derives from one KernelIr, plus the launch-shape key and proof record the
// runtime uses to discharge them.
//
// KernelFacts is computed once per kernel (registration time, cached in the
// KernelIrRegistry) and is SYMBOLIC: bounds obligations are kept as the raw
// affine accesses, race freedom is proven for every launch shape (trip count
// treated as unknown), and uniformity is a per-statement classification.
// A LaunchProof is the facts discharged against one concrete ShapeClass
// (global size, local size, offset, resolved extents) — O(accesses) work,
// also cached per (kernel, shape-class).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcl::verify {

/// Memory-access-pattern class of one array's reads or writes — the
/// architecture-independent feature set the auto-tuner consumes
/// (Chilukuri & Milthorpe; ROADMAP item 3).
enum class Pattern {
  None,        ///< no accesses of this kind
  Broadcast,   ///< scale 0: every item touches one element
  UnitStride,  ///< |scale| == 1: consecutive items touch consecutive elements
  Strided,     ///< one common |scale| >= 2
  Gather,      ///< mixed-stride reads
  Scatter,     ///< mixed-stride writes
};

/// Reuse-distance class: does the access stream revisit cache lines?
enum class Reuse {
  None,      ///< each element and line touched once (large stride, one pass)
  Spatial,   ///< neighboring items share a cache line (small stride)
  Temporal,  ///< the same element is touched repeatedly
  Both,
};

enum class Uniformity {
  Uniform,        ///< same value/path for every workitem of a group
  ItemDependent,  ///< depends on the global/local item id
};

[[nodiscard]] const char* to_string(Pattern p) noexcept;
[[nodiscard]] const char* to_string(Reuse r) noexcept;

/// One declared affine access, kept for launch-time bounds discharge.
struct AccessFacts {
  long long scale = 1;
  long long offset = 0;
  bool is_write = false;
  int stmt = 0;   ///< statement index in the IR body
  int epoch = 0;  ///< barrier epoch of that statement
};

/// Everything the analyses proved about one array of the kernel.
struct ArrayFacts {
  int array = 0;             ///< ArrayRef::array id
  int arg_index = -1;        ///< KernelArgs slot (-1 unknown)
  long long declared_extent = 0;  ///< 0 = launch-resolved from the buffer
  std::size_t elem_bytes = 4;
  bool local = false;
  bool read_only_decl = false;  ///< ArrayInfo::read_only
  bool written = false;
  bool read = false;
  Pattern read_pattern = Pattern::None;
  Pattern write_pattern = Pattern::None;
  long long stride = 0;  ///< dominant |scale| (0 broadcast, 1 unit, k strided)
  Reuse reuse = Reuse::None;
  /// No two distinct workitems can touch one element of this array without
  /// barrier-epoch separation, for ANY launch size (trip treated unknown).
  bool race_free = false;
  std::vector<AccessFacts> accesses;
};

/// The full fact record for one kernel.
struct KernelFacts {
  std::string kernel;
  std::vector<ArrayFacts> arrays;
  /// Per statement: is its execution uniform across the workitems of a group
  /// (no item-dependent guard)? Index-aligned with ir.body.stmts.
  std::vector<Uniformity> stmt_uniform;
  std::vector<int> dead_stores;         ///< V1: statement indices
  std::vector<int> redundant_barriers;  ///< V2: statement indices
  bool barrier_divergence_possible = false;  ///< any barrier not proven uniform
  int fixpoint_iterations = 0;  ///< sweeps until the dataflow state stabilized

  [[nodiscard]] const ArrayFacts* array_facts(int id) const noexcept {
    for (const ArrayFacts& a : arrays) {
      if (a.array == id) return &a;
    }
    return nullptr;
  }
};

/// A family member: the concrete launch shape proofs are discharged against.
/// `extents` and `writable` are index-aligned with KernelFacts::arrays and
/// hold the LAUNCH-resolved values (declared extent, or buffer size /
/// elem_bytes, or local_bytes / elem_bytes; extent <= 0 = unresolvable).
struct ShapeClass {
  long long global0 = 0;
  long long local0 = 1;
  long long offset0 = 0;
  std::vector<long long> extents;
  std::vector<bool> writable;

  /// Stable cache key for the (kernel, shape-class) facts cache.
  [[nodiscard]] std::string key() const;
};

/// The discharged proof for one launch: which arrays are safe to exempt from
/// dynamic shadow replay (every access in-bounds, statically race-free, and
/// never written unless the bound buffer is writable).
struct LaunchProof {
  std::vector<bool> array_proven;  ///< index-aligned with KernelFacts::arrays
  std::size_t accesses_covered = 0;  ///< declared accesses the proof exempts

  [[nodiscard]] bool all_proven() const noexcept {
    for (const bool p : array_proven) {
      if (!p) return false;
    }
    return !array_proven.empty();
  }
  [[nodiscard]] std::size_t proven_count() const noexcept {
    std::size_t n = 0;
    for (const bool p : array_proven) n += p ? 1 : 0;
    return n;
  }
};

}  // namespace mcl::verify
