// mclverify value-range domain: closed integer intervals over __int128.
//
// Every subscript in the affine IR is scale*i + offset with i ranging over a
// launch-shape family [first, first + count). The widest values a proof ever
// has to represent are |scale| * n + |offset| with both factors near
// LLONG_MAX, which overflows long long; 128-bit arithmetic makes the whole
// domain total, so range proofs never need an overflow side-condition (the
// same reason the Diophantine solver in san/static_analysis computes in
// __int128 — see ISSUE 6 satellite a).
#pragma once

#include <string>

namespace mcl::verify {

using Wide = __int128;

[[nodiscard]] inline Wide wide_abs(Wide v) noexcept { return v < 0 ? -v : v; }

/// std::gcd is unusable here (__int128 is not std-integral in strict mode).
[[nodiscard]] inline Wide wide_gcd(Wide a, Wide b) noexcept {
  a = wide_abs(a);
  b = wide_abs(b);
  while (b != 0) {
    const Wide t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Decimal rendering (std::to_string has no __int128 overload).
[[nodiscard]] inline std::string wide_str(Wide v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  // Negate digit-by-digit so Wide's own minimum survives.
  std::string digits;
  while (v != 0) {
    int d = static_cast<int>(v % 10);
    if (d < 0) d = -d;
    digits.insert(digits.begin(), static_cast<char>('0' + d));
    v /= 10;
  }
  return neg ? "-" + digits : digits;
}

/// Closed interval [lo, hi]; empty when lo > hi.
struct Interval {
  Wide lo = 0;
  Wide hi = -1;  // default-empty

  [[nodiscard]] bool empty() const noexcept { return lo > hi; }

  /// Range of scale*i + offset for i in [first, first + count) (count >= 1).
  [[nodiscard]] static Interval affine(long long scale, long long offset,
                                       Wide first, Wide count) noexcept {
    const Wide at_first = Wide(scale) * first + Wide(offset);
    const Wide at_last = Wide(scale) * (first + count - 1) + Wide(offset);
    return scale >= 0 ? Interval{at_first, at_last}
                      : Interval{at_last, at_first};
  }

  /// The in-bounds proof obligation: every value falls in [0, extent).
  [[nodiscard]] bool within(Wide extent) const noexcept {
    return empty() || (lo >= 0 && hi < extent);
  }

  [[nodiscard]] Interval join(const Interval& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }

  [[nodiscard]] std::string to_string() const {
    if (empty()) return "[]";
    std::string out = "[";
    out += wide_str(lo);
    out += ", ";
    out += wide_str(hi);
    out += "]";
    return out;
  }
};

}  // namespace mcl::verify
