#include "verify/verify.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "verify/engine.hpp"
#include "verify/interval.hpp"

namespace mcl::verify {

namespace {

using veclegal::ArrayInfo;
using veclegal::ArrayRef;
using veclegal::KernelIr;
using veclegal::KernelIrRegistry;
using veclegal::Stmt;
using veclegal::Subscript;

/// Same brute-force budget as san::StaticOptions::exact_solve_limit.
constexpr long long kExactLimit = 1 << 16;

[[nodiscard]] Pattern classify(const std::vector<long long>& scales,
                               bool is_write) {
  if (scales.empty()) return Pattern::None;
  long long mag = -1;
  bool mixed = false;
  for (const long long s : scales) {
    const long long m = s < 0 ? -s : s;
    if (mag < 0) {
      mag = m;
    } else if (m != mag) {
      mixed = true;
    }
  }
  if (mixed) return is_write ? Pattern::Scatter : Pattern::Gather;
  if (mag == 0) return Pattern::Broadcast;
  if (mag == 1) return Pattern::UnitStride;
  return Pattern::Strided;
}

/// Line size the spatial-reuse classification assumes; matches
/// cachesim::Machine::xeon_e5645().l1.line_bytes.
constexpr long long kLineBytes = 64;

[[nodiscard]] bool race_free_calc(const ArrayFacts& af, bool local) {
  for (std::size_t x = 0; x < af.accesses.size(); ++x) {
    for (std::size_t y = x; y < af.accesses.size(); ++y) {
      const AccessFacts& a = af.accesses[x];
      const AccessFacts& b = af.accesses[y];
      if (!a.is_write && !b.is_write) continue;
      // Barrier epochs order LOCAL (workgroup-scoped) accesses; a barrier
      // does not synchronize a global array across groups.
      if (local && a.epoch != b.epoch) continue;
      // x == y is the access run by every item against itself: it self-
      // collides exactly when scale == 0 (two items, one element), which is
      // what may_collide returns for an equal pair.
      if (may_collide(Subscript{a.scale, a.offset}, Subscript{b.scale, b.offset},
                      /*n=*/0)) {
        return false;
      }
    }
  }
  return true;
}

void find_dead_stores(const KernelIr& ir, KernelFacts& facts) {
  const auto& stmts = ir.body.stmts;
  for (std::size_t k = 0; k < stmts.size(); ++k) {
    if (!stmts[k].array_write) continue;
    const ArrayRef w = *stmts[k].array_write;
    // A cross-item read anywhere may observe the store racily (no program
    // order between items); never flag such a store.
    bool cross_item_read = false;
    for (const Stmt& s : stmts) {
      for (const ArrayRef& r : s.array_reads) {
        if (r.array == w.array &&
            may_collide(r.subscript, w.subscript, /*n=*/0)) {
          cross_item_read = true;
        }
      }
    }
    if (cross_item_read) continue;
    for (std::size_t m = k + 1; m < stmts.size(); ++m) {
      const Stmt& s = stmts[m];
      bool consumed = false;
      for (const ArrayRef& r : s.array_reads) {
        if (r.array == w.array && r.subscript.scale == w.subscript.scale &&
            r.subscript.offset == w.subscript.offset) {
          consumed = true;  // the item re-reads its own element
        }
      }
      if (consumed) break;
      if (s.array_write && s.array_write->array == w.array &&
          s.array_write->subscript.scale == w.subscript.scale &&
          s.array_write->subscript.offset == w.subscript.offset) {
        // A guarded overwrite may not execute; conservatively keeps k alive.
        if (s.divergent || s.guard_temp) break;
        facts.dead_stores.push_back(static_cast<int>(k));
        break;
      }
    }
  }
}

void find_redundant_barriers(const KernelIr& ir, KernelFacts& facts) {
  const auto& stmts = ir.body.stmts;
  for (std::size_t kb = 0; kb < stmts.size(); ++kb) {
    if (!stmts[kb].barrier) continue;
    // The pairs only THIS barrier separates are those with no other barrier
    // between them: one access in the segment ending at kb, the other in the
    // segment starting after it.
    std::size_t seg_lo = 0;
    for (std::size_t j = kb; j-- > 0;) {
      if (stmts[j].barrier) {
        seg_lo = j + 1;
        break;
      }
    }
    std::size_t seg_hi = stmts.size();
    for (std::size_t j = kb + 1; j < stmts.size(); ++j) {
      if (stmts[j].barrier) {
        seg_hi = j;
        break;
      }
    }
    struct SegAccess {
      int array;
      Subscript sub;
      bool is_write;
    };
    const auto collect = [&](std::size_t lo, std::size_t hi) {
      std::vector<SegAccess> out;
      for (std::size_t j = lo; j < hi; ++j) {
        for (const ArrayRef& r : stmts[j].array_reads) {
          out.push_back(SegAccess{r.array, r.subscript, false});
        }
        if (stmts[j].array_write) {
          const ArrayRef& r = *stmts[j].array_write;
          out.push_back(SegAccess{r.array, r.subscript, true});
        }
      }
      return out;
    };
    const std::vector<SegAccess> before = collect(seg_lo, kb);
    const std::vector<SegAccess> after = collect(kb + 1, seg_hi);
    bool needed = false;
    for (const SegAccess& a : before) {
      for (const SegAccess& b : after) {
        if (a.array != b.array) continue;
        if (!a.is_write && !b.is_write) continue;
        // Cross-item interaction is what a barrier orders; an item's own
        // element is already ordered by program order.
        if (may_collide(a.sub, b.sub, /*n=*/0)) needed = true;
      }
    }
    if (!needed) facts.redundant_barriers.push_back(static_cast<int>(kb));
  }
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* to_string(Pattern p) noexcept {
  switch (p) {
    case Pattern::None: return "none";
    case Pattern::Broadcast: return "broadcast";
    case Pattern::UnitStride: return "unit-stride";
    case Pattern::Strided: return "strided";
    case Pattern::Gather: return "gather";
    case Pattern::Scatter: return "scatter";
  }
  return "?";
}

const char* to_string(Reuse r) noexcept {
  switch (r) {
    case Reuse::None: return "none";
    case Reuse::Spatial: return "spatial";
    case Reuse::Temporal: return "temporal";
    case Reuse::Both: return "both";
  }
  return "?";
}

std::string ShapeClass::key() const {
  std::ostringstream k;
  k << "g" << global0 << ";l" << local0 << ";o" << offset0 << ";e";
  for (const long long e : extents) k << e << ",";
  k << ";w";
  for (const bool w : writable) k << (w ? '1' : '0');
  return k.str();
}

bool may_collide(const Subscript& a, const Subscript& b, long long n) {
  if (n == 1) return false;  // a single item has no distinct partner
  const bool bounded = n > 0;
  const Wide as = a.scale, ao = a.offset;
  const Wide bs = b.scale, bo = b.offset;
  if (as == 0 && bs == 0) return ao == bo;
  if (as == 0 || bs == 0) {
    // One element vs a stride: collide when the strided side reaches it.
    const Wide fixed = as == 0 ? ao : bo;
    const Wide scale = as == 0 ? bs : as;
    const Wide base = as == 0 ? bo : ao;
    const Wide num = fixed - base;
    if (num % scale != 0) return false;
    const Wide j = num / scale;
    return j >= 0 && (!bounded || j < n);
  }
  if (as == bs) {
    // as*i + ao == as*j + bo  =>  i - j == (bo - ao) / as, nonzero.
    const Wide num = bo - ao;
    if (num % as != 0) return false;
    const Wide d = wide_abs(num / as);
    if (d == 0) return false;
    return !bounded || d < n;
  }
  if (bounded && n <= kExactLimit) {
    for (long long i = 0; i < n; ++i) {
      const Wide num = as * Wide(i) + ao - bo;
      if (num % bs != 0) continue;
      const Wide j = num / bs;
      if (j >= 0 && j < n && j != i) return true;
    }
    return false;
  }
  // Unbounded (or too large to enumerate): the linear Diophantine equation
  // as*i - bs*j = bo - ao has solutions iff gcd(as, bs) divides the gap, and
  // with as != bs consecutive solutions shift i and j by different amounts,
  // so a distinct-item solution exists whenever any does.
  return (bo - ao) % wide_gcd(as, bs) == 0;
}

KernelFacts analyze(const std::string& kernel, const KernelIr& ir) {
  KernelFacts facts;
  facts.kernel = kernel;
  const auto& stmts = ir.body.stmts;

  std::vector<int> epoch(stmts.size(), 0);
  {
    int e = 0;
    for (std::size_t k = 0; k < stmts.size(); ++k) {
      if (stmts[k].barrier) ++e;
      epoch[k] = e;
    }
  }

  const UniformityResult uni = run_uniformity(ir);
  facts.fixpoint_iterations = uni.iterations;
  facts.stmt_uniform = uni.stmt_guard;
  for (std::size_t k = 0; k < stmts.size(); ++k) {
    if (stmts[k].barrier &&
        uni.stmt_guard[k] == Uniformity::ItemDependent) {
      facts.barrier_divergence_possible = true;
    }
  }

  // One ArrayFacts per distinct array id: declared arrays first (so the
  // ShapeClass extents stay aligned with ir.arrays), then any undeclared ids
  // in first-reference order (never provable: no arg slot to resolve).
  const auto slot = [&](int id) -> ArrayFacts& {
    for (ArrayFacts& af : facts.arrays) {
      if (af.array == id) return af;
    }
    facts.arrays.push_back(ArrayFacts{});
    facts.arrays.back().array = id;
    return facts.arrays.back();
  };
  for (const ArrayInfo& info : ir.arrays) {
    ArrayFacts& af = slot(info.array);
    af.arg_index = info.arg_index;
    af.declared_extent = info.extent;
    af.elem_bytes = info.elem_bytes;
    af.local = info.local;
    af.read_only_decl = info.read_only;
  }
  for (std::size_t k = 0; k < stmts.size(); ++k) {
    const auto note = [&](const ArrayRef& r, bool is_write) {
      ArrayFacts& af = slot(r.array);
      AccessFacts acc;
      acc.scale = r.subscript.scale;
      acc.offset = r.subscript.offset;
      acc.is_write = is_write;
      acc.stmt = static_cast<int>(k);
      acc.epoch = epoch[k];
      af.accesses.push_back(acc);
      (is_write ? af.written : af.read) = true;
    };
    for (const ArrayRef& r : stmts[k].array_reads) note(r, false);
    if (stmts[k].array_write) note(*stmts[k].array_write, true);
  }

  for (ArrayFacts& af : facts.arrays) {
    std::vector<long long> read_scales;
    std::vector<long long> write_scales;
    bool temporal = false;
    bool spatial = false;
    for (std::size_t x = 0; x < af.accesses.size(); ++x) {
      const AccessFacts& acc = af.accesses[x];
      (acc.is_write ? write_scales : read_scales).push_back(acc.scale);
      const long long m = acc.scale < 0 ? -acc.scale : acc.scale;
      if (m == 0) temporal = true;
      if (m != 0 && m * static_cast<long long>(af.elem_bytes) < kLineBytes) {
        spatial = true;
      }
      for (std::size_t y = x + 1; y < af.accesses.size(); ++y) {
        if (af.accesses[y].scale == acc.scale &&
            af.accesses[y].offset == acc.offset) {
          temporal = true;  // same element revisited by the same item
        }
      }
    }
    af.read_pattern = classify(read_scales, false);
    af.write_pattern = classify(write_scales, true);
    long long stride = 0;  // common |scale|, or the tightest when mixed
    for (const AccessFacts& acc : af.accesses) {
      const long long m = acc.scale < 0 ? -acc.scale : acc.scale;
      if (m == 0) continue;
      if (stride == 0 || m < stride) stride = m;
    }
    af.stride = stride;
    af.reuse = temporal && spatial ? Reuse::Both
               : temporal          ? Reuse::Temporal
               : spatial           ? Reuse::Spatial
                                   : Reuse::None;
    af.race_free = race_free_calc(af, af.local);
  }

  find_dead_stores(ir, facts);
  find_redundant_barriers(ir, facts);
  return facts;
}

std::shared_ptr<const KernelFacts> facts_for(const std::string& kernel) {
  auto& reg = KernelIrRegistry::instance();
  const KernelIr* ir = reg.find(kernel);
  if (ir == nullptr) return nullptr;
  return reg.memoize<KernelFacts>(kernel, "verify.facts",
                                  [&] { return analyze(kernel, *ir); });
}

LaunchProof discharge(const KernelFacts& facts, const ShapeClass& shape) {
  LaunchProof proof;
  proof.array_proven.assign(facts.arrays.size(), false);
  if (shape.global0 <= 0) return proof;
  const bool lax = inject_unsound();
  for (std::size_t idx = 0; idx < facts.arrays.size(); ++idx) {
    const ArrayFacts& af = facts.arrays[idx];
    if (af.accesses.empty()) {
      proof.array_proven[idx] = true;  // nothing for replay to check either
      continue;
    }
    if (!af.race_free) continue;
    const long long extent =
        idx < shape.extents.size() ? shape.extents[idx] : 0;
    if (extent <= 0) continue;
    if (af.written &&
        (idx >= shape.writable.size() || !shape.writable[idx])) {
      continue;  // W1 (store to read-only buffer) must stay dynamic
    }
    bool in_bounds = true;
    for (const AccessFacts& acc : af.accesses) {
      const Interval iv = Interval::affine(acc.scale, acc.offset,
                                           shape.offset0, shape.global0);
      const bool ok = lax ? (iv.lo >= 0 && iv.hi <= Wide(extent))
                          : iv.within(extent);
      if (!ok) {
        in_bounds = false;
        break;
      }
    }
    if (in_bounds) {
      proof.array_proven[idx] = true;
      proof.accesses_covered += af.accesses.size();
    }
  }
  return proof;
}

std::shared_ptr<const LaunchProof> discharge_cached(const std::string& kernel,
                                                    const KernelFacts& facts,
                                                    const ShapeClass& shape) {
  std::string key = "verify.proof:" + shape.key();
  if (inject_unsound()) key += ";inj";  // keep fault-injected proofs apart
  return KernelIrRegistry::instance().memoize<LaunchProof>(
      kernel, key, [&] { return discharge(facts, shape); });
}

std::vector<bool> uniform_guards(const KernelFacts& facts) {
  std::vector<bool> out(facts.stmt_uniform.size(), false);
  for (std::size_t k = 0; k < facts.stmt_uniform.size(); ++k) {
    out[k] = facts.stmt_uniform[k] == Uniformity::Uniform;
  }
  return out;
}

bool runtime_enabled() {
  const char* v = std::getenv("MCL_VERIFY");
  return v == nullptr || std::string(v) != "off";
}

bool inject_unsound() {
  const char* v = std::getenv("MCL_CHECK_INJECT");
  return v != nullptr && std::string(v) == "verify";
}

std::string facts_json(const std::vector<const KernelFacts*>& kernels) {
  std::ostringstream out;
  out << "{\n  \"mclverify\": 1,\n  \"kernels\": [";
  bool first_kernel = true;
  for (const KernelFacts* kf : kernels) {
    if (kf == nullptr) continue;
    out << (first_kernel ? "\n" : ",\n");
    first_kernel = false;
    out << "    {\n      \"kernel\": \"" << json_escape(kf->kernel) << "\",\n";
    out << "      \"fixpoint_iterations\": " << kf->fixpoint_iterations
        << ",\n";
    out << "      \"barrier_divergence_possible\": "
        << (kf->barrier_divergence_possible ? "true" : "false") << ",\n";
    const auto int_list = [&](const char* name, const std::vector<int>& v) {
      out << "      \"" << name << "\": [";
      for (std::size_t i = 0; i < v.size(); ++i) {
        out << (i != 0 ? ", " : "") << v[i];
      }
      out << "],\n";
    };
    int_list("dead_stores", kf->dead_stores);
    int_list("redundant_barriers", kf->redundant_barriers);
    out << "      \"stmt_uniform\": [";
    for (std::size_t i = 0; i < kf->stmt_uniform.size(); ++i) {
      out << (i != 0 ? ", " : "")
          << (kf->stmt_uniform[i] == Uniformity::Uniform ? "true" : "false");
    }
    out << "],\n      \"arrays\": [";
    bool first_array = true;
    for (const ArrayFacts& af : kf->arrays) {
      if (!first_array) out << ",";
      first_array = false;
      out << "\n        {\"array\": " << af.array
          << ", \"arg_index\": " << af.arg_index
          << ", \"extent\": " << af.declared_extent
          << ", \"elem_bytes\": " << af.elem_bytes
          << ", \"local\": " << (af.local ? "true" : "false")
          << ", \"read\": " << (af.read ? "true" : "false")
          << ", \"written\": " << (af.written ? "true" : "false")
          << ", \"read_pattern\": \"" << to_string(af.read_pattern) << "\""
          << ", \"write_pattern\": \"" << to_string(af.write_pattern) << "\""
          << ", \"stride\": " << af.stride
          << ", \"reuse\": \"" << to_string(af.reuse) << "\""
          << ", \"race_free\": " << (af.race_free ? "true" : "false")
          << ", \"accesses\": " << af.accesses.size() << "}";
    }
    out << "\n      ]\n    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace mcl::verify
