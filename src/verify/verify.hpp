// mclverify: abstract-interpretation static analysis over veclegal::KernelIr
// with proof-carrying launches.
//
// Four composable analyses run over one fixpoint pass (see docs/verify.md):
//   1. interval/value-range analysis — symbolic in-bounds proofs for a whole
//      launch-shape family, discharged O(accesses) per concrete launch;
//   2. uniformity/divergence analysis — classifies every statement's guard
//      and value as uniform-per-group vs item-dependent (generalizes barrier
//      rule P1; exported to veclegal's SPMD legality via uniform_guards());
//   3. memory-access-pattern classification — unit-stride / strided-k /
//      gather / scatter plus a reuse-distance class per array, emitted as
//      KernelFacts for the auto-tuner and cross-checked against cachesim;
//   4. dead-store (V1) and redundant-barrier (V2) detection, surfaced as
//      Warning-severity lint rules by san::analyze_kernel.
//
// Facts are cached per kernel and discharged proofs per (kernel,
// shape-class) in the KernelIrRegistry's analysis cache; re-registering a
// kernel's IR invalidates both. The Checked executor consumes LaunchProof to
// skip shadow-access replay for arrays proven safe; mclcheck's soundness
// mode fuzzes that exemption against full dynamic replay.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "veclegal/kernel_ir.hpp"
#include "verify/facts.hpp"

namespace mcl::verify {

/// Runs all analyses over one IR descriptor. Pure function of the IR;
/// `kernel` only labels the record.
[[nodiscard]] KernelFacts analyze(const std::string& kernel,
                                  const veclegal::KernelIr& ir);

/// Registry-backed cached form: nullptr when `kernel` registered no IR.
/// The result is memoized in KernelIrRegistry's analysis cache and
/// invalidated when the kernel re-registers.
[[nodiscard]] std::shared_ptr<const KernelFacts> facts_for(
    const std::string& kernel);

/// Discharges the symbolic proofs against one concrete launch shape.
[[nodiscard]] LaunchProof discharge(const KernelFacts& facts,
                                    const ShapeClass& shape);

/// Cached form, keyed (kernel, shape-class) in the registry cache.
[[nodiscard]] std::shared_ptr<const LaunchProof> discharge_cached(
    const std::string& kernel, const KernelFacts& facts,
    const ShapeClass& shape);

/// Conservative collision test in 128-bit arithmetic: can two affine
/// accesses touch one element from two DISTINCT workitems i != j in [0, n)?
/// n = 0 means unknown/any launch size (the shape-independent form the
/// race-freedom facts use).
[[nodiscard]] bool may_collide(const veclegal::Subscript& a,
                               const veclegal::Subscript& b, long long n);

/// Per-statement "guard is uniform" bits in the shape veclegal's
/// AnalysisOptions::uniform_guard consumes.
[[nodiscard]] std::vector<bool> uniform_guards(const KernelFacts& facts);

/// Proof-carrying launches kill switch: false when MCL_VERIFY=off, which
/// forces the Checked executor back to full shadow replay (the replay-skip
/// benchmark and the soundness oracle use it).
[[nodiscard]] bool runtime_enabled();

/// Fault hook for mclcheck's soundness self-test: MCL_CHECK_INJECT=verify
/// makes discharge() deliberately unsound (accepts accesses that reach one
/// element PAST the extent), proving the soundness check can fail. Never set
/// outside that acceptance test.
[[nodiscard]] bool inject_unsound();

/// Renders a KernelFacts document ({"mclverify": 1, "kernels": [...]}) that
/// `plot_results.py --check` validates structurally.
[[nodiscard]] std::string facts_json(
    const std::vector<const KernelFacts*>& kernels);

}  // namespace mcl::verify
