#include <gtest/gtest.h>

#include <algorithm>

#include "core/advisor.hpp"

namespace mcl::advisor {
namespace {

[[nodiscard]] bool has_finding(const std::vector<Advice>& advice, Finding f) {
  return std::any_of(advice.begin(), advice.end(),
                     [f](const Advice& a) { return a.finding == f; });
}

LaunchProfile good_profile() {
  LaunchProfile p;
  p.global_items = 100'000;
  p.local_items = 256;
  p.flops_per_item = 2000;
  p.bytes_per_item = 64;
  p.ilp_chains = 4;
  p.uses_explicit_copy = false;
  p.device_is_cpu = true;
  p.cpu_logical_cores = 8;
  return p;
}

TEST(Advisor, TinyWorkitemsTriggerCoalescingAdvice) {
  LaunchProfile p = good_profile();
  p.flops_per_item = 1;
  p.bytes_per_item = 12;
  const auto advice = analyze(p);
  ASSERT_TRUE(has_finding(advice, Finding::WorkPerItem));
  // it must be the most severe item (critical sorts first)
  EXPECT_EQ(advice.front().severity, Severity::Critical);
}

TEST(Advisor, SmallWorkgroupWarnsForShortKernels) {
  LaunchProfile p = good_profile();
  p.local_items = 4;
  p.flops_per_item = 10;
  EXPECT_TRUE(has_finding(analyze(p), Finding::WorkGroupSize));
}

TEST(Advisor, LargeWorkgroupNoWarning) {
  LaunchProfile p = good_profile();
  p.local_items = 512;
  EXPECT_FALSE(has_finding(analyze(p), Finding::WorkGroupSize));
}

TEST(Advisor, NullLocalSizeGetsInfo) {
  LaunchProfile p = good_profile();
  p.local_items = 0;
  const auto advice = analyze(p);
  ASSERT_TRUE(has_finding(advice, Finding::WorkGroupSize));
  const auto it = std::find_if(advice.begin(), advice.end(), [](const Advice& a) {
    return a.finding == Finding::WorkGroupSize;
  });
  EXPECT_EQ(it->severity, Severity::Info);
}

TEST(Advisor, LongKernelInsensitiveToWorkgroupSize) {
  // Fig 4: Blackscholes-like kernels don't care about local size.
  LaunchProfile p = good_profile();
  p.local_items = 2;
  p.flops_per_item = 100'000;
  EXPECT_FALSE(has_finding(analyze(p), Finding::WorkGroupSize));
}

TEST(Advisor, IlpOneTriggersWarning) {
  LaunchProfile p = good_profile();
  p.ilp_chains = 1;
  p.flops_per_item = 100;
  EXPECT_TRUE(has_finding(analyze(p), Finding::Ilp));
}

TEST(Advisor, TrivialKernelSkipsIlpAdvice) {
  LaunchProfile p = good_profile();
  p.ilp_chains = 1;
  p.flops_per_item = 2;  // nothing to overlap
  EXPECT_FALSE(has_finding(analyze(p), Finding::Ilp));
}

TEST(Advisor, ExplicitCopyTriggersTransferAdvice) {
  LaunchProfile p = good_profile();
  p.uses_explicit_copy = true;
  EXPECT_TRUE(has_finding(analyze(p), Finding::TransferApi));
}

TEST(Advisor, SharedDataWithoutPinningTriggersAffinity) {
  LaunchProfile p = good_profile();
  p.kernels_share_data = true;
  p.affinity_pinned = false;
  EXPECT_TRUE(has_finding(analyze(p), Finding::Affinity));
}

TEST(Advisor, PinnedSharedDataIsFine) {
  LaunchProfile p = good_profile();
  p.kernels_share_data = true;
  p.affinity_pinned = true;
  EXPECT_FALSE(has_finding(analyze(p), Finding::Affinity));
}

TEST(Advisor, SingleCoreSkipsAffinity) {
  LaunchProfile p = good_profile();
  p.kernels_share_data = true;
  p.cpu_logical_cores = 1;
  EXPECT_FALSE(has_finding(analyze(p), Finding::Affinity));
}

TEST(Advisor, GpuProfilesGetNoCpuAdvice) {
  LaunchProfile p = good_profile();
  p.device_is_cpu = false;
  p.flops_per_item = 1;  // would be critical on a CPU
  EXPECT_TRUE(analyze(p).empty());
}

TEST(Advisor, AdviceSortedBySeverity) {
  LaunchProfile p = good_profile();
  p.flops_per_item = 1;
  p.bytes_per_item = 4;
  p.local_items = 2;
  p.ilp_chains = 1;
  p.uses_explicit_copy = true;
  const auto advice = analyze(p);
  ASSERT_GE(advice.size(), 2u);
  for (std::size_t i = 1; i < advice.size(); ++i) {
    EXPECT_GE(static_cast<int>(advice[i - 1].severity),
              static_cast<int>(advice[i].severity));
  }
}

TEST(Advisor, EveryAdviceCitesAnExperiment) {
  LaunchProfile p = good_profile();
  p.flops_per_item = 1;
  p.bytes_per_item = 4;
  p.local_items = 2;
  p.ilp_chains = 1;
  p.uses_explicit_copy = true;
  p.kernels_share_data = true;
  for (const Advice& a : analyze(p)) {
    EXPECT_NE(a.rationale.find("Fig"), std::string::npos)
        << "advice lacks experimental rationale: " << a.message;
  }
}

TEST(Advisor, EnumNames) {
  EXPECT_EQ(to_string(Finding::Ilp), "ilp");
  EXPECT_EQ(to_string(Severity::Critical), "critical");
}

}  // namespace
}  // namespace mcl::advisor
