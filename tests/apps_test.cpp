#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/blackscholes.hpp"
#include "testseed.hpp"
#include "apps/hostdata.hpp"
#include "apps/ilp.hpp"
#include "apps/matrixmul.hpp"
#include "apps/mbench.hpp"
#include "apps/parboil.hpp"
#include "apps/reduction.hpp"
#include "apps/simple.hpp"
#include "apps/spmv.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

namespace mcl::apps {
namespace {

using ocl::Buffer;
using ocl::CommandQueue;
using ocl::Context;
using ocl::CpuDevice;
using ocl::CpuDeviceConfig;
using ocl::ExecutorKind;
using ocl::Kernel;
using ocl::MemFlags;
using ocl::NDRange;
using ocl::Program;

Buffer make_in(Context& ctx, std::span<const float> data) {
  return ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                           data.size() * 4,
                           const_cast<float*>(data.data()));
}
Buffer make_out(Context& ctx, std::size_t n) {
  return ctx.create_buffer(MemFlags::ReadWrite, n * 4);
}

/// Runs every test on loop, simd and (barrier-free kernels) the simulated
/// GPU for functional agreement.
struct ExecConfig {
  const char* label;
  ExecutorKind executor;
};

class ExecutorParam : public ::testing::TestWithParam<ExecConfig> {
 protected:
  CpuDevice device{CpuDeviceConfig{.threads = 2, .executor = GetParam().executor}};
  Context ctx{device};
  CommandQueue queue{ctx};
};

INSTANTIATE_TEST_SUITE_P(Executors, ExecutorParam,
                         ::testing::Values(ExecConfig{"loop", ExecutorKind::Loop},
                                           ExecConfig{"simd", ExecutorKind::Simd},
                                           ExecConfig{"auto", ExecutorKind::Auto}),
                         [](const auto& info) { return info.param.label; });

// --- Square / VectorAdd --------------------------------------------------------

TEST_P(ExecutorParam, SquareMatchesReference) {
  for (std::size_t n : {100u, 1000u, 10000u}) {
    const FloatVec in = random_floats(n, mcl::test::seed(1), -4.0f, 4.0f);
    FloatVec expect(n);
    square_reference(in, expect);

    Buffer bin = make_in(ctx, in);
    Buffer bout = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), kSquareKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    (void)queue.enqueue_ndrange(k, NDRange{n});
    EXPECT_EQ(max_abs_diff({bout.as<float>(), n}, expect), 0.0) << n;
  }
}

TEST_P(ExecutorParam, SquareCoalescedAllFactors) {
  const std::size_t n = 10'000;
  const FloatVec in = random_floats(n, mcl::test::seed(2), -4.0f, 4.0f);
  FloatVec expect(n);
  square_reference(in, expect);
  for (unsigned per_item : {1u, 10u, 100u, 1000u}) {
    Buffer bin = make_in(ctx, in);
    Buffer bout = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), kSquareCoalescedKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    k.set_arg(2, per_item);
    (void)queue.enqueue_ndrange(k, NDRange{n / per_item});
    EXPECT_EQ(max_abs_diff({bout.as<float>(), n}, expect), 0.0)
        << "per_item=" << per_item;
  }
}

TEST_P(ExecutorParam, VectorAddMatchesReference) {
  const std::size_t n = 11'000;
  const FloatVec a = random_floats(n, mcl::test::seed(3)), b = random_floats(n, mcl::test::seed(4));
  FloatVec expect(n);
  vectoradd_reference(a, b, expect);

  Buffer ba = make_in(ctx, a), bb = make_in(ctx, b);
  Buffer bc = make_out(ctx, n);
  Kernel k = ctx.create_kernel(Program::builtin(), kVectorAddKernel);
  k.set_arg(0, ba);
  k.set_arg(1, bb);
  k.set_arg(2, bc);
  (void)queue.enqueue_ndrange(k, NDRange{n});
  EXPECT_EQ(max_abs_diff({bc.as<float>(), n}, expect), 0.0);
}

TEST_P(ExecutorParam, VectorAddCoalesced) {
  const std::size_t n = 8000;
  const FloatVec a = random_floats(n, mcl::test::seed(5)), b = random_floats(n, mcl::test::seed(6));
  FloatVec expect(n);
  vectoradd_reference(a, b, expect);
  for (unsigned per_item : {10u, 100u}) {
    Buffer ba = make_in(ctx, a), bb = make_in(ctx, b);
    Buffer bc = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), kVectorAddCoalescedKernel);
    k.set_arg(0, ba);
    k.set_arg(1, bb);
    k.set_arg(2, bc);
    k.set_arg(3, per_item);
    (void)queue.enqueue_ndrange(k, NDRange{n / per_item});
    EXPECT_EQ(max_abs_diff({bc.as<float>(), n}, expect), 0.0);
  }
}

// --- MatrixMul -------------------------------------------------------------------

struct MatShape {
  std::size_t m, n, k, tile;
  const char* label;
};

class MatrixMulParam : public ::testing::TestWithParam<MatShape> {};

TEST_P(MatrixMulParam, AllThreeKernelsMatchReference) {
  const auto [m, n, k, tile, label] = GetParam();
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);

  const FloatVec a = random_floats(m * k, mcl::test::seed(10), -1.0f, 1.0f);
  const FloatVec b = random_floats(k * n, mcl::test::seed(11), -1.0f, 1.0f);
  FloatVec expect(m * n);
  matmul_reference(a, b, expect, m, n, k);

  auto check = [&](const char* kernel_name, bool tiled) {
    Buffer ba = make_in(ctx, a), bb = make_in(ctx, b);
    Buffer bc = make_out(ctx, m * n);
    Kernel kr = ctx.create_kernel(Program::builtin(), kernel_name);
    kr.set_arg(0, ba);
    kr.set_arg(1, bb);
    kr.set_arg(2, bc);
    kr.set_arg(3, static_cast<unsigned>(m));
    kr.set_arg(4, static_cast<unsigned>(n));
    kr.set_arg(5, static_cast<unsigned>(k));
    if (tiled) {
      kr.set_arg_local(6, tile * tile * 4);
      kr.set_arg_local(7, tile * tile * 4);
      if (std::string(kernel_name) == kMatrixMulKernel) {
        kr.set_arg_local(8, tile * tile * 4);
      }
    }
    const NDRange local = tiled ? NDRange(tile, tile) : NDRange{};
    (void)queue.enqueue_ndrange(kr, NDRange(n, m), local);
    EXPECT_LT(max_rel_diff({bc.as<float>(), m * n}, expect, 1e-3), 5e-4)
        << kernel_name;
  };
  check(kMatrixMulNaiveKernel, false);
  check(kMatrixMulKernel, true);
  check(kMatrixMulFiberKernel, true);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixMulParam,
    ::testing::Values(MatShape{16, 16, 16, 4, "tiny"},
                      MatShape{32, 48, 16, 8, "rect"},
                      MatShape{64, 64, 32, 16, "square16"},
                      MatShape{8, 8, 8, 2, "tile2"},
                      MatShape{40, 24, 8, 8, "wide"}),
    [](const auto& info) { return info.param.label; });

// --- Reduction / Histogram / PrefixSum ----------------------------------------

TEST(Reduction, MatchesReferenceAcrossGroupSizes) {
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);
  for (std::size_t local : {4u, 16u, 48u, 256u}) {
    const std::size_t n = local * 40;
    const FloatVec in = random_floats(n, mcl::test::seed(20), 0.0f, 1.0f);
    Buffer bin = make_in(ctx, in);
    Buffer bpart = make_out(ctx, n / local);
    Kernel k = ctx.create_kernel(Program::builtin(), kReduceKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bpart);
    k.set_arg_local(2, local * 4);
    (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{local});
    double total = 0;
    for (std::size_t g = 0; g < n / local; ++g) total += bpart.as<float>()[g];
    EXPECT_NEAR(total, reduce_reference(in), n * 1e-5) << "local=" << local;
  }
}

TEST(Histogram, MatchesReference) {
  CpuDevice device(CpuDeviceConfig{.threads = 4});
  Context ctx(device);
  CommandQueue queue(ctx);
  const std::size_t n = 409'600 / 16;  // Table II shape, scaled
  UintVec in(n);
  core::Rng rng(mcl::test::seed(21));
  for (auto& v : in) v = static_cast<unsigned>(rng.next_below(256));
  std::vector<unsigned> expect(256);
  histogram_reference(in, expect);

  Buffer bin = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                 n * 4, in.data());
  Buffer bbins = ctx.create_buffer(MemFlags::ReadWrite, 256 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), kHistogramKernel);
  k.set_arg(0, bin);
  k.set_arg(1, bbins);
  k.set_arg_local(2, 256 * 4);
  (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{256});
  for (int b = 0; b < 256; ++b) {
    EXPECT_EQ(bbins.as<unsigned>()[b], expect[b]) << "bin " << b;
  }
}

TEST(PrefixSum, SingleGroupScan) {
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);
  for (std::size_t n : {8u, 128u, 1024u}) {  // Table II: 1024, local 1024
    const FloatVec in = random_floats(n, mcl::test::seed(22), 0.0f, 2.0f);
    FloatVec expect(n);
    prefixsum_reference(in, expect);
    Buffer bin = make_in(ctx, in);
    Buffer bout = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), kPrefixSumKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    k.set_arg_local(2, n * 4);
    k.set_arg_local(3, n * 4);
    (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{n});
    EXPECT_LT(max_rel_diff({bout.as<float>(), n}, expect, 1e-3), 1e-4) << n;
  }
}

// --- BlackScholes / Binomial ------------------------------------------------------

TEST_P(ExecutorParam, BlackScholesMatchesReference) {
  const std::size_t w = 64, h = 20;
  const std::size_t n = w * h;
  const FloatVec s = random_floats(n, mcl::test::seed(30), 5.0f, 30.0f);
  const FloatVec x = random_floats(n, mcl::test::seed(31), 1.0f, 100.0f);
  const FloatVec t = random_floats(n, mcl::test::seed(32), 0.25f, 10.0f);
  const float r = 0.02f, v = 0.30f;
  FloatVec ecall(n), eput(n);
  blackscholes_reference(s, x, t, ecall, eput, r, v);

  Buffer bs = make_in(ctx, s), bx = make_in(ctx, x), bt = make_in(ctx, t);
  Buffer bc = make_out(ctx, n), bp = make_out(ctx, n);
  Kernel k = ctx.create_kernel(Program::builtin(), kBlackScholesKernel);
  k.set_arg(0, bs);
  k.set_arg(1, bx);
  k.set_arg(2, bt);
  k.set_arg(3, bc);
  k.set_arg(4, bp);
  k.set_arg(5, r);
  k.set_arg(6, v);
  (void)queue.enqueue_ndrange(k, NDRange(w, h), NDRange(16, 2));
  EXPECT_LT(max_abs_diff({bc.as<float>(), n}, ecall), 2e-4);
  EXPECT_LT(max_abs_diff({bp.as<float>(), n}, eput), 2e-4);
}

TEST(BlackScholes, PutCallParity) {
  const std::size_t n = 512;
  const FloatVec s = random_floats(n, mcl::test::seed(33), 10.0f, 20.0f);
  const FloatVec x = random_floats(n, mcl::test::seed(34), 10.0f, 20.0f);
  const FloatVec t = random_floats(n, mcl::test::seed(35), 0.5f, 2.0f);
  const float r = 0.05f, v = 0.2f;
  FloatVec call(n), put(n);
  blackscholes_reference(s, x, t, call, put, r, v);
  for (std::size_t i = 0; i < n; ++i) {
    // C - P = S - X e^{-rT}
    const float lhs = call[i] - put[i];
    const float rhs = s[i] - x[i] * std::exp(-r * t[i]);
    EXPECT_NEAR(lhs, rhs, 5e-4) << i;
  }
}

TEST(Binomial, ConvergesToBlackScholes) {
  // CRR converges to the analytic price as steps grow.
  const float s = 100.0f, x = 105.0f, t = 1.0f, r = 0.05f, v = 0.25f;
  FloatVec ss{s}, xs{x}, ts{t}, call(1), put(1);
  blackscholes_reference(ss, xs, ts, call, put, r, v);
  const float bs255 = binomial_reference(s, x, t, r, v, 255);
  EXPECT_NEAR(bs255, call[0], 0.05f);
  const float bs31 = binomial_reference(s, x, t, r, v, 31);
  EXPECT_GT(std::fabs(bs31 - call[0]) + 1e-4, std::fabs(bs255 - call[0]));
}

TEST(Binomial, KernelMatchesReference) {
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);
  const unsigned steps = 63;
  const std::size_t opts = 20;
  const FloatVec s = random_floats(opts, mcl::test::seed(40), 50.0f, 150.0f);
  const FloatVec x = random_floats(opts, mcl::test::seed(41), 50.0f, 150.0f);
  const FloatVec t = random_floats(opts, mcl::test::seed(42), 0.5f, 3.0f);
  const float r = 0.03f, v = 0.3f;

  Buffer bs = make_in(ctx, s), bx = make_in(ctx, x), bt = make_in(ctx, t);
  Buffer bout = make_out(ctx, opts);
  Kernel k = ctx.create_kernel(Program::builtin(), kBinomialKernel);
  k.set_arg(0, bs);
  k.set_arg(1, bx);
  k.set_arg(2, bt);
  k.set_arg(3, bout);
  k.set_arg(4, r);
  k.set_arg(5, v);
  k.set_arg(6, steps);
  k.set_arg_local(7, (steps + 1) * 4);
  (void)queue.enqueue_ndrange(k, NDRange{opts * steps}, NDRange{steps});
  for (std::size_t o = 0; o < opts; ++o) {
    const float expect = binomial_reference(s[o], x[o], t[o], r, v, steps);
    EXPECT_NEAR(bout.as<float>()[o], expect, 1e-2f * (1.0f + expect)) << o;
  }
}

// --- Parboil ---------------------------------------------------------------------

TEST_P(ExecutorParam, CpCenergyMatchesReference) {
  const std::size_t gx = 64, gy = 32, natoms = 50;
  const FloatVec atoms = random_floats(natoms * 4, mcl::test::seed(50), 0.5f, 10.0f);
  FloatVec expect(gx * gy);
  cp_cenergy_reference(atoms, expect, gx, gy, 0.1f, 1.5f);

  Buffer batoms = make_in(ctx, atoms);
  Buffer benergy = make_out(ctx, gx * gy);
  Kernel k = ctx.create_kernel(Program::builtin(), kCpCenergyKernel);
  k.set_arg(0, batoms);
  k.set_arg(1, benergy);
  k.set_arg(2, static_cast<unsigned>(natoms));
  k.set_arg(3, 0.1f);
  k.set_arg(4, 1.5f);
  // Sweep the Fig 2 coalescing factors; results must be identical.
  for (unsigned per : {1u, 2u, 4u}) {
    k.set_arg(5, per);
    (void)queue.enqueue_ndrange(k, NDRange(gx / per, gy), NDRange(16 / per, 8));
    EXPECT_LT(max_rel_diff({benergy.as<float>(), gx * gy}, expect), 1e-4)
        << "per_item=" << per;
  }
}

TEST_P(ExecutorParam, MriqKernelsMatchReference) {
  const std::size_t nx = 512, nk = 64;  // Table III shape, scaled
  const FloatVec phi_r = random_floats(nk, mcl::test::seed(60), -1.0f, 1.0f);
  const FloatVec phi_i = random_floats(nk, mcl::test::seed(61), -1.0f, 1.0f);
  const FloatVec x = random_floats(nx, mcl::test::seed(62), -0.5f, 0.5f);
  const FloatVec y = random_floats(nx, mcl::test::seed(63), -0.5f, 0.5f);
  const FloatVec z = random_floats(nx, mcl::test::seed(64), -0.5f, 0.5f);
  const FloatVec kx = random_floats(nk, mcl::test::seed(65), -1.0f, 1.0f);
  const FloatVec ky = random_floats(nk, mcl::test::seed(66), -1.0f, 1.0f);
  const FloatVec kz = random_floats(nk, mcl::test::seed(67), -1.0f, 1.0f);

  // computePhiMag
  FloatVec mag_expect(nk);
  mriq_phimag_reference(phi_r, phi_i, mag_expect);
  Buffer bpr = make_in(ctx, phi_r), bpi = make_in(ctx, phi_i);
  Buffer bmag = make_out(ctx, nk);
  Kernel km = ctx.create_kernel(Program::builtin(), kMriqPhiMagKernel);
  km.set_arg(0, bpr);
  km.set_arg(1, bpi);
  km.set_arg(2, bmag);
  km.set_arg(3, 1u);
  (void)queue.enqueue_ndrange(km, NDRange{nk}, NDRange{32});
  EXPECT_LT(max_rel_diff({bmag.as<float>(), nk}, mag_expect), 1e-5);

  // computeQ
  FloatVec qr_expect(nx), qi_expect(nx);
  mriq_computeq_reference(x, y, z, kx, ky, kz, mag_expect, qr_expect, qi_expect);
  Buffer bx = make_in(ctx, x), by = make_in(ctx, y), bz = make_in(ctx, z);
  Buffer bkx = make_in(ctx, kx), bky = make_in(ctx, ky), bkz = make_in(ctx, kz);
  Buffer bqr = make_out(ctx, nx), bqi = make_out(ctx, nx);
  Kernel kq = ctx.create_kernel(Program::builtin(), kMriqComputeQKernel);
  kq.set_arg(0, bx);
  kq.set_arg(1, by);
  kq.set_arg(2, bz);
  kq.set_arg(3, bkx);
  kq.set_arg(4, bky);
  kq.set_arg(5, bkz);
  kq.set_arg(6, bmag);
  kq.set_arg(7, bqr);
  kq.set_arg(8, bqi);
  kq.set_arg(9, static_cast<unsigned>(nk));
  for (unsigned per : {1u, 2u, 4u}) {
    kq.set_arg(10, per);
    (void)queue.enqueue_ndrange(kq, NDRange{nx / per}, NDRange{64});
    EXPECT_LT(max_rel_diff({bqr.as<float>(), nx}, qr_expect, 1e-2), 1e-3)
        << "per_item=" << per;
    EXPECT_LT(max_rel_diff({bqi.as<float>(), nx}, qi_expect, 1e-2), 1e-3)
        << "per_item=" << per;
  }
}

TEST_P(ExecutorParam, MrifhdKernelsMatchReference) {
  const std::size_t nx = 256, nk = 48;
  const FloatVec phi_r = random_floats(nk, mcl::test::seed(70), -1.0f, 1.0f);
  const FloatVec phi_i = random_floats(nk, mcl::test::seed(71), -1.0f, 1.0f);
  const FloatVec d_r = random_floats(nk, mcl::test::seed(72), -1.0f, 1.0f);
  const FloatVec d_i = random_floats(nk, mcl::test::seed(73), -1.0f, 1.0f);
  FloatVec rrho_expect(nk), irho_expect(nk);
  mrifhd_rhophi_reference(phi_r, phi_i, d_r, d_i, rrho_expect, irho_expect);

  Buffer bpr = make_in(ctx, phi_r), bpi = make_in(ctx, phi_i);
  Buffer bdr = make_in(ctx, d_r), bdi = make_in(ctx, d_i);
  Buffer brr = make_out(ctx, nk), bri = make_out(ctx, nk);
  Kernel kr = ctx.create_kernel(Program::builtin(), kMrifhdRhoPhiKernel);
  kr.set_arg(0, bpr);
  kr.set_arg(1, bpi);
  kr.set_arg(2, bdr);
  kr.set_arg(3, bdi);
  kr.set_arg(4, brr);
  kr.set_arg(5, bri);
  kr.set_arg(6, 1u);
  (void)queue.enqueue_ndrange(kr, NDRange{nk}, NDRange{16});
  EXPECT_LT(max_rel_diff({brr.as<float>(), nk}, rrho_expect, 1e-2), 1e-4);
  EXPECT_LT(max_rel_diff({bri.as<float>(), nk}, irho_expect, 1e-2), 1e-4);

  const FloatVec x = random_floats(nx, mcl::test::seed(74), -0.5f, 0.5f);
  const FloatVec y = random_floats(nx, mcl::test::seed(75), -0.5f, 0.5f);
  const FloatVec z = random_floats(nx, mcl::test::seed(76), -0.5f, 0.5f);
  const FloatVec kxv = random_floats(nk, mcl::test::seed(77), -1.0f, 1.0f);
  const FloatVec kyv = random_floats(nk, mcl::test::seed(78), -1.0f, 1.0f);
  const FloatVec kzv = random_floats(nk, mcl::test::seed(79), -1.0f, 1.0f);
  FloatVec rfh_expect(nx), ifh_expect(nx);
  mrifhd_fh_reference(x, y, z, kxv, kyv, kzv, rrho_expect, irho_expect,
                      rfh_expect, ifh_expect);

  Buffer bx = make_in(ctx, x), by = make_in(ctx, y), bz = make_in(ctx, z);
  Buffer bkx = make_in(ctx, kxv), bky = make_in(ctx, kyv), bkz = make_in(ctx, kzv);
  Buffer brfh = make_out(ctx, nx), bifh = make_out(ctx, nx);
  Kernel kf = ctx.create_kernel(Program::builtin(), kMrifhdFhKernel);
  kf.set_arg(0, bx);
  kf.set_arg(1, by);
  kf.set_arg(2, bz);
  kf.set_arg(3, bkx);
  kf.set_arg(4, bky);
  kf.set_arg(5, bkz);
  kf.set_arg(6, brr);
  kf.set_arg(7, bri);
  kf.set_arg(8, brfh);
  kf.set_arg(9, bifh);
  kf.set_arg(10, static_cast<unsigned>(nk));
  kf.set_arg(11, 1u);
  (void)queue.enqueue_ndrange(kf, NDRange{nx}, NDRange{256});
  EXPECT_LT(max_rel_diff({brfh.as<float>(), nx}, rfh_expect, 1e-2), 1e-3);
  EXPECT_LT(max_rel_diff({bifh.as<float>(), nx}, ifh_expect, 1e-2), 1e-3);
}

// --- ILP ---------------------------------------------------------------------------

TEST_P(ExecutorParam, IlpKernelsAllComputeSameResult) {
  const std::size_t n = 256;
  const unsigned iters = 10;
  const FloatVec in = random_floats(n, mcl::test::seed(80), 0.0f, 1.0f);

  for (int level : kIlpLevels) {
    Buffer bin = make_in(ctx, in);
    Buffer bout = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), ilp_kernel_name(level));
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    k.set_arg(2, iters);
    (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{64});
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(bout.as<float>()[i], ilp_reference(in[i], iters, level), 1e-4)
          << "level=" << level << " i=" << i;
    }
  }
}

TEST(Ilp, DifferentLevelsSameTotalWork) {
  // All levels perform identical flop counts by construction.
  for (int level : kIlpLevels) {
    EXPECT_EQ(ilp_flops_per_item(7), 2.0 * kIlpUnroll * 7);
    (void)level;
  }
  EXPECT_THROW((void)ilp_kernel_name(5), core::Error);
}

// --- MBench -------------------------------------------------------------------------

TEST(MBench, CatalogComplete) {
  const auto& all = all_mbenches();
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, "MBench" + std::to_string(i + 1));
    EXPECT_NE(all[i].loop_scalar, nullptr);
    EXPECT_NE(all[i].loop_simd, nullptr);
    EXPECT_GT(all[i].flops_per_elem, 0.0);
  }
}

class MBenchParam : public ::testing::TestWithParam<int> {};

TEST_P(MBenchParam, LoopSimdMatchesLoopScalar) {
  const MBenchInfo& mb = all_mbenches()[static_cast<std::size_t>(GetParam())];
  if (!mb.deterministic) GTEST_SKIP() << "schedule-dependent semantics";
  const std::size_t n = 1000;

  auto make_data = [&](FloatVec& a, FloatVec& b, FloatVec& c) {
    a = random_floats(3 * n + 1, mcl::test::seed(90), 0.25f, 1.75f);
    b = random_floats(n, mcl::test::seed(91), 0.25f, 1.75f);
    c = random_floats(2 * n, mcl::test::seed(92), 0.25f, 1.75f);
  };
  FloatVec a1, b1, c1, a2, b2, c2;
  make_data(a1, b1, c1);
  make_data(a2, b2, c2);

  MBenchData d1{a1.data(), b1.data(), c1.data(), 1.5f, n};
  MBenchData d2{a2.data(), b2.data(), c2.data(), 1.5f, n};
  mb.loop_scalar(d1, 0, n);
  mb.loop_simd(d2, 0, n);
  EXPECT_LT(max_rel_diff({a2.data(), a2.size()}, {a1.data(), a1.size()}), 1e-6)
      << mb.name;
  EXPECT_LT(max_rel_diff({c2.data(), c2.size()}, {c1.data(), c1.size()}), 1e-6)
      << mb.name;
}

TEST_P(MBenchParam, KernelMatchesLoopScalar) {
  const MBenchInfo& mb = all_mbenches()[static_cast<std::size_t>(GetParam())];
  if (!mb.deterministic) GTEST_SKIP() << "schedule-dependent semantics";
  const std::size_t n = 960;

  FloatVec a_ref = random_floats(3 * n + 1, mcl::test::seed(93), 0.25f, 1.75f);
  const FloatVec b = random_floats(n, mcl::test::seed(94), 0.25f, 1.75f);
  FloatVec c_ref = random_floats(2 * n, mcl::test::seed(95), 0.25f, 1.75f);
  FloatVec a_cl = a_ref, c_cl = c_ref;

  MBenchData dref{a_ref.data(), b.data(), c_ref.data(), 1.5f, n};
  mb.loop_scalar(dref, 0, n);

  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);
  Buffer ba = ctx.create_buffer(MemFlags::ReadWrite | MemFlags::UseHostPtr,
                                a_cl.size() * 4, a_cl.data());
  Buffer bb = make_in(ctx, b);
  Buffer bc = ctx.create_buffer(MemFlags::ReadWrite | MemFlags::UseHostPtr,
                                c_cl.size() * 4, c_cl.data());
  Kernel k = ctx.create_kernel(Program::builtin(), mb.kernel);
  k.set_arg(0, ba);
  k.set_arg(1, bb);
  k.set_arg(2, bc);
  k.set_arg(3, 1.5f);
  (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{64});

  EXPECT_LT(max_rel_diff({a_cl.data(), a_cl.size()},
                         {a_ref.data(), a_ref.size()}),
            1e-6)
      << mb.name;
  EXPECT_LT(max_rel_diff({c_cl.data(), c_cl.size()},
                         {c_ref.data(), c_ref.size()}),
            1e-6)
      << mb.name;
}

TEST(MBench, Race5RunsWithoutCrashing) {
  // MBench5's cross-item dependence makes results schedule-dependent (as in
  // real OpenCL); it must still execute safely under every executor.
  const MBenchInfo& mb = all_mbenches()[4];
  for (ExecutorKind ek : {ExecutorKind::Loop, ExecutorKind::Simd}) {
    CpuDevice device(CpuDeviceConfig{.threads = 2, .executor = ek});
    Context ctx(device);
    CommandQueue queue(ctx);
    const std::size_t n = 512;
    FloatVec a = random_floats(3 * n + 1, mcl::test::seed(96), 0.5f, 1.5f);
    const FloatVec b = random_floats(n, mcl::test::seed(97), 0.5f, 1.5f);
    FloatVec c(2 * n, 0.0f);
    Buffer ba = ctx.create_buffer(MemFlags::ReadWrite | MemFlags::UseHostPtr,
                                  a.size() * 4, a.data());
    Buffer bb = make_in(ctx, b);
    Buffer bc = ctx.create_buffer(MemFlags::ReadWrite | MemFlags::UseHostPtr,
                                  c.size() * 4, c.data());
    Kernel k = ctx.create_kernel(Program::builtin(), mb.kernel);
    k.set_arg(0, ba);
    k.set_arg(1, bb);
    k.set_arg(2, bc);
    k.set_arg(3, 1.5f);
    (void)queue.enqueue_ndrange(k, NDRange{n}, NDRange{64});
    for (std::size_t i = 0; i <= n; ++i) EXPECT_TRUE(std::isfinite(a[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(All, MBenchParam, ::testing::Range(0, 8),
                         [](const auto& info) {
                           return "MBench" + std::to_string(info.param + 1);
                         });

}  // namespace
}  // namespace mcl::apps

// --- SpMV (extension workload) ------------------------------------------------------

namespace mcl::apps {
namespace {

TEST(Spmv, MatrixGeneratorInvariants) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const CsrMatrix m = make_random_csr(200, 300, 8, seed);
    EXPECT_EQ(m.rows, 200u);
    EXPECT_EQ(m.row_ptr.size(), 201u);
    EXPECT_EQ(m.row_ptr.front(), 0u);
    EXPECT_EQ(m.row_ptr.back(), m.nnz());
    for (std::size_t r = 0; r < m.rows; ++r) {
      EXPECT_LE(m.row_ptr[r], m.row_ptr[r + 1]);       // monotone
      EXPECT_GT(m.row_ptr[r + 1], m.row_ptr[r]);       // >=1 entry per row
      for (unsigned j = m.row_ptr[r]; j + 1 < m.row_ptr[r + 1]; ++j) {
        EXPECT_LT(m.col_idx[j], m.col_idx[j + 1]);     // sorted, no dupes
      }
    }
    for (unsigned c : m.col_idx) EXPECT_LT(c, 300u);
  }
}

TEST(Spmv, GeneratorDeterministic) {
  const CsrMatrix a = make_random_csr(64, 64, 4, 5);
  const CsrMatrix b = make_random_csr(64, 64, 4, 5);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);
}

TEST_P(ExecutorParam, SpmvMatchesReference) {
  for (std::size_t rows : {64u, 640u}) {
    const CsrMatrix m = make_random_csr(rows, rows, 6, 11);
    const FloatVec x = random_floats(rows, mcl::test::seed(12), -1.0f, 1.0f);
    FloatVec expect(rows);
    spmv_reference(m, x, expect);

    Buffer bval = make_in(ctx, m.values);
    Buffer bcol = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                    m.col_idx.size() * 4,
                                    const_cast<unsigned*>(m.col_idx.data()));
    Buffer brow = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                    m.row_ptr.size() * 4,
                                    const_cast<unsigned*>(m.row_ptr.data()));
    Buffer bx = make_in(ctx, x);
    Buffer by = make_out(ctx, rows);
    Kernel k = ctx.create_kernel(Program::builtin(), kSpmvKernel);
    k.set_arg(0, bval);
    k.set_arg(1, bcol);
    k.set_arg(2, brow);
    k.set_arg(3, bx);
    k.set_arg(4, by);
    (void)queue.enqueue_ndrange(k, NDRange{rows}, NDRange{32});
    EXPECT_LT(max_rel_diff({by.as<float>(), rows}, expect, 1e-3), 1e-5)
        << "rows=" << rows;
  }
}

TEST(Spmv, GpuCostModelUsesRealNnz) {
  // The cost callback reads row_ptr to derive nnz/row; verify via the
  // simulated device reporting a plausible (finite, positive) time.
  ocl::Platform platform;
  Context ctx(platform.gpu());
  CommandQueue q(ctx);
  const std::size_t rows = 256;
  const CsrMatrix m = make_random_csr(rows, rows, 8, 3);
  const FloatVec x = random_floats(rows, mcl::test::seed(4));

  Buffer bval = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                  m.values.size() * 4,
                                  const_cast<float*>(m.values.data()));
  Buffer bcol = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                  m.col_idx.size() * 4,
                                  const_cast<unsigned*>(m.col_idx.data()));
  Buffer brow = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                  m.row_ptr.size() * 4,
                                  const_cast<unsigned*>(m.row_ptr.data()));
  Buffer bx = ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                                rows * 4, const_cast<float*>(x.data()));
  Buffer by = ctx.create_buffer(MemFlags::WriteOnly, rows * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), kSpmvKernel);
  k.set_arg(0, bval);
  k.set_arg(1, bcol);
  k.set_arg(2, brow);
  k.set_arg(3, bx);
  k.set_arg(4, by);
  const ocl::Event ev = q.enqueue_ndrange(k, NDRange{rows}, NDRange{64});
  EXPECT_TRUE(ev.launch.simulated);
  EXPECT_GT(ev.seconds, 0.0);

  FloatVec expect(rows);
  spmv_reference(m, x, expect);
  EXPECT_LT(max_rel_diff({by.as<float>(), rows}, expect, 1e-3), 1e-5);
}

}  // namespace
}  // namespace mcl::apps

// --- convolution (image workload) ----------------------------------------------------

#include "apps/convolution.hpp"
#include "ocl/image.hpp"

namespace mcl::apps {
namespace {

ocl::Image2D random_image(std::size_t w, std::size_t h, std::uint64_t seed) {
  ocl::Image2D img(w, h, 1);
  core::Rng rng(seed);
  for (std::size_t i = 0; i < img.float_count(); ++i) {
    img.data()[i] = rng.next_float(0.0f, 1.0f);
  }
  return img;
}

TEST(Convolution, KernelMatchesReference) {
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);

  for (unsigned k : {1u, 3u, 5u}) {
    const std::size_t w = 64, h = 48;
    ocl::Image2D in = random_image(w, h, mcl::test::seed(100 + k));
    ocl::Image2D out(w, h, 1);
    ocl::Image2D expect(w, h, 1);
    const std::vector<float> filter = box_filter(k);
    convolve_reference(in.view(), expect.view(), filter, k);

    Buffer bfilter(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                   filter.size() * 4, const_cast<float*>(filter.data()));
    Kernel kern = ctx.create_kernel(Program::builtin(), kConvolveKernel);
    kern.set_arg(0, in);
    kern.set_arg(1, out);
    kern.set_arg(2, bfilter);
    kern.set_arg(3, k);
    (void)queue.enqueue_ndrange(kern, NDRange(w, h), NDRange(16, 8));
    EXPECT_LT(max_abs_diff({out.data(), out.float_count()},
                           {expect.data(), expect.float_count()}),
              1e-6)
        << "k=" << k;
  }
}

TEST(Convolution, IdentityFilterIsANoop) {
  const std::size_t w = 32, h = 32;
  ocl::Image2D in = random_image(w, h, mcl::test::seed(7));
  ocl::Image2D out(w, h, 1);
  std::vector<float> identity(9, 0.0f);
  identity[4] = 1.0f;  // center tap
  convolve_reference(in.view(), out.view(), identity, 3);
  EXPECT_EQ(max_abs_diff({in.data(), in.float_count()},
                         {out.data(), out.float_count()}),
            0.0);
}

TEST(Convolution, BoxBlurPreservesConstantImage) {
  // Property: a normalized filter maps a constant image to itself
  // (clamp-to-edge makes border windows see the same constant).
  ocl::Image2D in(20, 20, 1);
  for (std::size_t i = 0; i < in.float_count(); ++i) in.data()[i] = 0.75f;
  ocl::Image2D out(20, 20, 1);
  convolve_reference(in.view(), out.view(), box_filter(5), 5);
  for (std::size_t i = 0; i < out.float_count(); ++i) {
    EXPECT_NEAR(out.data()[i], 0.75f, 1e-6);
  }
}

TEST(Convolution, GaussianSmoothsExtremes) {
  // A single bright pixel spreads; total energy is conserved away from the
  // borders (interior impulse).
  ocl::Image2D in(9, 9, 1);
  in.view().write(4, 4, 16.0f);
  ocl::Image2D out(9, 9, 1);
  convolve_reference(in.view(), out.view(), gaussian3(), 3);
  EXPECT_NEAR(out.view().read_clamped(4, 4), 4.0f, 1e-6);  // 16 * 4/16
  EXPECT_NEAR(out.view().read_clamped(3, 4), 2.0f, 1e-6);  // 16 * 2/16
  EXPECT_NEAR(out.view().read_clamped(3, 3), 1.0f, 1e-6);  // 16 * 1/16
  float total = 0.0f;
  for (std::size_t i = 0; i < out.float_count(); ++i) total += out.data()[i];
  EXPECT_NEAR(total, 16.0f, 1e-4);
}

TEST(Convolution, RunsOnSimulatedGpu) {
  ocl::Platform platform;
  Context ctx(platform.gpu());
  CommandQueue q(ctx);
  const std::size_t w = 32, h = 16;
  ocl::Image2D in = random_image(w, h, mcl::test::seed(9));
  ocl::Image2D out(w, h, 1);
  ocl::Image2D expect(w, h, 1);
  const std::vector<float> filter = gaussian3();
  convolve_reference(in.view(), expect.view(), filter, 3);

  Buffer bfilter(MemFlags::ReadOnly | MemFlags::CopyHostPtr, filter.size() * 4,
                 const_cast<float*>(filter.data()));
  Kernel kern = ctx.create_kernel(Program::builtin(), kConvolveKernel);
  kern.set_arg(0, in);
  kern.set_arg(1, out);
  kern.set_arg(2, bfilter);
  kern.set_arg(3, 3u);
  const ocl::Event ev = q.enqueue_ndrange(kern, NDRange(w, h), NDRange(16, 8));
  EXPECT_TRUE(ev.launch.simulated);
  EXPECT_LT(max_abs_diff({out.data(), out.float_count()},
                         {expect.data(), expect.float_count()}),
            1e-6);
}

}  // namespace
}  // namespace mcl::apps

// --- transpose -----------------------------------------------------------------------

#include "apps/transpose.hpp"

namespace mcl::apps {
namespace {

TEST(Transpose, BothKernelsMatchReference) {
  CpuDevice device(CpuDeviceConfig{.threads = 2});
  Context ctx(device);
  CommandQueue queue(ctx);

  struct Shape {
    std::size_t w, h, tile;
  };
  for (const Shape s : {Shape{32, 32, 8}, Shape{64, 16, 8}, Shape{48, 96, 16},
                        Shape{8, 8, 4}}) {
    const FloatVec in = random_floats(s.w * s.h, mcl::test::seed(55), -4.0f, 4.0f);
    FloatVec expect(s.w * s.h);
    transpose_reference(in, expect, s.w, s.h);

    for (const char* name : {kTransposeNaiveKernel, kTransposeTiledKernel}) {
      Buffer bin = make_in(ctx, in);
      Buffer bout = make_out(ctx, s.w * s.h);
      Kernel k = ctx.create_kernel(Program::builtin(), name);
      k.set_arg(0, bin);
      k.set_arg(1, bout);
      k.set_arg(2, static_cast<unsigned>(s.w));
      k.set_arg(3, static_cast<unsigned>(s.h));
      const bool tiled = std::string(name) == kTransposeTiledKernel;
      if (tiled) k.set_arg_local(4, s.tile * s.tile * 4);
      (void)queue.enqueue_ndrange(k, NDRange(s.w, s.h),
                                  tiled ? NDRange(s.tile, s.tile) : NDRange{});
      EXPECT_EQ(max_abs_diff({bout.as<float>(), s.w * s.h}, expect), 0.0)
          << name << " " << s.w << "x" << s.h;
    }
  }
}

TEST(Transpose, InvolutionProperty) {
  // transpose(transpose(A)) == A, via two tiled launches.
  CpuDevice device;
  Context ctx(device);
  CommandQueue queue(ctx);
  const std::size_t w = 64, h = 32, tile = 16;
  const FloatVec in = random_floats(w * h, mcl::test::seed(56));
  Buffer a = make_in(ctx, in);
  Buffer b = make_out(ctx, w * h);
  Buffer c = make_out(ctx, w * h);

  auto launch = [&](Buffer& src, Buffer& dst, std::size_t sw, std::size_t sh) {
    Kernel k = ctx.create_kernel(Program::builtin(), kTransposeTiledKernel);
    k.set_arg(0, src);
    k.set_arg(1, dst);
    k.set_arg(2, static_cast<unsigned>(sw));
    k.set_arg(3, static_cast<unsigned>(sh));
    k.set_arg_local(4, tile * tile * 4);
    (void)queue.enqueue_ndrange(k, NDRange(sw, sh), NDRange(tile, tile));
  };
  launch(a, b, w, h);   // b = A^T (h x w)
  launch(b, c, h, w);   // c = (A^T)^T = A
  EXPECT_EQ(max_abs_diff({c.as<float>(), w * h}, in), 0.0);
}

TEST(Transpose, GpuModelChargesNaiveMore) {
  // The simulated GPU must charge the uncoalesced naive kernel more time
  // than the tiled one — the canonical coalescing result.
  ocl::Platform platform;
  Context ctx(platform.gpu());
  CommandQueue q(ctx);
  const std::size_t w = 512, h = 512, tile = 16;
  Buffer bin(MemFlags::ReadWrite, w * h * 4);
  Buffer bout(MemFlags::ReadWrite, w * h * 4);

  Kernel naive = ctx.create_kernel(Program::builtin(), kTransposeNaiveKernel);
  naive.set_arg(0, bin);
  naive.set_arg(1, bout);
  naive.set_arg(2, static_cast<unsigned>(w));
  naive.set_arg(3, static_cast<unsigned>(h));
  const ocl::Event e1 = q.enqueue_ndrange(naive, NDRange(w, h),
                                          NDRange(tile, tile));

  Kernel tiled = ctx.create_kernel(Program::builtin(), kTransposeTiledKernel);
  tiled.set_arg(0, bin);
  tiled.set_arg(1, bout);
  tiled.set_arg(2, static_cast<unsigned>(w));
  tiled.set_arg(3, static_cast<unsigned>(h));
  tiled.set_arg_local(4, tile * tile * 4);
  const ocl::Event e2 = q.enqueue_ndrange(tiled, NDRange(w, h),
                                          NDRange(tile, tile));
  ASSERT_TRUE(e1.launch.simulated && e2.launch.simulated);
  EXPECT_GT(e1.seconds, 1.5 * e2.seconds);
}

}  // namespace
}  // namespace mcl::apps
