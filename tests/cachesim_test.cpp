#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "testseed.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcl::cachesim {
namespace {

CacheConfig tiny_cache() {
  // 4 sets x 2 ways x 64B lines = 512 B.
  return CacheConfig{512, 64, 2};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1010));  // same line
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(Cache, LruEvictsOldest) {
  Cache c(tiny_cache());
  // Three lines mapping to the same set (stride = sets * line = 256B).
  const std::uint64_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a);
  c.access(b);
  c.access(a);      // a is now MRU
  c.access(d);      // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(tiny_cache());
  c.access(0x40);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.invalidate(0x40));  // second invalidate is a no-op
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, ContainsDoesNotTouchLru) {
  Cache c(tiny_cache());
  const std::uint64_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a);
  c.access(b);
  // Probing a must NOT refresh it; d should evict a (the LRU).
  EXPECT_TRUE(c.contains(a));
  c.access(d);
  EXPECT_FALSE(c.contains(a));
}

TEST(Cache, FlushClearsEverything) {
  Cache c(tiny_cache());
  c.access(0);
  c.access(64);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
}

TEST(Cache, WorkingSetWithinCapacityHasNoCapacityMisses) {
  // Property: touching exactly size/line distinct lines repeatedly misses
  // only on the first pass (power-of-two geometry -> perfect indexing).
  Cache c(CacheConfig{4096, 64, 4});
  const std::size_t lines = 4096 / 64;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t l = 0; l < lines; ++l) c.access(l * 64);
  }
  EXPECT_EQ(c.stats().misses, lines);
  EXPECT_EQ(c.stats().hits, 2 * lines);
}

TEST(Cache, StreamLargerThanCapacityThrashes) {
  Cache c(CacheConfig{4096, 64, 4});
  const std::size_t lines = 3 * 4096 / 64;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t l = 0; l < lines; ++l) c.access(l * 64);
  }
  // LRU on a sequential stream >> capacity: everything misses.
  EXPECT_EQ(c.stats().misses, 2 * lines);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{512, 63, 2}), core::Error);   // non-pow2 line
  EXPECT_THROW(Cache(CacheConfig{512, 64, 0}), core::Error);   // zero ways
  EXPECT_THROW(Cache(CacheConfig{32, 64, 2}), core::Error);    // < one set
}

TEST(Cache, MissRateComputation) {
  Cache c(tiny_cache());
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
  c.reset_stats();
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.0);
}

// --- hierarchy -----------------------------------------------------------------

MachineConfig small_machine(int cores = 2) {
  MachineConfig m;
  m.cores = cores;
  m.l1 = CacheConfig{1024, 64, 2};
  m.l2 = CacheConfig{4096, 64, 4};
  m.l3 = CacheConfig{16384, 64, 8};
  return m;
}

TEST(Machine, LatencyLadder) {
  Machine m(small_machine());
  // Cold: memory latency.
  EXPECT_EQ(m.access(0, 0x10000, 4, false).hit_level, 4);
  // Now hot in L1.
  EXPECT_EQ(m.access(0, 0x10000, 4, false).hit_level, 1);
  EXPECT_EQ(m.access(0, 0x10000, 4, false).cycles, m.config().lat_l1);
}

TEST(Machine, PrivateCachesArePerCore) {
  Machine m(small_machine());
  m.access(0, 0x2000, 4, false);
  // Core 1 misses its private caches but hits shared L3.
  const AccessResult r = m.access(1, 0x2000, 4, false);
  EXPECT_EQ(r.hit_level, 3);
}

TEST(Machine, WriteInvalidatesOtherCores) {
  Machine m(small_machine());
  m.access(0, 0x3000, 4, false);   // core 0 caches the line
  EXPECT_TRUE(m.l1(0).contains(0x3000));
  m.access(1, 0x3000, 4, true);    // core 1 writes it
  EXPECT_FALSE(m.l1(0).contains(0x3000));
  EXPECT_FALSE(m.l2(0).contains(0x3000));
}

TEST(Machine, MultiLineAccessWalksEveryLine) {
  Machine m(small_machine());
  // 256 bytes starting at 0 = 4 lines, all cold -> 4 * mem latency.
  const AccessResult r = m.access(0, 0, 256, false);
  EXPECT_EQ(r.cycles, 4 * m.config().lat_mem);
}

TEST(Machine, MakespanIsMaxOverCores) {
  Machine m(small_machine());
  m.access(0, 0x0, 64, false);
  m.access(0, 0x1000, 64, false);
  m.access(1, 0x2000, 64, false);
  EXPECT_EQ(m.makespan_cycles(), m.core_cycles(0));
  EXPECT_GT(m.core_cycles(0), m.core_cycles(1));
  m.reset_cycles();
  EXPECT_EQ(m.makespan_cycles(), 0u);
}

TEST(Machine, RejectsBadCore) {
  Machine m(small_machine());
  EXPECT_THROW(m.access(-1, 0, 4, false), core::Error);
  EXPECT_THROW(m.access(2, 0, 4, false), core::Error);
}

TEST(Machine, AffinityEffectPrototype) {
  // The Fig 9 mechanism in miniature: core 0 writes a range (kernel 1);
  // reading it back on core 0 (aligned) is cheaper than on core 1
  // (misaligned).
  Machine aligned(small_machine());
  Machine misaligned(small_machine());
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    aligned.access(0, a, 4, true);
    misaligned.access(0, a, 4, true);
  }
  aligned.reset_cycles();
  misaligned.reset_cycles();
  for (std::uint64_t a = 0; a < 1024; a += 4) {
    aligned.access(0, a, 4, false);
    misaligned.access(1, a, 4, false);
  }
  EXPECT_LT(aligned.core_cycles(0), misaligned.core_cycles(1));
}

}  // namespace
}  // namespace mcl::cachesim

// --- MESI-style coherence --------------------------------------------------------

namespace mcl::cachesim {
namespace {

TEST(CacheMesi, WriteMarksDirtyReadDoesNot) {
  Cache c(CacheConfig{512, 64, 2});
  c.access(0x100, false);
  EXPECT_FALSE(c.is_dirty(0x100));
  c.access(0x100, true);
  EXPECT_TRUE(c.is_dirty(0x100));
}

TEST(CacheMesi, DowngradeClearsDirtyOnce) {
  Cache c(CacheConfig{512, 64, 2});
  c.access(0x40, true);
  EXPECT_TRUE(c.downgrade(0x40));
  EXPECT_FALSE(c.is_dirty(0x40));
  EXPECT_TRUE(c.contains(0x40));      // still resident (S state)
  EXPECT_FALSE(c.downgrade(0x40));    // already clean
  EXPECT_EQ(c.stats().downgrades, 1u);
}

TEST(CacheMesi, InvalidateClearsDirty) {
  Cache c(CacheConfig{512, 64, 2});
  c.access(0x40, true);
  c.invalidate(0x40);
  c.access(0x40, false);  // re-fetch clean
  EXPECT_FALSE(c.is_dirty(0x40));
}

TEST(MachineMesi, RemoteDirtyReadPaysTransferLatency) {
  Machine m(small_machine());
  m.access(0, 0x5000, 4, true);                     // core 0 owns M copy
  const AccessResult r = m.access(1, 0x5000, 4, false);
  EXPECT_EQ(r.hit_level, 5);
  EXPECT_EQ(r.cycles, m.config().lat_remote);
  EXPECT_EQ(m.coherence().remote_transfers, 1u);
  EXPECT_EQ(m.coherence().downgrades, 1u);
  // Owner's copy survives, now clean: its next read is a local hit.
  EXPECT_EQ(m.access(0, 0x5000, 4, false).hit_level, 1);
}

TEST(MachineMesi, CleanRemoteCopyIsJustAnL3Hit) {
  Machine m(small_machine());
  m.access(0, 0x6000, 4, false);  // core 0 holds a clean copy
  const AccessResult r = m.access(1, 0x6000, 4, false);
  EXPECT_EQ(r.hit_level, 3);
  EXPECT_EQ(m.coherence().remote_transfers, 0u);
}

TEST(MachineMesi, WriteForOwnershipOverDirtyRemote) {
  Machine m(small_machine());
  m.access(0, 0x7000, 4, true);  // core 0 M copy
  const AccessResult r = m.access(1, 0x7000, 4, true);
  EXPECT_EQ(r.hit_level, 5);
  EXPECT_FALSE(m.l1(0).contains(0x7000));  // invalidated
  EXPECT_TRUE(m.l1(1).is_dirty(0x7000));   // new owner in M
  EXPECT_GE(m.coherence().invalidations, 1u);
}

TEST(MachineMesi, PingPongCountsTransfersEachWay) {
  Machine m(small_machine());
  for (int round = 0; round < 4; ++round) {
    m.access(round % 2, 0x8000, 4, true);
  }
  // First write is a cold miss; the next three each steal a dirty line.
  EXPECT_EQ(m.coherence().remote_transfers, 3u);
}

TEST(MachineMesi, ResetStatsClearsCoherence) {
  Machine m(small_machine());
  m.access(0, 0x9000, 4, true);
  m.access(1, 0x9000, 4, false);
  EXPECT_GT(m.coherence().remote_transfers, 0u);
  m.reset_stats();
  EXPECT_EQ(m.coherence().remote_transfers, 0u);
  EXPECT_EQ(m.coherence().downgrades, 0u);
}

}  // namespace
}  // namespace mcl::cachesim

// --- next-line prefetcher -----------------------------------------------------------

namespace mcl::cachesim {
namespace {

TEST(Prefetch, SequentialStreamMissesHalve) {
  MachineConfig base = small_machine(1);
  MachineConfig with_pf = base;
  with_pf.prefetch_next_line = true;
  Machine plain(base), pf(with_pf);
  for (std::uint64_t a = 0; a < 64 * 64; a += 4) {  // 64 lines, sequential
    plain.access(0, a, 4, false);
    pf.access(0, a, 4, false);
  }
  // Without prefetch: one miss per line (64). With: every miss pulls the
  // next line, so roughly every other line misses.
  EXPECT_EQ(plain.l1(0).stats().misses, 64u);
  EXPECT_LE(pf.l1(0).stats().misses, 34u);
  EXPECT_LT(pf.core_cycles(0), plain.core_cycles(0));
}

TEST(Prefetch, DoesNotStealRemoteDirtyLines) {
  MachineConfig cfg = small_machine(2);
  cfg.prefetch_next_line = true;
  Machine m(cfg);
  // Core 1 owns line B dirty; core 0 misses on line A = B - 1.
  const std::uint64_t line_a = 0x4000, line_b = 0x4040;
  m.access(1, line_b, 4, true);
  m.access(0, line_a, 4, false);  // would prefetch line_b
  EXPECT_TRUE(m.l1(1).is_dirty(line_b));   // owner untouched
  EXPECT_FALSE(m.l1(0).contains(line_b));  // streamer skipped it
}

TEST(Prefetch, RandomAccessUnaffectedMuch) {
  MachineConfig base = small_machine(1);
  MachineConfig with_pf = base;
  with_pf.prefetch_next_line = true;
  Machine plain(base), pf(with_pf);
  core::Rng rng(mcl::test::seed(3));
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_below(1 << 22) * 4;
    plain.access(0, a, 4, false);
    pf.access(0, a, 4, false);
  }
  // Wrong-path prefetches may pollute slightly but not explode misses.
  const double ratio = static_cast<double>(pf.l1(0).stats().misses) /
                       static_cast<double>(plain.l1(0).stats().misses);
  EXPECT_LT(ratio, 1.3);
  EXPECT_GT(ratio, 0.7);
}

}  // namespace
}  // namespace mcl::cachesim
