/* Proves mcl.h compiles and links as plain C: a complete vector-add through
 * the C API, returning 0 on success (asserted by the C++ test). */
#include <stdlib.h>
#include <string.h>

#include "ocl/mcl.h"

int mcl_c_smoke(void) {
  mcl_device_id device;
  mcl_uint ndev = 0;
  if (mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, &ndev) != MCL_SUCCESS)
    return 1;
  if (ndev < 1) return 2;

  char name[128];
  if (mclGetDeviceName(device, sizeof(name), name) != MCL_SUCCESS) return 3;
  if (name[0] == '\0') return 4;

  mcl_int err = MCL_SUCCESS;
  mcl_context ctx = mclCreateContext(device, &err);
  if (err != MCL_SUCCESS) return 5;
  mcl_command_queue queue = mclCreateCommandQueue(ctx, &err);
  if (err != MCL_SUCCESS) return 6;

  enum { N = 1024 };
  float a[N], b[N], c[N];
  for (int i = 0; i < N; ++i) {
    a[i] = (float)i;
    b[i] = 2.0f * (float)i;
    c[i] = 0.0f;
  }

  mcl_mem ma = mclCreateBuffer(ctx, MCL_MEM_READ_ONLY | MCL_MEM_COPY_HOST_PTR,
                               sizeof(a), a, &err);
  if (err != MCL_SUCCESS) return 7;
  mcl_mem mb = mclCreateBuffer(ctx, MCL_MEM_READ_ONLY | MCL_MEM_COPY_HOST_PTR,
                               sizeof(b), b, &err);
  if (err != MCL_SUCCESS) return 8;
  mcl_mem mc = mclCreateBuffer(ctx, MCL_MEM_WRITE_ONLY, sizeof(c), NULL, &err);
  if (err != MCL_SUCCESS) return 9;

  mcl_kernel kernel = mclCreateKernel(ctx, "vectoradd", &err);
  if (err != MCL_SUCCESS) return 10;
  if (mclSetKernelArg(kernel, 0, sizeof(mcl_mem), &ma) != MCL_SUCCESS) return 11;
  if (mclSetKernelArg(kernel, 1, sizeof(mcl_mem), &mb) != MCL_SUCCESS) return 12;
  if (mclSetKernelArg(kernel, 2, sizeof(mcl_mem), &mc) != MCL_SUCCESS) return 13;

  size_t global = N, local = 64;
  if (mclEnqueueNDRangeKernel(queue, kernel, 1, &global, &local) != MCL_SUCCESS)
    return 14;
  if (mclEnqueueReadBuffer(queue, mc, MCL_TRUE, 0, sizeof(c), c) != MCL_SUCCESS)
    return 15;

  for (int i = 0; i < N; ++i) {
    if (c[i] != 3.0f * (float)i) return 16;
  }

  /* map path */
  void* p = mclEnqueueMapBuffer(queue, mc, MCL_MAP_READ, 0, sizeof(c), &err);
  if (err != MCL_SUCCESS || p == NULL) return 17;
  if (((float*)p)[5] != 15.0f) return 18;
  if (mclEnqueueUnmapMemObject(queue, mc, p) != MCL_SUCCESS) return 19;

  if (mclFinish(queue) != MCL_SUCCESS) return 20;

  /* mclprof extension: C linkage of the profiling entry points. The metrics
   * snapshot works with or without an active session; event profiles reject
   * null handles. */
  {
    size_t sz = 0;
    char small[8];
    if (mclMetricsSnapshot(NULL, 0, &sz) != MCL_SUCCESS || sz < 3) return 21;
    if (mclMetricsSnapshot(small, sizeof(small), NULL) != MCL_SUCCESS)
      return 22;
    if (small[0] != '{') return 23;
    if (small[sizeof(small) - 1] != '\0') return 24; /* truncating copy */
    if (mclMetricsSnapshot(NULL, 0, NULL) != MCL_INVALID_VALUE) return 25;
    if (mclGetEventProfile(NULL, NULL) != MCL_INVALID_EVENT) return 26;
  }

  mclReleaseKernel(kernel);
  mclReleaseMemObject(ma);
  mclReleaseMemObject(mb);
  mclReleaseMemObject(mc);
  mclReleaseCommandQueue(queue);
  mclReleaseContext(ctx);
  return 0;
}
