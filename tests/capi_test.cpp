// Tests for the MiniCL C API (mcl.h): error mapping, handle semantics, the
// clSetKernelArg-style argument protocol, plus the pure-C smoke TU.
#include <gtest/gtest.h>

#include <vector>

#include "ocl/mcl.h"
#include "prof/profiler.hpp"

extern "C" int mcl_c_smoke(void);

namespace {

TEST(CApi, PureCTranslationUnitRunsEndToEnd) {
  EXPECT_EQ(mcl_c_smoke(), 0);
}

TEST(CApi, DeviceDiscovery) {
  mcl_uint n = 0;
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU | MCL_DEVICE_TYPE_GPU, 0,
                            nullptr, &n),
            MCL_SUCCESS);
  EXPECT_EQ(n, 2u);
  mcl_device_id devices[2];
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_GPU, 2, devices, &n), MCL_SUCCESS);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(mclGetDeviceIDs(0, 1, devices, &n), MCL_DEVICE_NOT_FOUND);
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 0, devices, &n),
            MCL_INVALID_VALUE);
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, nullptr, nullptr),
            MCL_INVALID_VALUE);
}

TEST(CApi, ErrorCodesPropagate) {
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  ASSERT_EQ(err, MCL_SUCCESS);

  // zero-size buffer
  mcl_mem bad = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, 0, nullptr, &err);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(err, MCL_INVALID_BUFFER_SIZE);

  // unknown kernel
  mcl_kernel k = mclCreateKernel(ctx, "definitely_not_registered", &err);
  EXPECT_EQ(k, nullptr);
  EXPECT_EQ(err, MCL_INVALID_KERNEL_NAME);

  // bad launch: indivisible local size
  mcl_command_queue q = mclCreateCommandQueue(ctx, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem buf = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, 64 * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_kernel sq = mclCreateKernel(ctx, "square", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(sq, 0, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(sq, 1, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  size_t global = 10, local = 3;
  EXPECT_EQ(mclEnqueueNDRangeKernel(q, sq, 1, &global, &local),
            MCL_INVALID_WORK_GROUP_SIZE);

  mclReleaseKernel(sq);
  mclReleaseMemObject(buf);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, ScalarAndLocalArgs) {
  // square_coalesced takes a uint scalar (arg 2); reduce takes local memory
  // (arg 2) — both through the clSetKernelArg byte protocol.
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  mcl_command_queue q = mclCreateCommandQueue(ctx, &err);

  const size_t n = 1000;
  std::vector<float> in(n, 3.0f), out(n, 0.0f);
  mcl_mem min = mclCreateBuffer(ctx, MCL_MEM_READ_ONLY | MCL_MEM_COPY_HOST_PTR,
                                n * 4, in.data(), &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem mout = mclCreateBuffer(ctx, MCL_MEM_WRITE_ONLY, n * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);

  mcl_kernel k = mclCreateKernel(ctx, "square_coalesced", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  const unsigned per_item = 10;
  ASSERT_EQ(mclSetKernelArg(k, 0, sizeof(mcl_mem), &min), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 1, sizeof(mcl_mem), &mout), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 2, sizeof(per_item), &per_item), MCL_SUCCESS);
  size_t global = n / per_item;
  ASSERT_EQ(mclEnqueueNDRangeKernel(q, k, 1, &global, nullptr), MCL_SUCCESS);
  ASSERT_EQ(mclEnqueueReadBuffer(q, mout, MCL_TRUE, 0, n * 4, out.data()),
            MCL_SUCCESS);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 9.0f);

  // Local-memory arg via NULL value.
  mcl_kernel red = mclCreateKernel(ctx, "reduce", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem partials = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, (n / 100) * 4,
                                     nullptr, &err);
  ASSERT_EQ(mclSetKernelArg(red, 0, sizeof(mcl_mem), &min), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(red, 1, sizeof(mcl_mem), &partials), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(red, 2, 100 * 4, nullptr), MCL_SUCCESS);
  size_t local = 100;
  size_t g2 = n;  // 10 workgroups of 100 items
  ASSERT_EQ(mclEnqueueNDRangeKernel(q, red, 1, &g2, &local), MCL_SUCCESS);
  float sum = 0.0f, partial[10];
  ASSERT_EQ(mclEnqueueReadBuffer(q, partials, MCL_TRUE, 0, sizeof(partial),
                                 partial),
            MCL_SUCCESS);
  for (float p : partial) sum += p;
  EXPECT_NEAR(sum, 3.0f * n, 0.5f);

  mclReleaseKernel(k);
  mclReleaseKernel(red);
  mclReleaseMemObject(min);
  mclReleaseMemObject(mout);
  mclReleaseMemObject(partials);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, AsyncEventsRoundTripWithWaitLists) {
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_command_queue q = mclCreateCommandQueueWithProperties(
      ctx, MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  // Unknown property bits are rejected.
  EXPECT_EQ(mclCreateCommandQueueWithProperties(ctx, 1u << 30, &err), nullptr);
  EXPECT_EQ(err, MCL_INVALID_VALUE);

  const size_t n = 1024;
  std::vector<float> in(n, 4.0f), out(n, 0.0f);
  mcl_mem buf = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, n * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_kernel k = mclCreateKernel(ctx, "square", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 0, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 1, sizeof(mcl_mem), &buf), MCL_SUCCESS);

  // On the out-of-order queue the explicit wait list is the only ordering:
  // write -> kernel -> read.
  mcl_event w_ev = nullptr, k_ev = nullptr, r_ev = nullptr;
  ASSERT_EQ(mclEnqueueWriteBufferAsync(q, buf, 0, n * 4, in.data(), 0, nullptr,
                                       &w_ev),
            MCL_SUCCESS);
  ASSERT_EQ(mclEnqueueNDRangeKernelAsync(q, k, 1, &n, nullptr, 1, &w_ev, &k_ev),
            MCL_SUCCESS);
  ASSERT_EQ(mclEnqueueReadBufferAsync(q, buf, 0, n * 4, out.data(), 1, &k_ev,
                                      &r_ev),
            MCL_SUCCESS);
  ASSERT_EQ(mclWaitForEvents(1, &r_ev), MCL_SUCCESS);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 16.0f);

  // Profiling: per-event monotonic, and wait-edges visible across events.
  mcl_ulong queued = 0, submit = 0, start = 0, end = 0, prev_end = 0;
  const mcl_event chain[] = {w_ev, k_ev, r_ev};
  for (mcl_event ev : chain) {
    size_t size_ret = 0;
    ASSERT_EQ(mclGetEventProfilingInfo(ev, MCL_PROFILING_COMMAND_QUEUED,
                                       sizeof(queued), &queued, &size_ret),
              MCL_SUCCESS);
    EXPECT_EQ(size_ret, sizeof(mcl_ulong));
    ASSERT_EQ(mclGetEventProfilingInfo(ev, MCL_PROFILING_COMMAND_SUBMIT,
                                       sizeof(submit), &submit, nullptr),
              MCL_SUCCESS);
    ASSERT_EQ(mclGetEventProfilingInfo(ev, MCL_PROFILING_COMMAND_START,
                                       sizeof(start), &start, nullptr),
              MCL_SUCCESS);
    ASSERT_EQ(mclGetEventProfilingInfo(ev, MCL_PROFILING_COMMAND_END,
                                       sizeof(end), &end, nullptr),
              MCL_SUCCESS);
    EXPECT_LE(queued, submit);
    EXPECT_LE(submit, start);
    EXPECT_LE(start, end);
    EXPECT_GE(start, prev_end);  // the wait edge ordered this event
    prev_end = end;
  }
  EXPECT_EQ(mclGetEventProfilingInfo(r_ev, 0xdead, sizeof(end), &end, nullptr),
            MCL_INVALID_VALUE);
  EXPECT_EQ(mclGetEventProfilingInfo(r_ev, MCL_PROFILING_COMMAND_END, 2, &end,
                                     nullptr),
            MCL_INVALID_VALUE);

  // Marker with empty wait list completes once everything enqueued has.
  mcl_event m_ev = nullptr;
  ASSERT_EQ(mclEnqueueMarkerWithWaitList(q, 0, nullptr, &m_ev), MCL_SUCCESS);
  ASSERT_EQ(mclWaitForEvents(1, &m_ev), MCL_SUCCESS);
  // Barrier works with a NULL event-out (fire and forget).
  ASSERT_EQ(mclEnqueueBarrierWithWaitList(q, 0, nullptr, nullptr), MCL_SUCCESS);
  ASSERT_EQ(mclFinish(q), MCL_SUCCESS);

  // Malformed wait lists are rejected up front.
  EXPECT_EQ(mclEnqueueMarkerWithWaitList(q, 1, nullptr, nullptr),
            MCL_INVALID_EVENT_WAIT_LIST);
  mcl_event null_ev = nullptr;
  EXPECT_EQ(mclEnqueueMarkerWithWaitList(q, 1, &null_ev, nullptr),
            MCL_INVALID_EVENT_WAIT_LIST);
  EXPECT_EQ(mclWaitForEvents(0, nullptr), MCL_INVALID_VALUE);

  for (mcl_event ev : {w_ev, k_ev, r_ev, m_ev}) {
    EXPECT_EQ(mclReleaseEvent(ev), MCL_SUCCESS);
  }
  EXPECT_EQ(mclReleaseEvent(nullptr), MCL_INVALID_EVENT);
  mclReleaseKernel(k);
  mclReleaseMemObject(buf);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, AsyncErrorPropagationAcrossEvents) {
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  mcl_command_queue q = mclCreateCommandQueueWithProperties(
      ctx, MCL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem buf = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, 64 * 4, nullptr, &err);
  mcl_kernel k = mclCreateKernel(ctx, "square", &err);
  ASSERT_EQ(mclSetKernelArg(k, 0, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 1, sizeof(mcl_mem), &buf), MCL_SUCCESS);

  size_t global = 10, local = 3;  // indivisible: fails at execution
  mcl_event bad = nullptr, dep = nullptr;
  ASSERT_EQ(mclEnqueueNDRangeKernelAsync(q, k, 1, &global, &local, 0, nullptr,
                                         &bad),
            MCL_SUCCESS);
  float out[64];
  ASSERT_EQ(mclEnqueueReadBufferAsync(q, buf, 0, sizeof(out), out, 1, &bad,
                                      &dep),
            MCL_SUCCESS);
  EXPECT_EQ(mclWaitForEvents(1, &bad),
            MCL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST);
  EXPECT_EQ(mclWaitForEvents(1, &dep),
            MCL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST);
  ASSERT_EQ(mclFinish(q), MCL_SUCCESS);

  mclReleaseEvent(bad);
  mclReleaseEvent(dep);
  mclReleaseKernel(k);
  mclReleaseMemObject(buf);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, EventProfileCarriesKernelCounters) {
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_command_queue q = mclCreateCommandQueue(ctx, &err);
  ASSERT_EQ(err, MCL_SUCCESS);

  const size_t n = 512;
  mcl_mem buf = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, n * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_kernel k = mclCreateKernel(ctx, "square", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 0, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 1, sizeof(mcl_mem), &buf), MCL_SUCCESS);

  mcl::prof::start();
  mcl_event ev = nullptr;
  const size_t local = 64;
  ASSERT_EQ(
      mclEnqueueNDRangeKernelAsync(q, k, 1, &n, &local, 0, nullptr, &ev),
      MCL_SUCCESS);
  ASSERT_EQ(mclWaitForEvents(1, &ev), MCL_SUCCESS);

  mcl_kernel_profile p;
  ASSERT_EQ(mclGetEventProfile(ev, &p), MCL_SUCCESS);
  EXPECT_STREQ(p.kernel, "square");
  EXPECT_EQ(p.launches, 1u);
  EXPECT_EQ(p.workgroups, n / local);
  EXPECT_EQ(p.items, n);
  EXPECT_GT(p.seconds, 0.0);
  // Graceful degradation: `hardware` says whether cycles/ipc are real.
  if (p.hardware == MCL_FALSE) {
    EXPECT_EQ(p.cycles, 0u);
    EXPECT_EQ(p.ipc, 0.0);
  } else {
    EXPECT_GT(p.cycles, 0u);
    EXPECT_GT(p.ipc, 0.0);
  }
  EXPECT_EQ(mclGetEventProfile(ev, nullptr), MCL_INVALID_VALUE);
  mcl::prof::stop();

  // A transfer event is not a kernel: no profile to fetch.
  std::vector<float> host(n, 0.0f);
  mcl_event r_ev = nullptr;
  ASSERT_EQ(mclEnqueueReadBufferAsync(q, buf, 0, n * 4, host.data(), 0,
                                      nullptr, &r_ev),
            MCL_SUCCESS);
  ASSERT_EQ(mclWaitForEvents(1, &r_ev), MCL_SUCCESS);
  EXPECT_EQ(mclGetEventProfile(r_ev, &p), MCL_PROFILING_INFO_NOT_AVAILABLE);

  mclReleaseEvent(ev);
  mclReleaseEvent(r_ev);
  mclReleaseKernel(k);
  mclReleaseMemObject(buf);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, NullHandleRejection) {
  EXPECT_EQ(mclReleaseContext(nullptr), MCL_INVALID_CONTEXT);
  EXPECT_EQ(mclReleaseMemObject(nullptr), MCL_INVALID_MEM_OBJECT);
  EXPECT_EQ(mclReleaseKernel(nullptr), MCL_INVALID_VALUE);
  EXPECT_EQ(mclFinish(nullptr), MCL_INVALID_VALUE);
  mcl_int err = 123;
  EXPECT_EQ(mclCreateContext(nullptr, &err), nullptr);
  EXPECT_EQ(err, MCL_INVALID_DEVICE);
}

}  // namespace
