// Tests for the MiniCL C API (mcl.h): error mapping, handle semantics, the
// clSetKernelArg-style argument protocol, plus the pure-C smoke TU.
#include <gtest/gtest.h>

#include <vector>

#include "ocl/mcl.h"

extern "C" int mcl_c_smoke(void);

namespace {

TEST(CApi, PureCTranslationUnitRunsEndToEnd) {
  EXPECT_EQ(mcl_c_smoke(), 0);
}

TEST(CApi, DeviceDiscovery) {
  mcl_uint n = 0;
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU | MCL_DEVICE_TYPE_GPU, 0,
                            nullptr, &n),
            MCL_SUCCESS);
  EXPECT_EQ(n, 2u);
  mcl_device_id devices[2];
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_GPU, 2, devices, &n), MCL_SUCCESS);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(mclGetDeviceIDs(0, 1, devices, &n), MCL_DEVICE_NOT_FOUND);
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 0, devices, &n),
            MCL_INVALID_VALUE);
  EXPECT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, nullptr, nullptr),
            MCL_INVALID_VALUE);
}

TEST(CApi, ErrorCodesPropagate) {
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  ASSERT_EQ(err, MCL_SUCCESS);

  // zero-size buffer
  mcl_mem bad = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, 0, nullptr, &err);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(err, MCL_INVALID_BUFFER_SIZE);

  // unknown kernel
  mcl_kernel k = mclCreateKernel(ctx, "definitely_not_registered", &err);
  EXPECT_EQ(k, nullptr);
  EXPECT_EQ(err, MCL_INVALID_KERNEL_NAME);

  // bad launch: indivisible local size
  mcl_command_queue q = mclCreateCommandQueue(ctx, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem buf = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, 64 * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_kernel sq = mclCreateKernel(ctx, "square", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(sq, 0, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(sq, 1, sizeof(mcl_mem), &buf), MCL_SUCCESS);
  size_t global = 10, local = 3;
  EXPECT_EQ(mclEnqueueNDRangeKernel(q, sq, 1, &global, &local),
            MCL_INVALID_WORK_GROUP_SIZE);

  mclReleaseKernel(sq);
  mclReleaseMemObject(buf);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, ScalarAndLocalArgs) {
  // square_coalesced takes a uint scalar (arg 2); reduce takes local memory
  // (arg 2) — both through the clSetKernelArg byte protocol.
  mcl_device_id device;
  ASSERT_EQ(mclGetDeviceIDs(MCL_DEVICE_TYPE_CPU, 1, &device, nullptr),
            MCL_SUCCESS);
  mcl_int err;
  mcl_context ctx = mclCreateContext(device, &err);
  mcl_command_queue q = mclCreateCommandQueue(ctx, &err);

  const size_t n = 1000;
  std::vector<float> in(n, 3.0f), out(n, 0.0f);
  mcl_mem min = mclCreateBuffer(ctx, MCL_MEM_READ_ONLY | MCL_MEM_COPY_HOST_PTR,
                                n * 4, in.data(), &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem mout = mclCreateBuffer(ctx, MCL_MEM_WRITE_ONLY, n * 4, nullptr, &err);
  ASSERT_EQ(err, MCL_SUCCESS);

  mcl_kernel k = mclCreateKernel(ctx, "square_coalesced", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  const unsigned per_item = 10;
  ASSERT_EQ(mclSetKernelArg(k, 0, sizeof(mcl_mem), &min), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 1, sizeof(mcl_mem), &mout), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(k, 2, sizeof(per_item), &per_item), MCL_SUCCESS);
  size_t global = n / per_item;
  ASSERT_EQ(mclEnqueueNDRangeKernel(q, k, 1, &global, nullptr), MCL_SUCCESS);
  ASSERT_EQ(mclEnqueueReadBuffer(q, mout, MCL_TRUE, 0, n * 4, out.data()),
            MCL_SUCCESS);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 9.0f);

  // Local-memory arg via NULL value.
  mcl_kernel red = mclCreateKernel(ctx, "reduce", &err);
  ASSERT_EQ(err, MCL_SUCCESS);
  mcl_mem partials = mclCreateBuffer(ctx, MCL_MEM_READ_WRITE, (n / 100) * 4,
                                     nullptr, &err);
  ASSERT_EQ(mclSetKernelArg(red, 0, sizeof(mcl_mem), &min), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(red, 1, sizeof(mcl_mem), &partials), MCL_SUCCESS);
  ASSERT_EQ(mclSetKernelArg(red, 2, 100 * 4, nullptr), MCL_SUCCESS);
  size_t local = 100;
  size_t g2 = n;  // 10 workgroups of 100 items
  ASSERT_EQ(mclEnqueueNDRangeKernel(q, red, 1, &g2, &local), MCL_SUCCESS);
  float sum = 0.0f, partial[10];
  ASSERT_EQ(mclEnqueueReadBuffer(q, partials, MCL_TRUE, 0, sizeof(partial),
                                 partial),
            MCL_SUCCESS);
  for (float p : partial) sum += p;
  EXPECT_NEAR(sum, 3.0f * n, 0.5f);

  mclReleaseKernel(k);
  mclReleaseKernel(red);
  mclReleaseMemObject(min);
  mclReleaseMemObject(mout);
  mclReleaseMemObject(partials);
  mclReleaseCommandQueue(q);
  mclReleaseContext(ctx);
}

TEST(CApi, NullHandleRejection) {
  EXPECT_EQ(mclReleaseContext(nullptr), MCL_INVALID_CONTEXT);
  EXPECT_EQ(mclReleaseMemObject(nullptr), MCL_INVALID_MEM_OBJECT);
  EXPECT_EQ(mclReleaseKernel(nullptr), MCL_INVALID_VALUE);
  EXPECT_EQ(mclFinish(nullptr), MCL_INVALID_VALUE);
  mcl_int err = 123;
  EXPECT_EQ(mclCreateContext(nullptr, &err), nullptr);
  EXPECT_EQ(err, MCL_INVALID_DEVICE);
}

}  // namespace
