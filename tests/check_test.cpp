// mclcheck conformance-fuzzer tests: generator determinism and validity,
// descriptor validation, hand-computed reference-oracle checks, a
// differential smoke over many seeds, repro-file round-trips, and the
// injected-chunker-bug acceptance path (catch -> minimize -> replay).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

#include "check/case.hpp"
#include "check/differ.hpp"
#include "check/generator.hpp"
#include "check/reference.hpp"
#include "check/repro.hpp"
#include "check/shrink.hpp"
#include "check/soundness.hpp"
#include "core/rng.hpp"
#include "testseed.hpp"

namespace mcl::check {
namespace {

// --- generator ----------------------------------------------------------------

TEST(Generator, DeterministicAndAlwaysValid) {
  for (std::uint64_t i = 0; i < 30; ++i) {
    const std::uint64_t cs = case_seed(7, i);
    const Case a = generate_case(cs);
    const Case b = generate_case(cs);
    EXPECT_EQ(a, b) << "seed " << cs;
    EXPECT_FALSE(validate(a).has_value()) << *validate(a);
    EXPECT_EQ(a.global % a.local, 0u);
  }
}

TEST(Generator, DistinctSeedsProduceDistinctCases) {
  const Case a = generate_case(case_seed(1, 0));
  const Case b = generate_case(case_seed(1, 1));
  EXPECT_NE(a, b);
}

TEST(Generator, CoversBarrierAndGuardedShapes) {
  int barrier = 0, guarded = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Case c = generate_case(case_seed(3, i));
    barrier += c.has_barrier() ? 1 : 0;
    guarded += c.work_items < static_cast<long long>(c.global) ? 1 : 0;
  }
  EXPECT_GT(barrier, 5);
  EXPECT_GT(guarded, 5);
}

// --- validate -----------------------------------------------------------------

/// Smallest well-formed case: A1[i] = add(init, A0[i]) over 4 items.
Case tiny_case(Ty type) {
  Case c;
  c.type = type;
  c.global = 4;
  c.local = 2;
  c.work_items = 4;
  c.arrays.push_back(Array{4, /*read_only=*/true, false, 11});
  c.arrays.push_back(Array{4, false, false, 22});
  Stmt s;
  s.dst_array = 1;
  s.dst = Access{1, 1, 0};
  s.op = Op::Add;
  s.init_bits = 5;
  s.reads.push_back(Access{0, 1, 0});
  c.stmts.push_back(std::move(s));
  return c;
}

TEST(Validate, AcceptsTinyCase) {
  EXPECT_FALSE(validate(tiny_case(Ty::I32)).has_value());
}

TEST(Validate, RejectsNonDivisibleGeometry) {
  Case c = tiny_case(Ty::I32);
  c.global = 10;
  c.local = 3;
  c.work_items = 10;
  c.arrays[0].extent = c.arrays[1].extent = 10;
  EXPECT_TRUE(validate(c).has_value());
}

TEST(Validate, RejectsOutOfBoundsRead) {
  Case c = tiny_case(Ty::I32);
  c.stmts[0].reads[0].offset = 1;  // index 4 at gid 3, extent 4
  EXPECT_TRUE(validate(c).has_value());
}

TEST(Validate, RejectsDoubleWriteOfGlobalArray) {
  Case c = tiny_case(Ty::I32);
  c.stmts.push_back(c.stmts[0]);
  EXPECT_TRUE(validate(c).has_value());
}

TEST(Validate, RejectsNonInjectiveWrite) {
  Case c = tiny_case(Ty::I32);
  c.stmts[0].dst = Access{1, 0, 0};  // every item stores to element 0: race
  EXPECT_TRUE(validate(c).has_value());
}

TEST(Validate, RejectsReadAwayFromWriteSubscript) {
  Case c = tiny_case(Ty::I32);
  c.stmts[0].reads.push_back(Access{1, 1, 1});  // cross-item read of output
  c.arrays[1].extent = 5;
  EXPECT_TRUE(validate(c).has_value());
  // ...but the distance-0 RMW shape is legal.
  Case rmw = tiny_case(Ty::I32);
  rmw.stmts[0].reads.push_back(rmw.stmts[0].dst);
  EXPECT_FALSE(validate(rmw).has_value());
}

TEST(Validate, RejectsBarrierWithoutUniformStructure) {
  Case c = tiny_case(Ty::I32);
  Stmt bar;
  bar.barrier = true;
  c.stmts.insert(c.stmts.begin(), bar);
  c.work_items = 3;  // guarded tail + barrier: P1 divergence
  EXPECT_TRUE(validate(c).has_value());
}

TEST(Validate, RejectsUndefinedTempRead) {
  Case c = tiny_case(Ty::I32);
  c.num_temps = 2;
  c.stmts[0].temp_reads.push_back(1);  // never defined
  EXPECT_TRUE(validate(c).has_value());
}

// --- shared evaluation core ----------------------------------------------------

TEST(EvalCore, SanitizeBitsRemapsNonFinite) {
  const std::uint32_t inf = 0x7f800000u;
  const std::uint32_t nan = 0x7fc00001u;
  const std::uint32_t subnormal = 0x00000001u;
  for (std::uint32_t bits : {inf, nan, subnormal}) {
    const float v = std::bit_cast<float>(sanitize_bits(Ty::F32, bits));
    EXPECT_TRUE(std::isfinite(v)) << std::hex << bits;
  }
  // Identity for normal values and for I32.
  EXPECT_EQ(sanitize_bits(Ty::F32, 0x3f800000u), 0x3f800000u);
  EXPECT_EQ(sanitize_bits(Ty::I32, inf), inf);
}

TEST(EvalCore, I32ArithmeticWrapsWithoutUb) {
  EXPECT_EQ(apply_op(Ty::I32, Op::Add, 0xffffffffu, 2u), 1u);
  EXPECT_EQ(apply_op(Ty::I32, Op::Mul, 0x80000000u, 2u), 0u);
  // min/max compare as signed int32.
  EXPECT_EQ(apply_op(Ty::I32, Op::Min, 0xffffffffu, 1u), 0xffffffffu);
  EXPECT_EQ(apply_op(Ty::I32, Op::Max, 0xffffffffu, 1u), 1u);
}

// --- reference oracle ----------------------------------------------------------

TEST(Reference, HandComputedElementwiseAdd) {
  const Case c = tiny_case(Ty::I32);
  const Memory init = initial_memory(c);
  const Memory got = reference_result(c);
  ASSERT_EQ(got.arrays.size(), 2u);
  for (long long i = 0; i < 4; ++i) {
    EXPECT_EQ(got.arrays[1][i], 5u + init.arrays[0][i]) << i;
    EXPECT_EQ(got.arrays[0][i], init.arrays[0][i]) << i;  // input untouched
  }
}

TEST(Reference, GuardedTailLeavesInitialContents) {
  Case c = tiny_case(Ty::I32);
  c.work_items = 2;  // items 2..3 inactive
  const Memory init = initial_memory(c);
  const Memory got = reference_result(c);
  EXPECT_EQ(got.arrays[1][0], 5u + init.arrays[0][0]);
  EXPECT_EQ(got.arrays[1][1], 5u + init.arrays[0][1]);
  EXPECT_EQ(got.arrays[1][2], init.arrays[1][2]);
  EXPECT_EQ(got.arrays[1][3], init.arrays[1][3]);
}

TEST(Reference, BarrierReversesThroughLocalMemory) {
  // A2 local: epoch 0 fills A2[lid] = A0[gid]; epoch 1 stores the
  // group-reversed element A2[L-1-lid] into A1[gid].
  Case c;
  c.type = Ty::I32;
  c.global = 8;
  c.local = 4;
  c.work_items = 8;
  c.arrays.push_back(Array{8, true, false, 31});
  c.arrays.push_back(Array{8, false, false, 32});
  c.arrays.push_back(Array{4, false, true, 0});
  Stmt fill;
  fill.dst_array = 2;
  fill.dst = Access{2, 1, 0};
  fill.op = Op::Add;
  fill.reads.push_back(Access{0, 1, 0});
  c.stmts.push_back(std::move(fill));
  Stmt bar;
  bar.barrier = true;
  c.stmts.push_back(std::move(bar));
  Stmt store;
  store.dst_array = 1;
  store.dst = Access{1, 1, 0};
  store.op = Op::Add;
  store.reads.push_back(Access{2, -1, 3});
  c.stmts.push_back(std::move(store));
  ASSERT_FALSE(validate(c).has_value()) << *validate(c);

  const Memory init = initial_memory(c);
  const Memory got = reference_result(c);
  for (long long g = 0; g < 2; ++g) {
    for (long long l = 0; l < 4; ++l) {
      EXPECT_EQ(got.arrays[1][g * 4 + l], init.arrays[0][g * 4 + (3 - l)])
          << "group " << g << " lane " << l;
    }
  }
}

// --- differential driver --------------------------------------------------------

TEST(Differ, FiftySeedsAllBackendsAgree) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Case c = generate_case(case_seed(mcl::test::seed(0xD1FF), i));
    const auto m = run_case(c);
    EXPECT_FALSE(m.has_value())
        << "seed " << c.seed << ": " << m->to_string();
  }
}

TEST(Differ, UlpDistanceIsMonotoneAcrossZero) {
  const auto bits = [](float f) { return std::bit_cast<std::uint32_t>(f); };
  EXPECT_EQ(ulp_distance(bits(1.0f), bits(1.0f)), 0u);
  EXPECT_EQ(ulp_distance(bits(1.0f), std::bit_cast<std::uint32_t>(
                                         std::nextafter(1.0f, 2.0f))),
            1u);
  // +0 and -0 are one bit pattern apart in the monotone mapping but
  // numerically identical neighborhoods: distance 0.
  EXPECT_EQ(ulp_distance(bits(0.0f), bits(-0.0f)), 0u);
  EXPECT_GT(ulp_distance(bits(-1.0f), bits(1.0f)), 1u << 20);
}

// --- repro files ----------------------------------------------------------------

TEST(Repro, RoundTripsGeneratedCases) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Case c = generate_case(case_seed(99, i));
    const std::string text = serialize_repro(c, /*minimized=*/false, "note");
    std::string error;
    const auto parsed = parse_repro(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->kase, c);
    EXPECT_FALSE(parsed->minimized);
  }
}

TEST(Repro, RejectsHandEditedRacyProgram) {
  const Case c = tiny_case(Ty::I32);
  std::string text = serialize_repro(c, true, "");
  // A broadcast write (scale 0) races; parse must re-validate and refuse.
  const std::size_t at = text.find("stmt array 1 1 0");
  ASSERT_NE(at, std::string::npos) << text;
  text.replace(at, 16, "stmt array 1 0 0");
  std::string error;
  EXPECT_FALSE(parse_repro(text, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Repro, RejectsTruncatedFile) {
  const Case c = tiny_case(Ty::I32);
  std::string text = serialize_repro(c, true, "");
  text.resize(text.find("stmt"));
  std::string error;
  EXPECT_FALSE(parse_repro(text, &error).has_value());
}

// --- fault injection acceptance -------------------------------------------------

/// Sets MCL_CHECK_INJECT for the scope; restores on exit even if the test
/// fails mid-way.
struct InjectGuard {
  explicit InjectGuard(const char* what) {
    setenv("MCL_CHECK_INJECT", what, 1);
  }
  ~InjectGuard() { unsetenv("MCL_CHECK_INJECT"); }
};

TEST(Injection, ChunkerBugCaughtMinimizedAndReplayed) {
  // Find a case the injected bug breaks. The bug drops the last workgroup
  // whenever the pooled device dispatches more than one, so any multi-group
  // case whose last group writes observable output fails.
  std::optional<Case> failing;
  Mismatch first;
  {
    InjectGuard inject("chunker");
    for (std::uint64_t i = 0; i < 50 && !failing; ++i) {
      const Case c = generate_case(case_seed(1, i));
      if (auto m = run_case(c)) {
        failing = c;
        first = *m;
      }
    }
    ASSERT_TRUE(failing.has_value())
        << "injected chunker bug survived 50 cases undetected";

    // Minimize under the injection; the failure must survive shrinking and
    // land at <= 4 workitems (the bug needs only 2 groups of 1).
    ShrinkStats stats;
    const Case small = shrink_case(
        *failing, [](const Case& cand) { return run_case(cand).has_value(); },
        400, &stats);
    EXPECT_LE(small.work_items, 4);
    EXPECT_GT(stats.accepted, 0);

    // Round-trip through the repro format and replay: still failing,
    // deterministically.
    const std::string text = serialize_repro(small, true, first.to_string());
    std::string error;
    const auto parsed = parse_repro(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const auto replayed = run_case(parsed->kase);
    ASSERT_TRUE(replayed.has_value());
    const auto again = run_case(parsed->kase);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(replayed->to_string(), again->to_string());
  }

  // With the injection removed the same case passes: the bug was in the
  // (injected) runtime path, not in the generated program.
  EXPECT_FALSE(run_case(*failing).has_value());
}

// --- soundness oracle ------------------------------------------------------------

TEST(Soundness, FiftySeedsNoProvenArrayEverFlagged) {
  SoundnessStats stats;
  for (std::uint64_t i = 0; i < 50; ++i) {
    run_soundness_case(generate_case(case_seed(mcl::test::seed(0x50FD), i)),
                       stats);
  }
  EXPECT_TRUE(stats.sound())
      << (stats.failures.empty() ? std::string() : stats.failures.front());
  EXPECT_EQ(stats.cases, 50u);
  // The sweep only means something if proofs actually discharged: the
  // generator's guarded/barrier mix must yield proven arrays and boundary
  // variants to stress.
  EXPECT_GT(stats.proven_arrays, 0u);
  EXPECT_GT(stats.accesses_covered, 0u);
  EXPECT_GT(stats.boundary_checks, 0u);
}

TEST(Soundness, InjectedLaxDischargeIsDetected) {
  // MCL_CHECK_INJECT=verify makes discharge() accept one element past the
  // extent; the boundary variant (extent shrunk to the statically reached
  // maximum) must then convict it — proving the oracle can fail.
  InjectGuard inject("verify");
  SoundnessStats stats;
  for (std::uint64_t i = 0; i < 20 && stats.violations == 0; ++i) {
    run_soundness_case(generate_case(case_seed(mcl::test::seed(0x50FD), i)),
                       stats);
  }
  EXPECT_GT(stats.violations, 0u)
      << "lax discharge survived " << stats.cases << " boundary variants";
  EXPECT_FALSE(stats.sound());
  EXPECT_FALSE(stats.failures.empty());
}

}  // namespace
}  // namespace mcl::check
