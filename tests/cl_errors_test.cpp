// CL error-code matrix + drift guards for the binary-compatible shim.
//
// Two halves:
//  1. Drift guards: the set of entry points declared in include/CL/cl.h must
//     equal the Implemented+Stubbed rows of the cl_surface() table, the table
//     must stay sorted, every Implemented row must name a covering test, and
//     the numeric expectations below must agree with status_to_cl_code() —
//     so neither the header, the surface table, nor this test can drift from
//     the shim.
//  2. The matrix proper: one or more table-driven negative calls per entry
//     point asserting the spec-mandated error code.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <CL/cl.h>

#include "core/error.hpp"
#include "ocl/cl_status.hpp"
#include "ocl/cl_surface.hpp"

namespace {

using mcl::core::Status;
using mcl::ocl::cl_surface;
using mcl::ocl::ClSurfaceEntry;
using mcl::ocl::ClSurfaceStatus;
using mcl::ocl::status_to_cl_code;

// ---------------------------------------------------------------------------
// Shared live fixture: one platform/device/context/queue/program/buffer set,
// built once. Negative calls never mutate these (each case that needs a
// throwaway object creates its own).
struct Fix {
  cl_platform_id platform = nullptr;
  cl_device_id cpu = nullptr;
  cl_device_id gpu = nullptr;
  cl_context context = nullptr;     // CPU-only context
  cl_command_queue queue = nullptr;
  cl_program program = nullptr;     // built, binds "square"
  cl_mem buffer = nullptr;          // 1024 bytes

  static Fix& get() {
    static Fix f = [] {
      Fix x;
      cl_int err = clGetPlatformIDs(1, &x.platform, nullptr);
      EXPECT_EQ(CL_SUCCESS, err);
      err = clGetDeviceIDs(x.platform, CL_DEVICE_TYPE_CPU, 1, &x.cpu, nullptr);
      EXPECT_EQ(CL_SUCCESS, err);
      err = clGetDeviceIDs(x.platform, CL_DEVICE_TYPE_GPU, 1, &x.gpu, nullptr);
      EXPECT_EQ(CL_SUCCESS, err);
      x.context = clCreateContext(nullptr, 1, &x.cpu, nullptr, nullptr, &err);
      EXPECT_EQ(CL_SUCCESS, err);
      x.queue = clCreateCommandQueue(x.context, x.cpu, 0, &err);
      EXPECT_EQ(CL_SUCCESS, err);
      const char* src =
          "__kernel void square(__global const float* in, "
          "__global float* out) { }";
      x.program = clCreateProgramWithSource(x.context, 1, &src, nullptr, &err);
      EXPECT_EQ(CL_SUCCESS, err);
      err = clBuildProgram(x.program, 0, nullptr, nullptr, nullptr, nullptr);
      EXPECT_EQ(CL_SUCCESS, err);
      x.buffer = clCreateBuffer(x.context, CL_MEM_READ_WRITE, 1024, nullptr,
                                &err);
      EXPECT_EQ(CL_SUCCESS, err);
      return x;
    }();
    return f;
  }

  // Fresh kernel with no arguments set; caller releases.
  cl_kernel make_kernel() const {
    cl_int err = CL_SUCCESS;
    cl_kernel k = clCreateKernel(program, "square", &err);
    EXPECT_EQ(CL_SUCCESS, err);
    return k;
  }
};

struct MatrixCase {
  const char* entry;  ///< CL entry point this case exercises
  const char* what;   ///< short description of the invalid call
  cl_int want;
  std::function<cl_int(Fix&)> run;
};

// The matrix. Every Implemented/Stubbed surface row must appear here at
// least once (asserted by MatrixCoversSurface below).
const std::vector<MatrixCase>& matrix() {
  static const std::vector<MatrixCase> kCases = {
      // --- platform / device discovery ---
      {"clGetPlatformIDs", "num_entries=0 with non-NULL platforms",
       CL_INVALID_VALUE,
       [](Fix&) {
         cl_platform_id p;
         return clGetPlatformIDs(0, &p, nullptr);
       }},
      {"clGetPlatformInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetPlatformInfo(f.platform, 0, sizeof(buf), buf, nullptr);
       }},
      {"clGetPlatformInfo", "undersized destination", CL_INVALID_VALUE,
       [](Fix& f) {
         char c;
         return clGetPlatformInfo(f.platform, CL_PLATFORM_NAME, 1, &c,
                                  nullptr);
       }},
      {"clGetDeviceIDs", "no accelerator devices exist", CL_DEVICE_NOT_FOUND,
       [](Fix& f) {
         cl_device_id d;
         return clGetDeviceIDs(f.platform, CL_DEVICE_TYPE_ACCELERATOR, 1, &d,
                               nullptr);
       }},
      {"clGetDeviceIDs", "num_entries=0 with non-NULL devices",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_device_id d;
         return clGetDeviceIDs(f.platform, CL_DEVICE_TYPE_CPU, 0, &d,
                               nullptr);
       }},
      {"clGetDeviceInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetDeviceInfo(f.cpu, 0, sizeof(buf), buf, nullptr);
       }},

      // --- sub-devices ---
      {"clCreateSubDevices", "gpusim device is not partitionable",
       CL_INVALID_DEVICE,
       [](Fix& f) {
         cl_device_partition_property props[] = {CL_DEVICE_PARTITION_EQUALLY,
                                                 2, 0};
         cl_device_id out[2];
         cl_uint n = 0;
         return clCreateSubDevices(f.gpu, props, 2, out, &n);
       }},
      {"clCreateSubDevices", "NULL properties", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_uint n = 0;
         return clCreateSubDevices(f.cpu, nullptr, 0, nullptr, &n);
       }},
      {"clCreateSubDevices", "EQUALLY with zero compute units",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_device_partition_property props[] = {CL_DEVICE_PARTITION_EQUALLY,
                                                 0, 0};
         cl_uint n = 0;
         return clCreateSubDevices(f.cpu, props, 0, nullptr, &n);
       }},
      {"clCreateSubDevices", "BY_COUNTS exceeding the pool",
       CL_INVALID_DEVICE_PARTITION_COUNT,
       [](Fix& f) {
         cl_device_partition_property props[] = {
             CL_DEVICE_PARTITION_BY_COUNTS, 1 << 20,
             CL_DEVICE_PARTITION_BY_COUNTS_LIST_END, 0};
         cl_uint n = 0;
         return clCreateSubDevices(f.cpu, props, 0, nullptr, &n);
       }},
      {"clRetainDevice", "NULL device", CL_INVALID_DEVICE,
       [](Fix&) { return clRetainDevice(nullptr); }},
      {"clReleaseDevice", "NULL device", CL_INVALID_DEVICE,
       [](Fix&) { return clReleaseDevice(nullptr); }},

      // --- contexts ---
      {"clCreateContext", "NULL device list", CL_INVALID_VALUE,
       [](Fix&) {
         cl_int err = CL_SUCCESS;
         cl_context c = clCreateContext(nullptr, 0, nullptr, nullptr, nullptr,
                                        &err);
         EXPECT_EQ(nullptr, c);
         return err;
       }},
      {"clCreateContext", "unknown context property", CL_INVALID_PROPERTY,
       [](Fix& f) {
         cl_context_properties props[] = {0x7777, 1, 0};
         cl_int err = CL_SUCCESS;
         cl_context c = clCreateContext(props, 1, &f.cpu, nullptr, nullptr,
                                        &err);
         EXPECT_EQ(nullptr, c);
         return err;
       }},
      {"clCreateContextFromType", "no accelerator devices",
       CL_DEVICE_NOT_FOUND,
       [](Fix&) {
         cl_int err = CL_SUCCESS;
         cl_context c = clCreateContextFromType(
             nullptr, CL_DEVICE_TYPE_ACCELERATOR, nullptr, nullptr, &err);
         EXPECT_EQ(nullptr, c);
         return err;
       }},
      {"clRetainContext", "NULL context", CL_INVALID_CONTEXT,
       [](Fix&) { return clRetainContext(nullptr); }},
      {"clReleaseContext", "NULL context", CL_INVALID_CONTEXT,
       [](Fix&) { return clReleaseContext(nullptr); }},
      {"clGetContextInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetContextInfo(f.context, 0, sizeof(buf), buf, nullptr);
       }},

      // --- command queues ---
      {"clCreateCommandQueue", "device not in context", CL_INVALID_DEVICE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_command_queue q = clCreateCommandQueue(f.context, f.gpu, 0, &err);
         EXPECT_EQ(nullptr, q);
         return err;
       }},
      {"clCreateCommandQueue", "unknown properties bit", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_command_queue q =
             clCreateCommandQueue(f.context, f.cpu, 1u << 5, &err);
         EXPECT_EQ(nullptr, q);
         return err;
       }},
      {"clRetainCommandQueue", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) { return clRetainCommandQueue(nullptr); }},
      {"clReleaseCommandQueue", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) { return clReleaseCommandQueue(nullptr); }},
      {"clGetCommandQueueInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetCommandQueueInfo(f.queue, 0, sizeof(buf), buf, nullptr);
       }},
      {"clFlush", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) { return clFlush(nullptr); }},
      {"clFinish", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) { return clFinish(nullptr); }},

      // --- buffers ---
      {"clCreateBuffer", "zero size", CL_INVALID_BUFFER_SIZE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_mem m = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 0, nullptr,
                                   &err);
         EXPECT_EQ(nullptr, m);
         return err;
       }},
      {"clCreateBuffer", "READ_ONLY | WRITE_ONLY", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         clCreateBuffer(f.context, CL_MEM_READ_ONLY | CL_MEM_WRITE_ONLY, 64,
                        nullptr, &err);
         return err;
       }},
      {"clCreateBuffer", "USE_HOST_PTR without host_ptr", CL_INVALID_HOST_PTR,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         clCreateBuffer(f.context, CL_MEM_USE_HOST_PTR, 64, nullptr, &err);
         return err;
       }},
      {"clCreateBuffer", "host_ptr without USE/COPY flag",
       CL_INVALID_HOST_PTR,
       [](Fix& f) {
         char storage[64];
         cl_int err = CL_SUCCESS;
         clCreateBuffer(f.context, CL_MEM_READ_WRITE, sizeof(storage),
                        storage, &err);
         return err;
       }},
      {"clCreateSubBuffer", "unknown create_type", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_buffer_region region{0, 64};
         cl_int err = CL_SUCCESS;
         clCreateSubBuffer(f.buffer, CL_MEM_READ_WRITE, 0x9999, &region,
                           &err);
         return err;
       }},
      {"clCreateSubBuffer", "region out of bounds", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_buffer_region region{512, 1024};
         cl_int err = CL_SUCCESS;
         clCreateSubBuffer(f.buffer, CL_MEM_READ_WRITE,
                           CL_BUFFER_CREATE_TYPE_REGION, &region, &err);
         return err;
       }},
      {"clCreateSubBuffer", "zero-size region", CL_INVALID_BUFFER_SIZE,
       [](Fix& f) {
         cl_buffer_region region{0, 0};
         cl_int err = CL_SUCCESS;
         clCreateSubBuffer(f.buffer, CL_MEM_READ_WRITE,
                           CL_BUFFER_CREATE_TYPE_REGION, &region, &err);
         return err;
       }},
      {"clCreateSubBuffer", "sub-buffer of a sub-buffer",
       CL_INVALID_MEM_OBJECT,
       [](Fix& f) {
         cl_buffer_region region{0, 64};
         cl_int err = CL_SUCCESS;
         cl_mem sub = clCreateSubBuffer(f.buffer, CL_MEM_READ_WRITE,
                                        CL_BUFFER_CREATE_TYPE_REGION, &region,
                                        &err);
         EXPECT_EQ(CL_SUCCESS, err);
         cl_int err2 = CL_SUCCESS;
         clCreateSubBuffer(sub, CL_MEM_READ_WRITE,
                           CL_BUFFER_CREATE_TYPE_REGION, &region, &err2);
         clReleaseMemObject(sub);
         return err2;
       }},
      {"clRetainMemObject", "NULL mem object", CL_INVALID_MEM_OBJECT,
       [](Fix&) { return clRetainMemObject(nullptr); }},
      {"clReleaseMemObject", "NULL mem object", CL_INVALID_MEM_OBJECT,
       [](Fix&) { return clReleaseMemObject(nullptr); }},
      {"clGetMemObjectInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetMemObjectInfo(f.buffer, 0, sizeof(buf), buf, nullptr);
       }},
      {"clGetSupportedImageFormats", "no formats reported, still CL_SUCCESS",
       CL_SUCCESS,
       [](Fix& f) {
         cl_uint n = 99;
         cl_int err = clGetSupportedImageFormats(
             f.context, CL_MEM_READ_WRITE, 0x10F1 /* CL_MEM_OBJECT_IMAGE2D */,
             0, nullptr, &n);
         EXPECT_EQ(0u, n);
         return err;
       }},

      // --- programs ---
      {"clCreateProgramWithSource", "zero strings", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         clCreateProgramWithSource(f.context, 0, nullptr, nullptr, &err);
         return err;
       }},
      {"clCreateProgramWithBinary", "no binary format exists",
       CL_INVALID_BINARY,
       [](Fix& f) {
         const unsigned char blob[] = {0xde, 0xad};
         const unsigned char* blobs[] = {blob};
         size_t lengths[] = {sizeof(blob)};
         cl_int status = CL_SUCCESS;
         cl_int err = CL_SUCCESS;
         clCreateProgramWithBinary(f.context, 1, &f.cpu, lengths, blobs,
                                   &status, &err);
         return err;
       }},
      {"clBuildProgram", "source names an unregistered kernel",
       CL_BUILD_PROGRAM_FAILURE,
       [](Fix& f) {
         const char* src = "__kernel void no_such_kernel(void) { }";
         cl_int err = CL_SUCCESS;
         cl_program p =
             clCreateProgramWithSource(f.context, 1, &src, nullptr, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         cl_int build =
             clBuildProgram(p, 0, nullptr, nullptr, nullptr, nullptr);
         size_t log_size = 0;
         clGetProgramBuildInfo(p, f.cpu, CL_PROGRAM_BUILD_LOG, 0, nullptr,
                               &log_size);
         std::string log(log_size, '\0');
         clGetProgramBuildInfo(p, f.cpu, CL_PROGRAM_BUILD_LOG, log_size,
                               log.data(), nullptr);
         EXPECT_NE(std::string::npos, log.find("no_such_kernel"));
         clReleaseProgram(p);
         return build;
       }},
      {"clBuildProgram", "NULL program", CL_INVALID_PROGRAM,
       [](Fix&) {
         return clBuildProgram(nullptr, 0, nullptr, nullptr, nullptr,
                               nullptr);
       }},
      {"clRetainProgram", "NULL program", CL_INVALID_PROGRAM,
       [](Fix&) { return clRetainProgram(nullptr); }},
      {"clReleaseProgram", "NULL program", CL_INVALID_PROGRAM,
       [](Fix&) { return clReleaseProgram(nullptr); }},
      {"clGetProgramInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetProgramInfo(f.program, 0, sizeof(buf), buf, nullptr);
       }},
      {"clGetProgramBuildInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         char buf[8];
         return clGetProgramBuildInfo(f.program, f.cpu, 0, sizeof(buf), buf,
                                      nullptr);
       }},
      {"clUnloadCompiler", "no compiler exists, still CL_SUCCESS", CL_SUCCESS,
       [](Fix&) { return clUnloadCompiler(); }},
      {"clGetExtensionFunctionAddress", "no extensions exported", CL_SUCCESS,
       [](Fix&) {
         return clGetExtensionFunctionAddress("clIcdGetPlatformIDsKHR") ==
                        nullptr
                    ? CL_SUCCESS
                    : CL_INVALID_VALUE;
       }},

      // --- kernels ---
      {"clCreateKernel", "unbuilt program", CL_INVALID_PROGRAM_EXECUTABLE,
       [](Fix& f) {
         const char* src = "__kernel void square(void) { }";
         cl_int err = CL_SUCCESS;
         cl_program p =
             clCreateProgramWithSource(f.context, 1, &src, nullptr, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         cl_int err2 = CL_SUCCESS;
         clCreateKernel(p, "square", &err2);
         clReleaseProgram(p);
         return err2;
       }},
      {"clCreateKernel", "name not bound by the build",
       CL_INVALID_KERNEL_NAME,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         clCreateKernel(f.program, "not_in_this_program", &err);
         return err;
       }},
      {"clCreateKernelsInProgram", "num_kernels smaller than bound count",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_kernel k;
         cl_uint n = 0;
         return clCreateKernelsInProgram(f.program, 0, &k, &n);
       }},
      {"clSetKernelArg", "argument index out of range", CL_INVALID_ARG_INDEX,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         cl_int err = clSetKernelArg(k, 99, sizeof(cl_mem), &f.buffer);
         clReleaseKernel(k);
         return err;
       }},
      {"clSetKernelArg", "zero size with NULL value", CL_INVALID_ARG_SIZE,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         cl_int err = clSetKernelArg(k, 0, 0, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clRetainKernel", "NULL kernel", CL_INVALID_KERNEL,
       [](Fix&) { return clRetainKernel(nullptr); }},
      {"clReleaseKernel", "NULL kernel", CL_INVALID_KERNEL,
       [](Fix&) { return clReleaseKernel(nullptr); }},
      {"clGetKernelInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         char buf[8];
         cl_int err = clGetKernelInfo(k, 0, sizeof(buf), buf, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clGetKernelWorkGroupInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         char buf[8];
         cl_int err =
             clGetKernelWorkGroupInfo(k, f.cpu, 0, sizeof(buf), buf, nullptr);
         clReleaseKernel(k);
         return err;
       }},

      // --- enqueue: kernels ---
      {"clEnqueueNDRangeKernel", "work_dim out of range",
       CL_INVALID_WORK_DIMENSION,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         size_t global = 16;
         cl_int err = clEnqueueNDRangeKernel(f.queue, k, 0, nullptr, &global,
                                             nullptr, 0, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueNDRangeKernel", "NULL global size",
       CL_INVALID_GLOBAL_WORK_SIZE,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         cl_int err = clEnqueueNDRangeKernel(f.queue, k, 1, nullptr, nullptr,
                                             nullptr, 0, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueNDRangeKernel", "local does not divide global",
       CL_INVALID_WORK_GROUP_SIZE,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         size_t global = 100;
         size_t local = 64;
         cl_int err = clEnqueueNDRangeKernel(f.queue, k, 1, nullptr, &global,
                                             &local, 0, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueNDRangeKernel", "kernel arguments never set",
       CL_INVALID_KERNEL_ARGS,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         size_t global = 16;
         cl_int err = clEnqueueNDRangeKernel(f.queue, k, 1, nullptr, &global,
                                             nullptr, 0, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueNDRangeKernel", "NULL wait list with nonzero count",
       CL_INVALID_EVENT_WAIT_LIST,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         size_t global = 16;
         cl_int err = clEnqueueNDRangeKernel(f.queue, k, 1, nullptr, &global,
                                             nullptr, 1, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueTask", "kernel arguments never set", CL_INVALID_KERNEL_ARGS,
       [](Fix& f) {
         cl_kernel k = f.make_kernel();
         cl_int err = clEnqueueTask(f.queue, k, 0, nullptr, nullptr);
         clReleaseKernel(k);
         return err;
       }},
      {"clEnqueueNativeKernel", "native kernels unsupported",
       CL_INVALID_OPERATION,
       [](Fix& f) {
         return clEnqueueNativeKernel(f.queue, nullptr, nullptr, 0, 0,
                                      nullptr, nullptr, 0, nullptr, nullptr);
       }},

      // --- enqueue: transfers ---
      {"clEnqueueReadBuffer", "NULL destination pointer", CL_INVALID_VALUE,
       [](Fix& f) {
         return clEnqueueReadBuffer(f.queue, f.buffer, CL_TRUE, 0, 64,
                                    nullptr, 0, nullptr, nullptr);
       }},
      {"clEnqueueReadBuffer", "read past the end of the buffer",
       CL_INVALID_VALUE,
       [](Fix& f) {
         char dst[64];
         return clEnqueueReadBuffer(f.queue, f.buffer, CL_TRUE, 1024,
                                    sizeof(dst), dst, 0, nullptr, nullptr);
       }},
      {"clEnqueueWriteBuffer", "zero size", CL_INVALID_VALUE,
       [](Fix& f) {
         char src[4] = {0};
         return clEnqueueWriteBuffer(f.queue, f.buffer, CL_TRUE, 0, 0, src, 0,
                                     nullptr, nullptr);
       }},
      {"clEnqueueReadBufferRect", "NULL host pointer", CL_INVALID_VALUE,
       [](Fix& f) {
         size_t origin[3] = {0, 0, 0};
         size_t region[3] = {4, 4, 1};
         return clEnqueueReadBufferRect(f.queue, f.buffer, CL_TRUE, origin,
                                        origin, region, 0, 0, 0, 0, nullptr,
                                        0, nullptr, nullptr);
       }},
      {"clEnqueueWriteBufferRect", "zero-extent region", CL_INVALID_VALUE,
       [](Fix& f) {
         char host[64] = {0};
         size_t origin[3] = {0, 0, 0};
         size_t region[3] = {0, 4, 1};
         return clEnqueueWriteBufferRect(f.queue, f.buffer, CL_TRUE, origin,
                                         origin, region, 0, 0, 0, 0, host, 0,
                                         nullptr, nullptr);
       }},
      {"clEnqueueCopyBuffer", "overlapping src/dst regions",
       CL_MEM_COPY_OVERLAP,
       [](Fix& f) {
         return clEnqueueCopyBuffer(f.queue, f.buffer, f.buffer, 0, 16, 64, 0,
                                    nullptr, nullptr);
       }},
      {"clEnqueueMapBuffer", "map past the end of the buffer",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         void* p = clEnqueueMapBuffer(f.queue, f.buffer, CL_TRUE, CL_MAP_READ,
                                      1000, 256, 0, nullptr, nullptr, &err);
         EXPECT_EQ(nullptr, p);
         return err;
       }},
      {"clEnqueueUnmapMemObject", "pointer was never mapped",
       CL_INVALID_VALUE,
       [](Fix& f) {
         char not_mapped;
         return clEnqueueUnmapMemObject(f.queue, f.buffer, &not_mapped, 0,
                                        nullptr, nullptr);
       }},

      // --- enqueue: sync primitives ---
      {"clEnqueueMarker", "NULL event out-pointer", CL_INVALID_VALUE,
       [](Fix& f) { return clEnqueueMarker(f.queue, nullptr); }},
      {"clEnqueueWaitForEvents", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) {
         return clEnqueueWaitForEvents(nullptr, 0, nullptr);
       }},
      {"clEnqueueBarrier", "NULL queue", CL_INVALID_COMMAND_QUEUE,
       [](Fix&) { return clEnqueueBarrier(nullptr); }},

      // --- events ---
      {"clWaitForEvents", "zero events", CL_INVALID_VALUE,
       [](Fix&) { return clWaitForEvents(0, nullptr); }},
      {"clWaitForEvents", "waiting on a failed user event",
       CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(f.context, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         EXPECT_EQ(CL_SUCCESS, clSetUserEventStatus(ev, -5));
         cl_int wait = clWaitForEvents(1, &ev);
         clReleaseEvent(ev);
         return wait;
       }},
      {"clCreateUserEvent", "NULL context", CL_INVALID_CONTEXT,
       [](Fix&) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(nullptr, &err);
         EXPECT_EQ(nullptr, ev);
         return err;
       }},
      {"clSetUserEventStatus", "positive execution status",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(f.context, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         cl_int set = clSetUserEventStatus(ev, 3);
         clSetUserEventStatus(ev, CL_COMPLETE);  // unblock before release
         clReleaseEvent(ev);
         return set;
       }},
      {"clSetEventCallback", "only CL_COMPLETE callbacks supported",
       CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(f.context, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         cl_int set = clSetEventCallback(
             ev, CL_SUBMITTED,
             [](cl_event, cl_int, void*) {}, nullptr);
         clSetUserEventStatus(ev, CL_COMPLETE);
         clReleaseEvent(ev);
         return set;
       }},
      {"clGetEventInfo", "unknown param_name", CL_INVALID_VALUE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(f.context, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         char buf[8];
         cl_int got = clGetEventInfo(ev, 0, sizeof(buf), buf, nullptr);
         clSetUserEventStatus(ev, CL_COMPLETE);
         clReleaseEvent(ev);
         return got;
       }},
      {"clGetEventProfilingInfo", "user events carry no profiling info",
       CL_PROFILING_INFO_NOT_AVAILABLE,
       [](Fix& f) {
         cl_int err = CL_SUCCESS;
         cl_event ev = clCreateUserEvent(f.context, &err);
         EXPECT_EQ(CL_SUCCESS, err);
         clSetUserEventStatus(ev, CL_COMPLETE);
         cl_ulong t = 0;
         cl_int got = clGetEventProfilingInfo(
             ev, CL_PROFILING_COMMAND_START, sizeof(t), &t, nullptr);
         clReleaseEvent(ev);
         return got;
       }},
      {"clRetainEvent", "NULL event", CL_INVALID_EVENT,
       [](Fix&) { return clRetainEvent(nullptr); }},
      {"clReleaseEvent", "NULL event", CL_INVALID_EVENT,
       [](Fix&) { return clReleaseEvent(nullptr); }},
  };
  return kCases;
}

// ---------------------------------------------------------------------------
// The matrix proper.

TEST(ClErrorMatrix, SpecMandatedCodes) {
  Fix& f = Fix::get();
  for (const MatrixCase& c : matrix()) {
    EXPECT_EQ(c.want, c.run(f)) << c.entry << ": " << c.what;
  }
}

// ---------------------------------------------------------------------------
// Drift guards.

std::set<std::string> header_entry_points() {
  std::ifstream in(MCL_CL_HEADER);
  EXPECT_TRUE(in.is_open()) << "cannot open " << MCL_CL_HEADER;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  // Strip comments so prose mentioning entry points does not count.
  text = std::regex_replace(text, std::regex(R"(/\*[^*]*\*+(?:[^/*][^*]*\*+)*/)"), " ");
  text = std::regex_replace(text, std::regex(R"(//[^\n]*)"), " ");
  std::set<std::string> names;
  std::regex decl(R"((cl[A-Z][A-Za-z0-9]*)\s*\()");
  for (std::sregex_iterator it(text.begin(), text.end(), decl), end;
       it != end; ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

TEST(ClSurfaceDrift, HeaderMatchesSurfaceTable) {
  std::set<std::string> declared = header_entry_points();
  ASSERT_FALSE(declared.empty());
  std::set<std::string> expected;
  for (const ClSurfaceEntry& e : cl_surface()) {
    if (e.status != ClSurfaceStatus::Unsupported) expected.insert(e.name);
  }
  for (const std::string& name : declared) {
    EXPECT_TRUE(expected.count(name))
        << name << " is declared in CL/cl.h but has no surface-table row";
  }
  for (const std::string& name : expected) {
    EXPECT_TRUE(declared.count(name))
        << name << " is in the surface table but not declared in CL/cl.h";
  }
  // Unsupported rows must NOT be declared.
  for (const ClSurfaceEntry& e : cl_surface()) {
    if (e.status == ClSurfaceStatus::Unsupported) {
      EXPECT_FALSE(declared.count(e.name))
          << e.name << " is marked Unsupported but declared in CL/cl.h";
    }
  }
}

TEST(ClSurfaceDrift, TableSortedByName) {
  auto table = cl_surface();
  for (size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(std::strcmp(table[i - 1].name, table[i].name), 0)
        << "surface table out of order at " << table[i].name;
  }
}

TEST(ClSurfaceDrift, ImplementedRowsNameCoveringTests) {
  for (const ClSurfaceEntry& e : cl_surface()) {
    if (e.status == ClSurfaceStatus::Implemented) {
      EXPECT_NE(std::string_view(e.tests), "")
          << e.name << " is Implemented but lists no covering test";
    } else {
      // Unsupported rows have no tests to run.
      if (e.status == ClSurfaceStatus::Unsupported) {
        EXPECT_EQ(std::string_view(e.tests), "") << e.name;
      }
    }
  }
}

TEST(ClSurfaceDrift, MatrixCoversSurface) {
  std::set<std::string> covered;
  for (const MatrixCase& c : matrix()) covered.insert(c.entry);
  for (const ClSurfaceEntry& e : cl_surface()) {
    if (e.status == ClSurfaceStatus::Unsupported) continue;
    if (std::string(e.tests).find("cl_errors_test") != std::string::npos) {
      EXPECT_TRUE(covered.count(e.name))
          << e.name << " lists cl_errors_test as coverage but has no case "
          << "in the matrix";
    }
  }
  // And the reverse: matrix entries must be real surface rows.
  for (const std::string& name : covered) {
    EXPECT_NE(nullptr, mcl::ocl::cl_surface_find(name.c_str()))
        << name << " appears in the matrix but not in the surface table";
  }
}

TEST(ClSurfaceDrift, LookupFindsEveryRow) {
  for (const ClSurfaceEntry& e : cl_surface()) {
    EXPECT_EQ(&e, mcl::ocl::cl_surface_find(e.name));
  }
  EXPECT_EQ(nullptr, mcl::ocl::cl_surface_find("clNoSuchEntryPoint"));
  EXPECT_EQ(nullptr, mcl::ocl::cl_surface_find(nullptr));
}

// The numeric expectations used by the matrix must agree with the shared
// Status -> CL mapping the shim itself uses.
TEST(ClSurfaceDrift, MatrixAgreesWithStatusMapping) {
  EXPECT_EQ(CL_SUCCESS, status_to_cl_code(Status::Success));
  EXPECT_EQ(CL_INVALID_VALUE, status_to_cl_code(Status::InvalidValue));
  EXPECT_EQ(CL_INVALID_BUFFER_SIZE,
            status_to_cl_code(Status::InvalidBufferSize));
  EXPECT_EQ(CL_INVALID_VALUE, status_to_cl_code(Status::InvalidMemFlags));
  EXPECT_EQ(CL_INVALID_KERNEL_ARGS,
            status_to_cl_code(Status::InvalidKernelArgs));
  EXPECT_EQ(CL_INVALID_WORK_GROUP_SIZE,
            status_to_cl_code(Status::InvalidWorkGroupSize));
  EXPECT_EQ(CL_INVALID_GLOBAL_WORK_SIZE,
            status_to_cl_code(Status::InvalidGlobalWorkSize));
  EXPECT_EQ(CL_INVALID_KERNEL_NAME,
            status_to_cl_code(Status::InvalidKernelName));
  EXPECT_EQ(CL_INVALID_OPERATION, status_to_cl_code(Status::InvalidOperation));
  EXPECT_EQ(CL_INVALID_OPERATION, status_to_cl_code(Status::InvalidLaunch));
  EXPECT_EQ(CL_MAP_FAILURE, status_to_cl_code(Status::MapFailure));
  EXPECT_EQ(CL_MEM_OBJECT_ALLOCATION_FAILURE,
            status_to_cl_code(Status::OutOfResources));
  EXPECT_EQ(CL_DEVICE_NOT_FOUND, status_to_cl_code(Status::DeviceNotFound));
  EXPECT_EQ(CL_BUILD_PROGRAM_FAILURE,
            status_to_cl_code(Status::BuildProgramFailure));
}

}  // namespace
