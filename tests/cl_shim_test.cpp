// CL shim integration tests (positive paths; the negative matrix lives in
// cl_errors_test.cpp).
//
// The headline test is the PR's acceptance scenario: one cl_context holding
// the CPU root device, two CPU sub-devices and the simulated GPU, executing
// the same kernel on each through clEnqueueNDRangeKernel, with event
// profiling timestamps consistent with the shared steady epoch.
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <CL/cl.h>

namespace {

struct Base {
  cl_platform_id platform = nullptr;
  cl_device_id cpu = nullptr;
  cl_device_id gpu = nullptr;

  static Base& get() {
    static Base b = [] {
      Base x;
      EXPECT_EQ(CL_SUCCESS, clGetPlatformIDs(1, &x.platform, nullptr));
      EXPECT_EQ(CL_SUCCESS, clGetDeviceIDs(x.platform, CL_DEVICE_TYPE_CPU, 1,
                                           &x.cpu, nullptr));
      EXPECT_EQ(CL_SUCCESS, clGetDeviceIDs(x.platform, CL_DEVICE_TYPE_GPU, 1,
                                           &x.gpu, nullptr));
      return x;
    }();
    return b;
  }
};

const char* kSquareSrc =
    "__kernel void square(__global const float* in, __global float* out) {\n"
    "  out[get_global_id(0)] = in[get_global_id(0)] * in[get_global_id(0)];\n"
    "}\n";

cl_program build_square(cl_context context) {
  cl_int err = CL_SUCCESS;
  cl_program p =
      clCreateProgramWithSource(context, 1, &kSquareSrc, nullptr, &err);
  EXPECT_EQ(CL_SUCCESS, err);
  EXPECT_EQ(CL_SUCCESS,
            clBuildProgram(p, 0, nullptr, nullptr, nullptr, nullptr));
  return p;
}

// ---------------------------------------------------------------------------
// Acceptance: CPU root + two sub-devices + gpusim under ONE context, the
// same kernel running on each device's queue.

TEST(ClShimMultiDevice, SameKernelOnRootSubDevicesAndGpu) {
  Base& b = Base::get();
  cl_uint units = 0;
  ASSERT_EQ(CL_SUCCESS,
            clGetDeviceInfo(b.cpu, CL_DEVICE_MAX_COMPUTE_UNITS, sizeof(units),
                            &units, nullptr));
  if (units < 4) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";

  cl_device_partition_property props[] = {CL_DEVICE_PARTITION_EQUALLY,
                                          static_cast<cl_device_partition_property>(units / 2),
                                          0};
  cl_device_id subs[2];
  cl_uint num_subs = 0;
  ASSERT_EQ(CL_SUCCESS, clCreateSubDevices(b.cpu, props, 2, subs, &num_subs));
  ASSERT_GE(num_subs, 2u);

  cl_device_id devices[4] = {b.cpu, subs[0], subs[1], b.gpu};
  cl_int err = CL_SUCCESS;
  cl_context context =
      clCreateContext(nullptr, 4, devices, nullptr, nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);

  // Sub-devices report their parent and partition type through the shim.
  cl_device_id parent = nullptr;
  ASSERT_EQ(CL_SUCCESS,
            clGetDeviceInfo(subs[0], CL_DEVICE_PARENT_DEVICE, sizeof(parent),
                            &parent, nullptr));
  EXPECT_EQ(b.cpu, parent);
  cl_uint sub_units = 0;
  ASSERT_EQ(CL_SUCCESS,
            clGetDeviceInfo(subs[0], CL_DEVICE_MAX_COMPUTE_UNITS,
                            sizeof(sub_units), &sub_units, nullptr));
  EXPECT_EQ(units / 2, sub_units);

  cl_program program = build_square(context);
  cl_kernel kernel = clCreateKernel(program, "square", &err);
  ASSERT_EQ(CL_SUCCESS, err);

  constexpr size_t kN = 4096;
  std::vector<float> in(kN);
  for (size_t i = 0; i < kN; ++i) in[i] = static_cast<float>(i % 128);
  std::vector<float> out(kN);

  cl_mem in_buf =
      clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                     kN * sizeof(float), in.data(), &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_mem out_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                  kN * sizeof(float), nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS, clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf));
  ASSERT_EQ(CL_SUCCESS, clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_buf));

  // Sequential launches, one per device: every event must satisfy
  // QUEUED <= SUBMIT <= START <= END within itself, and because launch i+1
  // is enqueued only after launch i finished, the shared steady epoch makes
  // END[i] <= START[i+1] hold ACROSS devices (root, shards, simulated GPU).
  cl_ulong prev_end = 0;
  for (int d = 0; d < 4; ++d) {
    cl_command_queue queue = clCreateCommandQueue(
        context, devices[d], CL_QUEUE_PROFILING_ENABLE, &err);
    ASSERT_EQ(CL_SUCCESS, err) << "device " << d;

    std::memset(out.data(), 0, kN * sizeof(float));
    ASSERT_EQ(CL_SUCCESS,
              clEnqueueWriteBuffer(queue, out_buf, CL_TRUE, 0,
                                   kN * sizeof(float), out.data(), 0, nullptr,
                                   nullptr));
    size_t global = kN;
    cl_event ev;
    ASSERT_EQ(CL_SUCCESS,
              clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                     nullptr, 0, nullptr, &ev))
        << "device " << d;
    ASSERT_EQ(CL_SUCCESS,
              clEnqueueReadBuffer(queue, out_buf, CL_TRUE, 0,
                                  kN * sizeof(float), out.data(), 1, &ev,
                                  nullptr));
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(in[i] * in[i], out[i]) << "device " << d << " item " << i;
    }

    cl_ulong queued = 0, submit = 0, start = 0, end = 0;
    ASSERT_EQ(CL_SUCCESS,
              clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_QUEUED,
                                      sizeof(queued), &queued, nullptr));
    ASSERT_EQ(CL_SUCCESS,
              clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_SUBMIT,
                                      sizeof(submit), &submit, nullptr));
    ASSERT_EQ(CL_SUCCESS,
              clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START,
                                      sizeof(start), &start, nullptr));
    ASSERT_EQ(CL_SUCCESS,
              clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_END,
                                      sizeof(end), &end, nullptr));
    EXPECT_GT(queued, 0u) << "device " << d;
    EXPECT_LE(queued, submit) << "device " << d;
    EXPECT_LE(submit, start) << "device " << d;
    EXPECT_LE(start, end) << "device " << d;
    EXPECT_LE(prev_end, start)
        << "cross-device epoch violation at device " << d;
    prev_end = end;

    clReleaseEvent(ev);
    ASSERT_EQ(CL_SUCCESS, clReleaseCommandQueue(queue));
  }

  clReleaseMemObject(in_buf);
  clReleaseMemObject(out_buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  ASSERT_EQ(CL_SUCCESS, clReleaseContext(context));
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(CL_SUCCESS, clReleaseDevice(subs[i]));
  }
}

// ---------------------------------------------------------------------------
// Smaller positive-path suites.

struct CtxFix {
  cl_context context = nullptr;
  cl_command_queue queue = nullptr;

  static CtxFix create(cl_command_queue_properties props = 0) {
    Base& b = Base::get();
    CtxFix f;
    cl_int err = CL_SUCCESS;
    f.context = clCreateContext(nullptr, 1, &b.cpu, nullptr, nullptr, &err);
    EXPECT_EQ(CL_SUCCESS, err);
    f.queue = clCreateCommandQueue(f.context, b.cpu, props, &err);
    EXPECT_EQ(CL_SUCCESS, err);
    return f;
  }
  void destroy() {
    EXPECT_EQ(CL_SUCCESS, clReleaseCommandQueue(queue));
    EXPECT_EQ(CL_SUCCESS, clReleaseContext(context));
  }
};

TEST(ClShim, ContextFromTypeAllSeesBothDevices) {
  cl_int err = CL_SUCCESS;
  cl_context context = clCreateContextFromType(nullptr, CL_DEVICE_TYPE_ALL,
                                               nullptr, nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_uint n = 0;
  ASSERT_EQ(CL_SUCCESS,
            clGetContextInfo(context, CL_CONTEXT_NUM_DEVICES, sizeof(n), &n,
                             nullptr));
  EXPECT_EQ(2u, n);  // CPU + simulated GPU
  cl_device_id devs[2];
  ASSERT_EQ(CL_SUCCESS, clGetContextInfo(context, CL_CONTEXT_DEVICES,
                                         sizeof(devs), devs, nullptr));
  EXPECT_EQ(CL_SUCCESS, clReleaseContext(context));
}

TEST(ClShim, InfoQueriesRoundTrip) {
  CtxFix f = CtxFix::create();
  Base& b = Base::get();

  // Queue info.
  cl_context qctx = nullptr;
  ASSERT_EQ(CL_SUCCESS,
            clGetCommandQueueInfo(f.queue, CL_QUEUE_CONTEXT, sizeof(qctx),
                                  &qctx, nullptr));
  EXPECT_EQ(f.context, qctx);
  cl_device_id qdev = nullptr;
  ASSERT_EQ(CL_SUCCESS,
            clGetCommandQueueInfo(f.queue, CL_QUEUE_DEVICE, sizeof(qdev),
                                  &qdev, nullptr));
  EXPECT_EQ(b.cpu, qdev);

  // Program / kernel info.
  cl_program program = build_square(f.context);
  size_t src_size = 0;
  ASSERT_EQ(CL_SUCCESS, clGetProgramInfo(program, CL_PROGRAM_SOURCE, 0,
                                         nullptr, &src_size));
  std::string src(src_size, '\0');
  ASSERT_EQ(CL_SUCCESS, clGetProgramInfo(program, CL_PROGRAM_SOURCE, src_size,
                                         src.data(), nullptr));
  EXPECT_NE(std::string::npos, src.find("__kernel void square"));
  cl_build_status status = CL_BUILD_NONE;
  ASSERT_EQ(CL_SUCCESS,
            clGetProgramBuildInfo(program, b.cpu, CL_PROGRAM_BUILD_STATUS,
                                  sizeof(status), &status, nullptr));
  EXPECT_EQ(CL_BUILD_SUCCESS, status);

  cl_int err = CL_SUCCESS;
  cl_kernel kernel = clCreateKernel(program, "square", &err);
  ASSERT_EQ(CL_SUCCESS, err);
  char name[64] = {0};
  ASSERT_EQ(CL_SUCCESS, clGetKernelInfo(kernel, CL_KERNEL_FUNCTION_NAME,
                                        sizeof(name), name, nullptr));
  EXPECT_STREQ("square", name);
  size_t wg = 0;
  ASSERT_EQ(CL_SUCCESS,
            clGetKernelWorkGroupInfo(kernel, b.cpu, CL_KERNEL_WORK_GROUP_SIZE,
                                     sizeof(wg), &wg, nullptr));
  EXPECT_GT(wg, 0u);

  // Mem object info.
  cl_mem buf = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 256, nullptr,
                              &err);
  ASSERT_EQ(CL_SUCCESS, err);
  size_t size = 0;
  ASSERT_EQ(CL_SUCCESS, clGetMemObjectInfo(buf, CL_MEM_SIZE, sizeof(size),
                                           &size, nullptr));
  EXPECT_EQ(256u, size);

  // Retain/release balance on every handle type.
  EXPECT_EQ(CL_SUCCESS, clRetainContext(f.context));
  EXPECT_EQ(CL_SUCCESS, clReleaseContext(f.context));
  EXPECT_EQ(CL_SUCCESS, clRetainCommandQueue(f.queue));
  EXPECT_EQ(CL_SUCCESS, clReleaseCommandQueue(f.queue));
  EXPECT_EQ(CL_SUCCESS, clRetainProgram(program));
  EXPECT_EQ(CL_SUCCESS, clReleaseProgram(program));
  EXPECT_EQ(CL_SUCCESS, clRetainKernel(kernel));
  EXPECT_EQ(CL_SUCCESS, clReleaseKernel(kernel));
  EXPECT_EQ(CL_SUCCESS, clRetainMemObject(buf));
  EXPECT_EQ(CL_SUCCESS, clReleaseMemObject(buf));
  cl_uint refs = 0;
  ASSERT_EQ(CL_SUCCESS,
            clGetMemObjectInfo(buf, CL_MEM_REFERENCE_COUNT, sizeof(refs),
                               &refs, nullptr));
  EXPECT_EQ(1u, refs);

  clReleaseMemObject(buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  f.destroy();
}

TEST(ClShim, CreateKernelsInProgramBindsSourceOrder) {
  CtxFix f = CtxFix::create();
  const char* src =
      "__kernel void vectoradd(__global const float* a, __global const "
      "float* b, __global float* c) { }\n"
      "__kernel void square(__global const float* in, __global float* out) "
      "{ }\n";
  cl_int err = CL_SUCCESS;
  cl_program p = clCreateProgramWithSource(f.context, 1, &src, nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS,
            clBuildProgram(p, 0, nullptr, nullptr, nullptr, nullptr));
  cl_uint n = 0;
  ASSERT_EQ(CL_SUCCESS, clCreateKernelsInProgram(p, 0, nullptr, &n));
  ASSERT_EQ(2u, n);
  cl_kernel kernels[2];
  ASSERT_EQ(CL_SUCCESS, clCreateKernelsInProgram(p, 2, kernels, nullptr));
  char name[64] = {0};
  ASSERT_EQ(CL_SUCCESS, clGetKernelInfo(kernels[0], CL_KERNEL_FUNCTION_NAME,
                                        sizeof(name), name, nullptr));
  EXPECT_STREQ("vectoradd", name);
  ASSERT_EQ(CL_SUCCESS, clGetKernelInfo(kernels[1], CL_KERNEL_FUNCTION_NAME,
                                        sizeof(name), name, nullptr));
  EXPECT_STREQ("square", name);
  clReleaseKernel(kernels[0]);
  clReleaseKernel(kernels[1]);
  clReleaseProgram(p);
  f.destroy();
}

TEST(ClShim, SubBufferSharesParentStorage) {
  CtxFix f = CtxFix::create();
  cl_int err = CL_SUCCESS;
  cl_mem parent = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 1024, nullptr,
                                 &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_buffer_region region{256, 128};
  cl_mem sub = clCreateSubBuffer(parent, CL_MEM_READ_WRITE,
                                 CL_BUFFER_CREATE_TYPE_REGION, &region, &err);
  ASSERT_EQ(CL_SUCCESS, err);

  size_t offset = 0;
  ASSERT_EQ(CL_SUCCESS, clGetMemObjectInfo(sub, CL_MEM_OFFSET, sizeof(offset),
                                           &offset, nullptr));
  EXPECT_EQ(256u, offset);
  cl_mem reported_parent = nullptr;
  ASSERT_EQ(CL_SUCCESS,
            clGetMemObjectInfo(sub, CL_MEM_ASSOCIATED_MEMOBJECT,
                               sizeof(reported_parent), &reported_parent,
                               nullptr));
  EXPECT_EQ(parent, reported_parent);

  // A write through the sub-buffer lands at parent offset 256.
  std::vector<unsigned char> bytes(128, 0xAB);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueWriteBuffer(f.queue, sub, CL_TRUE, 0, 128, bytes.data(),
                                 0, nullptr, nullptr));
  std::vector<unsigned char> readback(128, 0);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBuffer(f.queue, parent, CL_TRUE, 256, 128,
                                readback.data(), 0, nullptr, nullptr));
  EXPECT_EQ(bytes, readback);

  clReleaseMemObject(sub);
  clReleaseMemObject(parent);
  f.destroy();
}

TEST(ClShim, RectAndCopyTransfers) {
  CtxFix f = CtxFix::create();
  cl_int err = CL_SUCCESS;
  // 8x8 byte grid in a 64-byte buffer.
  cl_mem buf = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 64, nullptr,
                              &err);
  ASSERT_EQ(CL_SUCCESS, err);
  std::vector<unsigned char> zeros(64, 0);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueWriteBuffer(f.queue, buf, CL_TRUE, 0, 64, zeros.data(),
                                 0, nullptr, nullptr));

  // Write a 4x4 block at (2,2) from a host grid with row pitch 8.
  std::vector<unsigned char> host(64);
  for (size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<unsigned char>(i);
  }
  size_t buffer_origin[3] = {2, 2, 0};
  size_t host_origin[3] = {0, 0, 0};
  size_t region[3] = {4, 4, 1};
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueWriteBufferRect(f.queue, buf, CL_TRUE, buffer_origin,
                                     host_origin, region, 8, 0, 8, 0,
                                     host.data(), 0, nullptr, nullptr));

  // Read the same block back through the rect path.
  std::vector<unsigned char> block(64, 0xFF);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBufferRect(f.queue, buf, CL_TRUE, buffer_origin,
                                    host_origin, region, 8, 0, 8, 0,
                                    block.data(), 0, nullptr, nullptr));
  for (size_t row = 0; row < 4; ++row) {
    for (size_t col = 0; col < 4; ++col) {
      EXPECT_EQ(host[row * 8 + col], block[row * 8 + col])
          << "(" << row << "," << col << ")";
    }
  }

  // Device-side copy into a second buffer, then verify via plain read.
  cl_mem dst = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 64, nullptr,
                              &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS, clEnqueueCopyBuffer(f.queue, buf, dst, 0, 0, 64, 0,
                                            nullptr, nullptr));
  ASSERT_EQ(CL_SUCCESS, clFinish(f.queue));
  std::vector<unsigned char> copied(64, 0);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBuffer(f.queue, dst, CL_TRUE, 0, 64, copied.data(),
                                0, nullptr, nullptr));
  std::vector<unsigned char> direct(64, 0);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBuffer(f.queue, buf, CL_TRUE, 0, 64, direct.data(),
                                0, nullptr, nullptr));
  EXPECT_EQ(direct, copied);

  clReleaseMemObject(buf);
  clReleaseMemObject(dst);
  f.destroy();
}

TEST(ClShim, UserEventGatesDownstreamWork) {
  CtxFix f = CtxFix::create(CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE);
  cl_int err = CL_SUCCESS;
  cl_mem buf = clCreateBuffer(f.context, CL_MEM_READ_WRITE, 64, nullptr,
                              &err);
  ASSERT_EQ(CL_SUCCESS, err);

  cl_event gate = clCreateUserEvent(f.context, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_int gate_status = CL_QUEUED;
  ASSERT_EQ(CL_SUCCESS,
            clGetEventInfo(gate, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(gate_status), &gate_status, nullptr));
  EXPECT_EQ(CL_SUBMITTED, gate_status);

  std::vector<unsigned char> bytes(64, 0x5A);
  cl_event write_ev;
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueWriteBuffer(f.queue, buf, CL_FALSE, 0, 64, bytes.data(),
                                 1, &gate, &write_ev));

  std::atomic<int> callback_fired{0};
  ASSERT_EQ(CL_SUCCESS,
            clSetEventCallback(
                write_ev, CL_COMPLETE,
                [](cl_event, cl_int, void* user) {
                  static_cast<std::atomic<int>*>(user)->fetch_add(1);
                },
                &callback_fired));

  // Not complete while the gate is open.
  cl_int st = CL_COMPLETE;
  ASSERT_EQ(CL_SUCCESS,
            clGetEventInfo(write_ev, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(st), &st, nullptr));
  EXPECT_NE(CL_COMPLETE, st);
  EXPECT_EQ(0, callback_fired.load());

  ASSERT_EQ(CL_SUCCESS, clSetUserEventStatus(gate, CL_COMPLETE));
  ASSERT_EQ(CL_SUCCESS, clWaitForEvents(1, &write_ev));
  ASSERT_EQ(CL_SUCCESS,
            clGetEventInfo(write_ev, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(st), &st, nullptr));
  EXPECT_EQ(CL_COMPLETE, st);
  // The spec only orders the callback after the status transition, not
  // before clWaitForEvents returns — it may still be in flight on the
  // dispatch thread, so poll with a deadline instead of asserting at once.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (callback_fired.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(1, callback_fired.load());

  std::vector<unsigned char> readback(64, 0);
  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBuffer(f.queue, buf, CL_TRUE, 0, 64, readback.data(),
                                0, nullptr, nullptr));
  EXPECT_EQ(bytes, readback);

  clReleaseEvent(gate);
  clReleaseEvent(write_ev);
  clReleaseMemObject(buf);
  f.destroy();
}

TEST(ClShim, TaskMarkerBarrierFlush) {
  CtxFix f = CtxFix::create();
  cl_program program = build_square(f.context);
  cl_int err = CL_SUCCESS;
  cl_kernel kernel = clCreateKernel(program, "square", &err);
  ASSERT_EQ(CL_SUCCESS, err);

  float in = 7.0f, out = 0.0f;
  cl_mem in_buf =
      clCreateBuffer(f.context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                     sizeof(float), &in, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_mem out_buf = clCreateBuffer(f.context, CL_MEM_WRITE_ONLY, sizeof(float),
                                  nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS, clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf));
  ASSERT_EQ(CL_SUCCESS, clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_buf));

  cl_event task_ev;
  ASSERT_EQ(CL_SUCCESS, clEnqueueTask(f.queue, kernel, 0, nullptr, &task_ev));
  cl_command_type type = 0;
  ASSERT_EQ(CL_SUCCESS, clGetEventInfo(task_ev, CL_EVENT_COMMAND_TYPE,
                                       sizeof(type), &type, nullptr));
  EXPECT_EQ(static_cast<cl_command_type>(CL_COMMAND_TASK), type);

  cl_event marker_ev;
  ASSERT_EQ(CL_SUCCESS, clEnqueueMarker(f.queue, &marker_ev));
  ASSERT_EQ(CL_SUCCESS, clEnqueueWaitForEvents(f.queue, 1, &task_ev));
  ASSERT_EQ(CL_SUCCESS, clEnqueueBarrier(f.queue));
  ASSERT_EQ(CL_SUCCESS, clFlush(f.queue));
  ASSERT_EQ(CL_SUCCESS, clFinish(f.queue));

  ASSERT_EQ(CL_SUCCESS,
            clEnqueueReadBuffer(f.queue, out_buf, CL_TRUE, 0, sizeof(float),
                                &out, 0, nullptr, nullptr));
  EXPECT_EQ(49.0f, out);

  clReleaseEvent(task_ev);
  clReleaseEvent(marker_ev);
  clReleaseMemObject(in_buf);
  clReleaseMemObject(out_buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  f.destroy();
}

}  // namespace
