#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/harness.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/sysinfo.hpp"
#include "core/table.hpp"

namespace mcl::core {
namespace {

// --- error -------------------------------------------------------------------

TEST(Error, CarriesStatusAndMessage) {
  try {
    check(false, Status::InvalidBufferSize, "boom");
    FAIL() << "check() should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidBufferSize);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("InvalidBufferSize"),
              std::string::npos);
  }
}

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(check(true, Status::InternalError, "never"));
}

TEST(Error, EveryStatusHasAName) {
  for (int s = 0; s <= static_cast<int>(Status::InternalError); ++s) {
    EXPECT_NE(to_string(static_cast<Status>(s)), "UnknownStatus");
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FloatRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const float f = r.next_float(-3.0f, 5.0f);
    EXPECT_GE(f, -3.0f);
    EXPECT_LT(f, 5.0f);
  }
}

TEST(Rng, NextBelowBound) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, FillUniformDeterministic) {
  std::vector<float> a(64), b(64);
  fill_uniform(a, 5, 1.0f, 2.0f);
  fill_uniform(b, 5, 1.0f, 2.0f);
  EXPECT_EQ(a, b);
  for (float v : a) {
    EXPECT_GE(v, 1.0f);
    EXPECT_LT(v, 2.0f);
  }
}

// --- stats -------------------------------------------------------------------

TEST(Stats, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleSample) {
  const double v[] = {3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stdev, 0.0);
}

TEST(Stats, KnownValues) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stdev, 1.2909944487, 1e-9);
}

TEST(Stats, MedianOddCount) {
  const double v[] = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(summarize(v).median, 5.0);
}

TEST(Stats, RelativeSpread) {
  const double v[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(relative_spread(summarize(v)), 1.0);
  const double one[] = {1.0};
  EXPECT_DOUBLE_EQ(relative_spread(summarize(one)), 0.0);
}

// --- harness -----------------------------------------------------------------

TEST(Harness, RunsAtLeastMinIters) {
  int calls = 0;
  MeasureOptions opts;
  opts.min_time = 0.0;
  opts.min_iters = 5;
  opts.warmup_iters = 2;
  const Measurement m = measure([&] { ++calls; }, opts);
  EXPECT_EQ(m.iterations, 5u);
  EXPECT_EQ(calls, 7);  // warmups + timed
}

TEST(Harness, AccumulatesUntilMinTime) {
  MeasureOptions opts;
  opts.min_time = 0.01;
  opts.min_iters = 1;
  opts.warmup_iters = 0;
  const Measurement m = measure([] {
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }, opts);
  EXPECT_GE(m.total_s, 0.01);
  EXPECT_GT(m.iterations, 1u);
  EXPECT_NEAR(m.per_iter_s * static_cast<double>(m.iterations), m.total_s,
              1e-9);
}

TEST(Harness, MeasureReportedUsesReportedSeconds) {
  MeasureOptions opts;
  opts.min_time = 0.5;  // reported seconds, not wall time
  opts.min_iters = 1;
  opts.warmup_iters = 0;
  const Measurement m = measure_reported([] { return 0.25; }, opts);
  EXPECT_EQ(m.iterations, 2u);
  EXPECT_DOUBLE_EQ(m.per_iter_s, 0.25);
}

TEST(Harness, MaxItersBounds) {
  MeasureOptions opts;
  opts.min_time = 1e9;
  opts.max_iters = 10;
  opts.warmup_iters = 0;
  const Measurement m = measure_reported([] { return 0.0; }, opts);
  EXPECT_EQ(m.iterations, 10u);
}

TEST(Harness, AppThroughputEquation) {
  // Paper Eq. 1: charge transfer time against the kernel's work rate.
  EXPECT_DOUBLE_EQ(app_throughput(100.0, 1.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(app_throughput(100.0, 1.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(app_throughput(100.0, 0.0, 0.0), 0.0);
}

TEST(Harness, NormalizedThroughput) {
  EXPECT_DOUBLE_EQ(normalized_throughput(2.0, 1.0), 2.0);  // 2x faster
  EXPECT_DOUBLE_EQ(normalized_throughput(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(normalized_throughput(1.0, 0.0), 0.0);
}

// --- table -------------------------------------------------------------------

TEST(Table, PrintAlignsAndTitles) {
  Table t("My Table", {"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, RowPaddingToColumnCount) {
  Table t("t", {"a", "b", "c"});
  t.add_row({std::string("x")});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(Table, CsvEscaping) {
  Table t("t", {"col,with comma"});
  t.add_row({std::string("va\"l,ue")});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"col,with comma\""), std::string::npos);
  EXPECT_NE(out.find("\"va\"\"l,ue\""), std::string::npos);
}

TEST(Table, FormatCellNumberPrecision) {
  EXPECT_EQ(Table::format_cell(Cell{1.23456789}, 4), "1.235");
  EXPECT_EQ(Table::format_cell(Cell{std::string("s")}), "s");
}

// --- cli ---------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndValues) {
  Cli cli;
  cli.add_flag("alpha", "help");
  cli.add_flag("beta", "help", "7");
  const char* argv[] = {"prog", "--alpha=3", "pos1"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);  // default
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli;
  cli.add_flag("n", "count");
  const char* argv[] = {"prog", "--n", "42"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n", 0), 42);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW((void)cli.parse(2, argv), Error);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BenchCliDefaults) {
  Cli cli = make_bench_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  const MeasureOptions opts = measure_options_from(cli);
  EXPECT_DOUBLE_EQ(opts.min_time, 0.2);
}

TEST(Cli, QuickModeShrinksMeasurement) {
  Cli cli = make_bench_cli();
  const char* argv[] = {"prog", "--quick"};
  ASSERT_TRUE(cli.parse(2, argv));
  const MeasureOptions opts = measure_options_from(cli);
  EXPECT_LT(opts.min_time, 0.2);
}

// --- sysinfo -----------------------------------------------------------------

TEST(SysInfo, ProbeReturnsSaneValues) {
  const HostInfo info = probe_host();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GE(info.simd_float_lanes, 1);
  EXPECT_FALSE(info.simd_isa.empty());
  EXPECT_FALSE(info.compiler.empty());
}

TEST(SysInfo, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "n/a");
  EXPECT_EQ(format_bytes(32 * 1024), "32K");
  EXPECT_EQ(format_bytes(12 * 1024 * 1024), "12M");
  EXPECT_EQ(format_bytes(100), "100B");
}

}  // namespace
}  // namespace mcl::core

// --- JSON reporter -----------------------------------------------------------------

namespace mcl::core {
namespace {

TEST(TableJson, WellFormedOutput) {
  Table t("Fig X", {"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), 0.25});
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"title\":\"Fig X\""), 0u);
  EXPECT_NE(out.find("\"columns\":[\"name\",\"value\"]"), std::string::npos);
  EXPECT_NE(out.find("[\"alpha\",1.5]"), std::string::npos);
  EXPECT_NE(out.find("[\"beta\",0.25]"), std::string::npos);
}

TEST(TableJson, EscapesSpecialCharacters) {
  Table t("ti\"tle", {"col\\umn"});
  t.add_row({std::string("line\nbreak\ttab")});
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ti\\\"tle"), std::string::npos);
  EXPECT_NE(out.find("col\\\\umn"), std::string::npos);
  EXPECT_NE(out.find("line\\nbreak\\ttab"), std::string::npos);
}

TEST(TableJson, NonFiniteBecomesNull) {
  Table t("t", {"v"});
  t.add_row({std::numeric_limits<double>::infinity()});
  t.add_row({std::numeric_limits<double>::quiet_NaN()});
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("[null],[null]"), std::string::npos);
}

TEST(TableJson, EmptyTable) {
  Table t("empty", {"a"});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_NE(os.str().find("\"rows\":[]"), std::string::npos);
}

}  // namespace
}  // namespace mcl::core

// --- Markdown reporter ---------------------------------------------------------------

namespace mcl::core {
namespace {

TEST(TableMarkdown, RendersPipeTable) {
  Table t("Fig X", {"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  std::ostringstream os;
  t.write_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("### Fig X"), std::string::npos);
  EXPECT_NE(out.find("| name | value |"), std::string::npos);
  EXPECT_NE(out.find("|---|---|"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.5 |"), std::string::npos);
}

TEST(TableMarkdown, EscapesPipes) {
  Table t("a|b", {"c|d"});
  t.add_row({std::string("e|f")});
  std::ostringstream os;
  t.write_markdown(os);
  EXPECT_NE(os.str().find("a\\|b"), std::string::npos);
  EXPECT_NE(os.str().find("e\\|f"), std::string::npos);
}

}  // namespace
}  // namespace mcl::core
