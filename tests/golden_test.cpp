// Golden-file tests for the paper kernels on the serial oracle device.
//
// Each kernel from the paper's suite (blackscholes, matrixmul, reduction,
// spmv, transpose) runs single-threaded with an identity workgroup dispatch
// order — the same "one workitem at a time, in order" execution model the
// mclcheck reference interpreter uses — and its output is digested
// (count / sum / min / max / first four elements, %.9g). Digests are
// compared against tests/golden/oracle.golden with 1e-5 relative
// tolerance, so a silent numeric regression in a kernel body, the
// executor, or the host data generators shows up as a diff against a
// committed artifact.
//
// Regenerate after an intentional change with:
//   MCL_UPDATE_GOLDEN=1 ./build/tests/golden_test
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "apps/blackscholes.hpp"
#include "apps/hostdata.hpp"
#include "apps/matrixmul.hpp"
#include "apps/reduction.hpp"
#include "apps/spmv.hpp"
#include "apps/transpose.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

#ifndef MCL_GOLDEN_DIR
#define MCL_GOLDEN_DIR "tests/golden"
#endif

namespace mcl::apps {
namespace {

using ocl::Buffer;
using ocl::CommandQueue;
using ocl::Context;
using ocl::CpuDevice;
using ocl::CpuDeviceConfig;
using ocl::Kernel;
using ocl::MemFlags;
using ocl::NDRange;
using ocl::Program;

// Golden inputs use fixed seeds on purpose: the digests must not move with
// MCL_TEST_SEED, or the committed file would only be valid for one seed.

std::string format_digest(const std::string& name,
                          std::span<const float> data) {
  double sum = 0.0;
  float lo = data.empty() ? 0.0f : data[0];
  float hi = lo;
  for (const float v : data) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s count=%zu sum=%.9g min=%.9g max=%.9g",
                name.c_str(), data.size(), sum, lo, hi);
  std::string line = buf;
  line += " first=";
  for (std::size_t i = 0; i < 4; ++i) {
    const float v = i < data.size() ? data[i] : 0.0f;
    std::snprintf(buf, sizeof buf, "%s%.9g", i == 0 ? "" : ",", v);
    line += buf;
  }
  return line;
}

/// Splits "name k=v k=v first=a,b,c,d" into the name and the numeric fields.
bool parse_digest(const std::string& line, std::string& name,
                  std::vector<double>& fields) {
  std::istringstream in(line);
  if (!(in >> name)) return false;
  fields.clear();
  for (std::string tok; in >> tok;) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) return false;
    std::istringstream vals(tok.substr(eq + 1));
    for (std::string v; std::getline(vals, v, ',');) {
      fields.push_back(std::strtod(v.c_str(), nullptr));
    }
  }
  return true;
}

bool fields_close(double a, double b) {
  const double tol = 1e-5 * std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol;
}

/// The oracle device: one thread, workgroups dispatched in identity order
/// through the deterministic dispatch hook.
CpuDeviceConfig oracle_config() {
  CpuDeviceConfig cfg;
  cfg.threads = 1;
  cfg.dispatch_order = [](std::size_t index, std::size_t) { return index; };
  return cfg;
}

Buffer make_in(Context& ctx, std::span<const float> data) {
  return ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                           data.size() * 4,
                           const_cast<float*>(data.data()));
}
Buffer make_in_u(Context& ctx, std::span<const unsigned> data) {
  return ctx.create_buffer(MemFlags::ReadOnly | MemFlags::CopyHostPtr,
                           data.size() * 4,
                           const_cast<unsigned*>(data.data()));
}
Buffer make_out(Context& ctx, std::size_t n) {
  return ctx.create_buffer(MemFlags::ReadWrite, n * 4);
}

/// Runs every paper kernel on the oracle device; returns name -> digest
/// line, cross-checking each output against its serial reference as it goes.
std::vector<std::string> compute_digests() {
  CpuDevice device(oracle_config());
  Context ctx(device);
  CommandQueue q(ctx);
  std::vector<std::string> lines;

  {  // blackscholes
    const std::size_t n = 256;
    const FloatVec s = random_floats(n, 1001, 5.0f, 30.0f);
    const FloatVec x = random_floats(n, 1002, 1.0f, 100.0f);
    const FloatVec t = random_floats(n, 1003, 0.25f, 10.0f);
    const float r = 0.02f, v = 0.30f;
    Buffer bs = make_in(ctx, s), bx = make_in(ctx, x), bt = make_in(ctx, t);
    Buffer bc = make_out(ctx, n), bp = make_out(ctx, n);
    Kernel k = ctx.create_kernel(Program::builtin(), kBlackScholesKernel);
    k.set_arg(0, bs);
    k.set_arg(1, bx);
    k.set_arg(2, bt);
    k.set_arg(3, bc);
    k.set_arg(4, bp);
    k.set_arg(5, r);
    k.set_arg(6, v);
    (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{16});
    FloatVec ecall(n), eput(n);
    blackscholes_reference(s, x, t, ecall, eput, r, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(bc.as<float>()[i], ecall[i], 2e-4) << "blackscholes " << i;
      EXPECT_NEAR(bp.as<float>()[i], eput[i], 2e-4) << "blackscholes " << i;
    }
    lines.push_back(format_digest("blackscholes.call", {bc.as<float>(), n}));
    lines.push_back(format_digest("blackscholes.put", {bp.as<float>(), n}));
  }

  {  // matrixmul: tiled (workgroup form) and naive
    const std::size_t m = 32, n = 32, kk = 32, tile = 8;
    const FloatVec a = random_floats(m * kk, 1010, -1.0f, 1.0f);
    const FloatVec b = random_floats(kk * n, 1011, -1.0f, 1.0f);
    FloatVec expect(m * n);
    matmul_reference(a, b, expect, m, n, kk);
    const auto run = [&](const char* kernel_name, bool tiled) {
      Buffer ba = make_in(ctx, a), bb = make_in(ctx, b);
      Buffer bc = make_out(ctx, m * n);
      Kernel kr = ctx.create_kernel(Program::builtin(), kernel_name);
      kr.set_arg(0, ba);
      kr.set_arg(1, bb);
      kr.set_arg(2, bc);
      kr.set_arg(3, static_cast<unsigned>(m));
      kr.set_arg(4, static_cast<unsigned>(n));
      kr.set_arg(5, static_cast<unsigned>(kk));
      if (tiled) {
        kr.set_arg_local(6, tile * tile * 4);
        kr.set_arg_local(7, tile * tile * 4);
        kr.set_arg_local(8, tile * tile * 4);
      }
      const NDRange local = tiled ? NDRange(tile, tile) : NDRange{};
      (void)q.enqueue_ndrange(kr, NDRange(n, m), local);
      for (std::size_t i = 0; i < m * n; ++i) {
        EXPECT_NEAR(bc.as<float>()[i], expect[i], 1e-3) << kernel_name << i;
      }
      lines.push_back(format_digest(kernel_name, {bc.as<float>(), m * n}));
    };
    run(kMatrixMulKernel, true);
    run(kMatrixMulNaiveKernel, false);
  }

  {  // reduction (per-group partials)
    const std::size_t local = 64, n = local * 32;
    const FloatVec in = random_floats(n, 1020, 0.0f, 1.0f);
    Buffer bin = make_in(ctx, in);
    Buffer bpart = make_out(ctx, n / local);
    Kernel k = ctx.create_kernel(Program::builtin(), kReduceKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bpart);
    k.set_arg_local(2, local * 4);
    (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{local});
    double total = 0.0;
    for (std::size_t g = 0; g < n / local; ++g) total += bpart.as<float>()[g];
    EXPECT_NEAR(total, reduce_reference(in), n * 1e-5);
    lines.push_back(format_digest("reduce.partials",
                                  {bpart.as<float>(), n / local}));
  }

  {  // spmv (CSR gather)
    const std::size_t rows = 128;
    const CsrMatrix m = make_random_csr(rows, rows, 6, 2025);
    const FloatVec x = random_floats(rows, 1030, -1.0f, 1.0f);
    Buffer bval = make_in(ctx, m.values);
    Buffer bcol = make_in_u(ctx, m.col_idx);
    Buffer brow = make_in_u(ctx, m.row_ptr);
    Buffer bx = make_in(ctx, x);
    Buffer by = make_out(ctx, rows);
    Kernel k = ctx.create_kernel(Program::builtin(), kSpmvKernel);
    k.set_arg(0, bval);
    k.set_arg(1, bcol);
    k.set_arg(2, brow);
    k.set_arg(3, bx);
    k.set_arg(4, by);
    (void)q.enqueue_ndrange(k, NDRange{rows}, NDRange{32});
    FloatVec expect(rows);
    spmv_reference(m, x, expect);
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_NEAR(by.as<float>()[i], expect[i], 1e-4) << "spmv " << i;
    }
    lines.push_back(format_digest("spmv_csr", {by.as<float>(), rows}));
  }

  {  // transpose (naive, strided writes)
    const std::size_t w = 32, h = 16;
    const FloatVec in = random_floats(w * h, 1040, -4.0f, 4.0f);
    Buffer bin = make_in(ctx, in);
    Buffer bout = make_out(ctx, w * h);
    Kernel k = ctx.create_kernel(Program::builtin(), kTransposeNaiveKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    k.set_arg(2, static_cast<unsigned>(w));
    k.set_arg(3, static_cast<unsigned>(h));
    (void)q.enqueue_ndrange(k, NDRange(w, h), NDRange(8, 8));
    FloatVec expect(w * h);
    transpose_reference(in, expect, w, h);
    for (std::size_t i = 0; i < w * h; ++i) {
      EXPECT_EQ(bout.as<float>()[i], expect[i]) << "transpose " << i;
    }
    lines.push_back(format_digest("transpose_naive", {bout.as<float>(), w * h}));
  }

  return lines;
}

TEST(GoldenOracle, PaperKernelDigestsMatchGoldenFile) {
  const std::vector<std::string> lines = compute_digests();
  const std::string path = std::string(MCL_GOLDEN_DIR) + "/oracle.golden";

  if (std::getenv("MCL_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# Paper-kernel digests from the serial oracle device.\n"
        << "# Regenerate: MCL_UPDATE_GOLDEN=1 ./build/tests/golden_test\n";
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing " << path
      << " — generate it with MCL_UPDATE_GOLDEN=1 ./build/tests/golden_test";
  std::map<std::string, std::vector<double>> golden;
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] == '#') continue;
    std::string name;
    std::vector<double> fields;
    ASSERT_TRUE(parse_digest(line, name, fields)) << "bad line: " << line;
    golden[name] = std::move(fields);
  }

  for (const std::string& line : lines) {
    std::string name;
    std::vector<double> fields;
    ASSERT_TRUE(parse_digest(line, name, fields));
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "no golden entry for '" << name << "'";
    ASSERT_EQ(it->second.size(), fields.size()) << name;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      EXPECT_TRUE(fields_close(fields[i], it->second[i]))
          << name << " field " << i << ": got " << fields[i] << ", golden "
          << it->second[i] << "\n  current: " << line;
    }
    golden.erase(it);
  }
  for (const auto& [name, unused] : golden) {
    ADD_FAILURE() << "golden entry '" << name
                  << "' has no matching kernel digest (stale file?)";
  }
}

}  // namespace
}  // namespace mcl::apps
