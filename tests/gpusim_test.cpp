#include <gtest/gtest.h>

#include "gpusim/gpusim.hpp"

namespace mcl::gpusim {
namespace {

KernelCost compute_kernel(double ilp = 1.0) {
  return KernelCost{.fp_insts = 64,
                    .mem_insts = 0,
                    .other_insts = 8,
                    .flops_per_fp = 2.0,
                    .ilp = ilp};
}

KernelCost memory_kernel() {
  return KernelCost{.fp_insts = 4, .mem_insts = 8, .other_insts = 2};
}

TEST(GpuSpec, Gtx580PeakMatchesTableI) {
  // Paper Table I: 1.56 Tflop/s.
  EXPECT_NEAR(GpuSpec::gtx580().peak_gflops(), 1581.0, 5.0);
}

TEST(Simulate, ZeroItemsZeroTime) {
  const SimResult r = simulate(GpuSpec::gtx580(), compute_kernel(),
                               {.global_items = 0, .local_items = 0});
  EXPECT_EQ(r.seconds, 0.0);
}

TEST(Simulate, TimeScalesWithWork) {
  const GpuSpec spec = GpuSpec::gtx580();
  const auto t1 = simulate(spec, compute_kernel(),
                           {.global_items = 1 << 20, .local_items = 256});
  const auto t4 = simulate(spec, compute_kernel(),
                           {.global_items = 4 << 20, .local_items = 256});
  EXPECT_NEAR(t4.seconds / t1.seconds, 4.0, 0.2);
}

TEST(Simulate, IlpIrrelevantAtHighOccupancy) {
  // Fig 6, GPU series: flat across ILP 1..4 when warps abound.
  const GpuSpec spec = GpuSpec::gtx580();
  const LaunchGeometry geom{.global_items = 1 << 20, .local_items = 256};
  const double t1 = simulate(spec, compute_kernel(1.0), geom).seconds;
  const double t4 = simulate(spec, compute_kernel(4.0), geom).seconds;
  EXPECT_NEAR(t1 / t4, 1.0, 0.05);
}

TEST(Simulate, IlpMattersWhenWarpsAreScarce) {
  const GpuSpec spec = GpuSpec::gtx580();
  // One warp per SM: latency is exposed; ILP should now help.
  const LaunchGeometry geom{.global_items = 16 * 32, .local_items = 32};
  const double t1 = simulate(spec, compute_kernel(1.0), geom).seconds;
  const double t4 = simulate(spec, compute_kernel(4.0), geom).seconds;
  EXPECT_GT(t1 / t4, 1.5);
}

TEST(Simulate, CoalescingWorkitemsCollapsesThroughput) {
  // Fig 1, GPU series: shrinking the NDRange starves the GPU.
  const GpuSpec spec = GpuSpec::gtx580();
  const KernelCost per_item = memory_kernel();
  const auto base = simulate(spec, per_item,
                             {.global_items = 1'000'000, .local_items = 256});
  // 1000x coalescing: each workitem does 1000x the work, 1000x fewer items.
  KernelCost fat = per_item;
  fat.fp_insts *= 1000;
  fat.mem_insts *= 1000;
  fat.other_insts *= 1000;
  const auto coalesced =
      simulate(spec, fat, {.global_items = 1'000, .local_items = 256});
  // Same total work, far less TLP -> much slower.
  EXPECT_GT(coalesced.seconds, 3.0 * base.seconds);
}

TEST(Simulate, SmallWorkgroupsHurt) {
  // Fig 3, GPU series: workgroup size caps resident warps per SM.
  const GpuSpec spec = GpuSpec::gtx580();
  const KernelCost k = memory_kernel();
  const double t_small =
      simulate(spec, k, {.global_items = 1 << 20, .local_items = 1}).seconds;
  const double t_large =
      simulate(spec, k, {.global_items = 1 << 20, .local_items = 256}).seconds;
  EXPECT_GT(t_small / t_large, 4.0);
}

TEST(Simulate, OccupancyRespectsBlockAndWarpLimits) {
  const GpuSpec spec = GpuSpec::gtx580();
  // 32-item blocks: 1 warp each; the 8-block cap binds -> 8 warps.
  auto r = simulate(spec, compute_kernel(),
                    {.global_items = 1 << 20, .local_items = 32});
  EXPECT_EQ(r.resident_blocks, 8);
  EXPECT_EQ(r.resident_warps, 8);
  // 512-item blocks: 16 warps each; the 48-warp cap binds -> 3 blocks.
  r = simulate(spec, compute_kernel(),
               {.global_items = 1 << 20, .local_items = 512});
  EXPECT_EQ(r.resident_blocks, 3);
  EXPECT_EQ(r.resident_warps, 48);
}

TEST(Simulate, MoreWarpsNeverSlower) {
  // Monotonicity property: with fixed per-item cost and total items, larger
  // workgroup sizes (up to the caps) never meaningfully increase simulated
  // time. A few percent of slack absorbs rounding at the memory-bound
  // plateau where the MWP/CWP cases cross over.
  const GpuSpec spec = GpuSpec::gtx580();
  const KernelCost k = memory_kernel();
  double prev = 1e30;
  for (std::size_t local : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const double t =
        simulate(spec, k, {.global_items = 1 << 18, .local_items = local})
            .seconds;
    EXPECT_LE(t, prev * 1.05) << "local=" << local;
    prev = t;
  }
}

TEST(Simulate, UncoalescedMemorySlower) {
  const GpuSpec spec = GpuSpec::gtx580();
  KernelCost k = memory_kernel();
  const double coalesced =
      simulate(spec, k, {.global_items = 1 << 20, .local_items = 256}).seconds;
  k.coalesced = false;
  const double scattered =
      simulate(spec, k, {.global_items = 1 << 20, .local_items = 256}).seconds;
  EXPECT_GT(scattered, coalesced);
}

TEST(Simulate, NullLocalPicksReasonableDefault) {
  const GpuSpec spec = GpuSpec::gtx580();
  const auto r = simulate(spec, compute_kernel(),
                          {.global_items = 1 << 20, .local_items = 0});
  EXPECT_GT(r.resident_warps, 1);
}

TEST(Simulate, AchievedNeverExceedsPeak) {
  const GpuSpec spec = GpuSpec::gtx580();
  for (double ilp : {1.0, 2.0, 4.0}) {
    const auto r = simulate(spec, compute_kernel(ilp),
                            {.global_items = 1 << 22, .local_items = 256});
    EXPECT_LE(r.achieved_gflops, spec.peak_gflops() * 1.01);
    EXPECT_GT(r.achieved_gflops, 0.0);
  }
}

TEST(Transfer, LatencyPlusBandwidth) {
  const GpuSpec spec = GpuSpec::gtx580();
  const double t0 = transfer_seconds(spec, 0);
  EXPECT_DOUBLE_EQ(t0, spec.pcie_latency_s);
  const double t1g = transfer_seconds(spec, 1'000'000'000);
  EXPECT_NEAR(t1g, spec.pcie_latency_s + 1.0 / spec.pcie_bandwidth_gbs, 1e-9);
}

}  // namespace
}  // namespace mcl::gpusim

// --- discrete-event simulator & cross-validation ----------------------------------

#include "gpusim/detailed.hpp"

namespace mcl::gpusim {
namespace {

TEST(Detailed, ZeroItemsZeroTime) {
  const DetailedResult r = simulate_detailed(GpuSpec::gtx580(), compute_kernel(),
                                             {.global_items = 0});
  EXPECT_EQ(r.seconds, 0.0);
}

TEST(Detailed, IssuesEveryInstruction) {
  const GpuSpec spec = GpuSpec::gtx580();
  const KernelCost k{.fp_insts = 10, .mem_insts = 2, .other_insts = 3};
  const LaunchGeometry geom{.global_items = 16 * 256, .local_items = 256};
  const DetailedResult r = simulate_detailed(spec, k, geom);
  // One block per SM: 8 warps x 15 instructions.
  EXPECT_EQ(r.issued_insts, 8u * 15u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Detailed, IlpFlatAtHighOccupancyLikeAnalytical) {
  const GpuSpec spec = GpuSpec::gtx580();
  const LaunchGeometry geom{.global_items = 1 << 18, .local_items = 256};
  const double t1 = simulate_detailed(spec, compute_kernel(1.0), geom).seconds;
  const double t4 = simulate_detailed(spec, compute_kernel(4.0), geom).seconds;
  EXPECT_NEAR(t1 / t4, 1.0, 0.10);
}

TEST(Detailed, IlpMattersWhenWarpsScarceLikeAnalytical) {
  const GpuSpec spec = GpuSpec::gtx580();
  const LaunchGeometry geom{.global_items = 16 * 32, .local_items = 32};
  const double t1 = simulate_detailed(spec, compute_kernel(1.0), geom).seconds;
  const double t4 = simulate_detailed(spec, compute_kernel(4.0), geom).seconds;
  EXPECT_GT(t1 / t4, 1.5);
}

TEST(Detailed, SmallWorkgroupsHurtLikeAnalytical) {
  const GpuSpec spec = GpuSpec::gtx580();
  const KernelCost k = memory_kernel();
  const double t_small =
      simulate_detailed(spec, k, {.global_items = 1 << 14, .local_items = 1})
          .seconds;
  const double t_large =
      simulate_detailed(spec, k, {.global_items = 1 << 14, .local_items = 256})
          .seconds;
  EXPECT_GT(t_small / t_large, 4.0);
}

TEST(Detailed, TimeScalesWithWork) {
  const GpuSpec spec = GpuSpec::gtx580();
  const auto t1 = simulate_detailed(spec, compute_kernel(),
                                    {.global_items = 1 << 16, .local_items = 256});
  const auto t4 = simulate_detailed(spec, compute_kernel(),
                                    {.global_items = 1 << 18, .local_items = 256});
  EXPECT_NEAR(t4.seconds / t1.seconds, 4.0, 0.4);
}

TEST(Detailed, AgreesWithAnalyticalWithinFactorTwo) {
  // Cross-validation: over a grid of kernel shapes and launch geometries,
  // the closed-form and discrete-event models must agree within ~2x (they
  // share assumptions but differ in all approximations).
  const GpuSpec spec = GpuSpec::gtx580();
  int checked = 0;
  for (double fp : {8.0, 64.0}) {
    for (double mem : {0.0, 2.0, 8.0}) {
      for (double ilp : {1.0, 4.0}) {
        for (std::size_t local : {32u, 256u}) {
          const KernelCost k{.fp_insts = fp, .mem_insts = mem,
                             .other_insts = fp / 4, .flops_per_fp = 2.0,
                             .ilp = ilp};
          const LaunchGeometry geom{.global_items = 1 << 16,
                                    .local_items = local};
          const double analytical = simulate(spec, k, geom).seconds;
          const double detailed = simulate_detailed(spec, k, geom).seconds;
          const double ratio = detailed / analytical;
          EXPECT_GT(ratio, 0.33) << "fp=" << fp << " mem=" << mem
                                 << " ilp=" << ilp << " local=" << local;
          EXPECT_LT(ratio, 3.0) << "fp=" << fp << " mem=" << mem
                                << " ilp=" << ilp << " local=" << local;
          ++checked;
        }
      }
    }
  }
  EXPECT_EQ(checked, 24);
}

TEST(Detailed, UncoalescedSlowerLikeAnalytical) {
  const GpuSpec spec = GpuSpec::gtx580();
  KernelCost k = memory_kernel();
  const LaunchGeometry geom{.global_items = 1 << 15, .local_items = 256};
  const double coalesced = simulate_detailed(spec, k, geom).seconds;
  k.coalesced = false;
  const double scattered = simulate_detailed(spec, k, geom).seconds;
  EXPECT_GT(scattered, coalesced);
}

}  // namespace
}  // namespace mcl::gpusim
