// End-to-end pipelines: miniature versions of the paper's experiments wired
// through the public API exactly the way the bench binaries do, asserting
// the qualitative outcomes the paper reports.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/hostdata.hpp"
#include "apps/mbench.hpp"
#include "apps/simple.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/advisor.hpp"
#include "testseed.hpp"
#include "core/harness.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "ompx/ompx.hpp"
#include "simd/vec.hpp"
#include "veclegal/analysis.hpp"

// Timing-ratio assertions are meaningless under sanitizer instrumentation
// (ASan skews scalar vs SIMD paths differently); skip them there.
#if defined(__SANITIZE_ADDRESS__)
#define MCL_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MCL_UNDER_ASAN 1
#endif
#endif
#ifndef MCL_UNDER_ASAN
#define MCL_UNDER_ASAN 0
#endif

namespace mcl {
namespace {

using apps::FloatVec;
using apps::random_floats;
using ocl::Buffer;
using ocl::CommandQueue;
using ocl::Context;
using ocl::Event;
using ocl::Kernel;
using ocl::MemFlags;
using ocl::NDRange;
using ocl::Program;

TEST(Integration, WorkitemCoalescingSpeedsUpCpu) {
  // Fig 1 mechanism at test scale: 100x fewer, 100x fatter workitems must
  // not be slower (in practice: substantially faster) than one-item
  // workitems for Square.
  if (MCL_UNDER_ASAN) GTEST_SKIP() << "timing ratio not meaningful under ASan";
  ocl::CpuDevice device;
  Context ctx(device);
  CommandQueue q(ctx);
  const std::size_t n = 1 << 18;
  const FloatVec in = random_floats(n, mcl::test::seed(1));
  Buffer bin(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4,
             const_cast<float*>(in.data()));
  Buffer bout(MemFlags::WriteOnly, n * 4);

  auto time_with = [&](unsigned per_item) {
    Kernel k = ctx.create_kernel(Program::builtin(),
                                 per_item == 1 ? apps::kSquareKernel
                                               : apps::kSquareCoalescedKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    if (per_item != 1) k.set_arg(2, per_item);
    const core::Measurement m = core::measure_reported(
        [&] {
          return q.enqueue_ndrange(k, NDRange{n / per_item}, NDRange{}).seconds;
        },
        {.min_time = 0.05, .warmup_iters = 1, .min_iters = 3});
    return m.per_iter_s;
  };
  const double base = time_with(1);
  const double coalesced = time_with(100);
  EXPECT_LT(coalesced, base * 1.05)
      << "coalescing must not hurt; base=" << base << " coal=" << coalesced;
}

TEST(Integration, GpuSeriesCollapsesUnderCoalescing) {
  // Fig 1 GPU series: same experiment on the simulated GPU inverts.
  ocl::Platform platform;
  Context ctx(platform.gpu());
  CommandQueue q(ctx);
  const std::size_t n = 1 << 20;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);

  auto sim_time = [&](unsigned per_item) {
    Kernel k = ctx.create_kernel(Program::builtin(),
                                 per_item == 1 ? apps::kSquareKernel
                                               : apps::kSquareCoalescedKernel);
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    if (per_item != 1) k.set_arg(2, per_item);
    const Event ev = q.enqueue_ndrange(k, NDRange{n / per_item}, NDRange{256});
    EXPECT_TRUE(ev.launch.simulated);
    return ev.seconds;
  };
  EXPECT_GT(sim_time(1024), 2.0 * sim_time(1));
}

TEST(Integration, MapBeatsCopyOnCpuDevice) {
  // Fig 7 mechanism: application throughput with map vs. explicit copy.
  ocl::CpuDevice device;
  Context ctx(device);
  CommandQueue q(ctx);
  const std::size_t n = 1 << 22;  // 16 MB buffers make copies visible
  FloatVec host(n, 1.5f);
  Buffer buf(MemFlags::ReadWrite, n * 4);

  const core::Measurement copy_time = core::measure(
      [&] { (void)q.enqueue_write_buffer(buf, 0, n * 4, host.data()); },
      {.min_time = 0.05, .warmup_iters = 1, .min_iters = 3});
  const core::Measurement map_time = core::measure(
      [&] {
        void* p = q.enqueue_map_buffer(buf, ocl::MapFlags::Write, 0, n * 4);
        static_cast<float*>(p)[0] = 1.0f;  // touch
        (void)q.enqueue_unmap(buf, p);
      },
      {.min_time = 0.05, .warmup_iters = 1, .min_iters = 3});
  EXPECT_LT(map_time.per_iter_s * 3.0, copy_time.per_iter_s)
      << "mapping must be much cheaper than copying 16 MB";
}

TEST(Integration, AffinityAlignedBeatsMisaligned) {
  // Fig 9 on the cache simulator: vector-add then dependent vector-multiply
  // distributed over 8 cores; misaligned mapping reads remote data.
  const int cores = 8;
  const std::size_t n = 1 << 16;  // floats
  const std::uint64_t base_b = 0x100000, base_c = 0x200000, base_d = 0x300000;

  auto run_phase2 = [&](cachesim::Machine& m, bool aligned) {
    // Phase 1: c[i] = a[i] + b[i]; core owns contiguous slice.
    const std::size_t slice = n / cores;
    for (int c = 0; c < cores; ++c) {
      for (std::size_t i = c * slice; i < (c + 1) * slice; ++i) {
        m.access(c, base_b + i * 4, 4, false);
        m.access(c, base_c + i * 4, 4, true);
      }
    }
    m.reset_cycles();
    // Phase 2: d[i] = c[i] * b[i]; aligned keeps the slice, misaligned
    // shifts ownership by one core.
    for (int c = 0; c < cores; ++c) {
      const int owner = aligned ? c : (c + 1) % cores;
      for (std::size_t i = owner * slice; i < (owner + 1) * slice; ++i) {
        m.access(c, base_c + i * 4, 4, false);
        m.access(c, base_d + i * 4, 4, true);
      }
    }
    return m.makespan_cycles();
  };
  cachesim::Machine aligned(cachesim::MachineConfig::xeon_e5645(cores));
  cachesim::Machine misaligned(cachesim::MachineConfig::xeon_e5645(cores));
  const auto t_aligned = run_phase2(aligned, true);
  const auto t_misaligned = run_phase2(misaligned, false);
  EXPECT_GT(static_cast<double>(t_misaligned),
            1.05 * static_cast<double>(t_aligned));
}

TEST(Integration, VectorizationPolicyPipeline) {
  // Fig 10 mechanism: for MBench2 the loop model must fall back to scalar
  // while the SPMD model vectorizes; both paths still agree numerically with
  // the scalar reference.
  const apps::MBenchInfo& mb = apps::all_mbenches()[1];  // MBench2
  const veclegal::Verdict loop_v = veclegal::analyze(mb.ir, veclegal::Model::Loop);
  const veclegal::Verdict spmd_v = veclegal::analyze(mb.ir, veclegal::Model::Spmd);
  ASSERT_FALSE(loop_v.vectorizable);
  ASSERT_TRUE(spmd_v.vectorizable);

  const std::size_t n = 4096;
  FloatVec a_omp = random_floats(3 * n + 1, mcl::test::seed(7), 0.5f, 1.5f);
  FloatVec a_ocl = a_omp;
  const FloatVec b = random_floats(n, mcl::test::seed(8), 0.5f, 1.5f);
  FloatVec c(2 * n, 0.0f);

  // OpenMP path: runs the loop body the legality verdict allows (scalar).
  ompx::Team team(ompx::TeamOptions{.threads = 2});
  apps::MBenchData d{a_omp.data(), b.data(), c.data(), 1.5f, n};
  const apps::LoopFn body = loop_v.vectorizable ? mb.loop_simd : mb.loop_scalar;
  team.parallel_for_ranges(0, n, [&](std::size_t lo, std::size_t hi) {
    body(d, lo, hi);
  });

  // OpenCL path: SPMD-vectorized kernel.
  ocl::CpuDevice device;
  Context ctx(device);
  CommandQueue q(ctx);
  Buffer ba(MemFlags::ReadWrite | MemFlags::UseHostPtr, a_ocl.size() * 4,
            a_ocl.data());
  Buffer bb(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4,
            const_cast<float*>(b.data()));
  Buffer bc(MemFlags::ReadWrite, 2 * n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), mb.kernel);
  k.set_arg(0, ba);
  k.set_arg(1, bb);
  k.set_arg(2, bc);
  k.set_arg(3, 1.5f);
  const Event ev = q.enqueue_ndrange(k, NDRange{n}, NDRange{64});
  if (mcl::simd::kNativeFloatWidth > 1) {
    EXPECT_EQ(ev.launch.executor_used, ocl::ExecutorKind::Simd);
  }
  EXPECT_LT(apps::max_rel_diff({a_ocl.data(), n}, {a_omp.data(), n}), 1e-6);
}

TEST(Integration, AdvisorFlagsThePaperAntiPatterns) {
  // A "GPU-style" launch on a CPU: tiny workitems, tiny groups, ILP 1,
  // explicit copies — the advisor must reproduce the paper's checklist.
  advisor::LaunchProfile p;
  p.global_items = 1'000'000;
  p.local_items = 8;
  p.flops_per_item = 1;
  p.bytes_per_item = 12;
  p.ilp_chains = 1;
  p.uses_explicit_copy = true;
  p.device_is_cpu = true;
  p.cpu_logical_cores = 12;
  p.kernels_share_data = true;
  const auto advice = advisor::analyze(p);
  EXPECT_GE(advice.size(), 4u);
}

TEST(Integration, EveryRegisteredKernelAgreesAcrossDevices) {
  // Functional cross-check of the two devices over the elementwise kernels.
  ocl::Platform platform;
  const std::size_t n = 512;
  const FloatVec in = random_floats(n, mcl::test::seed(13), 0.1f, 2.0f);

  for (const char* name : {"square", "vectoradd"}) {
    auto run = [&](ocl::Device& dev) {
      Context ctx(dev);
      CommandQueue q(ctx);
      Buffer b1(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4,
                const_cast<float*>(in.data()));
      Buffer b2(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4,
                const_cast<float*>(in.data()));
      Buffer bout(MemFlags::WriteOnly, n * 4);
      Kernel k = ctx.create_kernel(Program::builtin(), name);
      k.set_arg(0, b1);
      if (std::string(name) == "vectoradd") {
        k.set_arg(1, b2);
        k.set_arg(2, bout);
      } else {
        k.set_arg(1, bout);
      }
      (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{64});
      std::vector<float> out(n);
      (void)q.enqueue_read_buffer(bout, 0, n * 4, out.data());
      return out;
    };
    EXPECT_EQ(run(platform.cpu()), run(platform.gpu())) << name;
  }
}

}  // namespace
}  // namespace mcl
