// mclobs tests: context-id plumbing (trace TLS scope, tenant packing),
// critical-path decomposition arithmetic, flight-recorder ring semantics,
// dump schema (parsed back with the bundled JSON reader), the always-on
// trace.dropped counter, fault injection parsing, and the end-to-end
// MCL_OBS_INJECT=hang -> timeout anomaly -> `.mclobs` dump flow against a
// manual-schedule mclserve instance. The `obs` label runs these under the
// plain and TSan tiers (tools/tier1.sh).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "ocl/queue.hpp"
#include "prof/metrics.hpp"
#include "serve/serve.hpp"
#include "trace/trace.hpp"

namespace mcl::obs {
namespace {

/// Every test leaves the global recorder the way it found it.
struct ObsGuard {
  ObsGuard() {
    set_enabled(true);
    reset();
  }
  ~ObsGuard() {
    set_complete_sink(nullptr);
    set_inject(Inject::None);
    set_dump_dir("");
    set_ring_capacity(kDefaultRingCapacity);
    set_enabled(false);
  }
};

void copy_fn(const ocl::KernelArgs& a, const ocl::WorkItemCtx& c) {
  const std::size_t i = c.global_id(0);
  a.buffer<float>(1)[i] = a.buffer<float>(0)[i];
}
const ocl::KernelRegistrar reg_copy{{.name = "obs_copy", .scalar = &copy_fn}};

// ----- context ids -------------------------------------------------------------

TEST(ObsContext, MintPacksTenantAndNeverReturnsZero) {
  const std::uint64_t anon = mint_context(0);
  EXPECT_NE(anon, 0u);
  EXPECT_EQ(context_tenant(anon), 0u);

  const std::uint64_t t7 = mint_context(7);
  EXPECT_EQ(context_tenant(t7), 7u);
  EXPECT_NE(mint_context(7), t7) << "ids must be unique per mint";
}

TEST(ObsContext, ContextScopeNestsAndRestores) {
  trace::set_context(0);
  EXPECT_EQ(trace::current_context(), 0u);
  {
    trace::ContextScope outer(41);
    EXPECT_EQ(trace::current_context(), 41u);
    {
      trace::ContextScope inner(42);
      EXPECT_EQ(trace::current_context(), 42u);
    }
    EXPECT_EQ(trace::current_context(), 41u);
    {
      // ctx 0 is a no-op scope: it must NOT clobber the outer context (a
      // direct enqueue without obs enabled runs inside serve spans).
      trace::ContextScope noop(0);
      EXPECT_EQ(trace::current_context(), 41u);
    }
    EXPECT_EQ(trace::current_context(), 41u);
  }
  EXPECT_EQ(trace::current_context(), 0u);
}

TEST(ObsContext, EnsureContextUsesThreadLocalOrMints) {
  trace::set_context(0);
  const std::uint64_t fresh = ensure_context();
  EXPECT_NE(fresh, 0u);
  EXPECT_EQ(context_tenant(fresh), 0u) << "lazy mints are anonymous";

  trace::ContextScope scope(1234);
  EXPECT_EQ(ensure_context(), 1234u);
}

TEST(ObsContext, ThreadLocalContextIsPerThread) {
  trace::ContextScope scope(77);
  std::uint64_t seen = 99;
  std::thread other([&] { seen = trace::current_context(); });
  other.join();
  EXPECT_EQ(seen, 0u) << "contexts must not leak across threads";
  EXPECT_EQ(trace::current_context(), 77u);
}

// ----- critical-path decomposition ---------------------------------------------

TEST(ObsDecompose, FullServeTimeline) {
  RequestTimes t;
  t.submit_ns = 100;
  t.forward_ns = 200;
  t.dep_ready_ns = 150;
  t.queued_ns = 200;
  t.submitted_ns = 210;
  t.started_ns = 260;
  t.ended_ns = 400;
  t.done_ns = 410;
  const PathSegments s = decompose(t);
  // serve-side dependency wait: dep_ready - submit = 50 (within pre-forward)
  EXPECT_EQ(s.dependency_ns, 50u + 10u);  // + queue wait-list (submitted-queued)
  EXPECT_EQ(s.admission_ns, 100u - 50u);  // pre-forward remainder
  EXPECT_EQ(s.queue_ns, 50u);
  EXPECT_EQ(s.exec_ns, 140u);
  EXPECT_EQ(s.total_ns, 310u);
  EXPECT_LE(s.named_sum(), s.total_ns);
  EXPECT_EQ(s.total_ns - s.named_sum(), 10u);  // completion dispatch
}

TEST(ObsDecompose, DirectEnqueueUsesProfilingOnly) {
  RequestTimes t;
  t.queued_ns = 1000;
  t.submitted_ns = 1100;
  t.started_ns = 1200;
  t.ended_ns = 1500;
  t.is_kernel = false;
  const PathSegments s = decompose(t);
  EXPECT_EQ(s.admission_ns, 0u);
  EXPECT_EQ(s.dependency_ns, 100u);
  EXPECT_EQ(s.queue_ns, 100u);
  EXPECT_EQ(s.exec_ns, 300u);
  EXPECT_EQ(s.total_ns, 500u);  // done falls back to ended
  EXPECT_FALSE(s.is_kernel);
}

TEST(ObsDecompose, ZeroTimesYieldZeroSegmentsAndSaturate) {
  const PathSegments zero = decompose(RequestTimes{});
  EXPECT_EQ(zero.named_sum(), 0u);
  EXPECT_EQ(zero.total_ns, 0u);

  // Out-of-order stamps must clamp, not wrap.
  RequestTimes bad;
  bad.submit_ns = 500;
  bad.done_ns = 400;
  bad.started_ns = 300;
  bad.ended_ns = 200;
  const PathSegments s = decompose(bad);
  EXPECT_EQ(s.total_ns, 0u);
  EXPECT_EQ(s.exec_ns, 0u);
}

TEST(ObsDecompose, DependencyClampedToPreForwardWindow) {
  // A dependency that resolved after forwarding (possible with user events)
  // must not inflate dependency_ns past the pre-forward window.
  RequestTimes t;
  t.submit_ns = 100;
  t.forward_ns = 150;
  t.dep_ready_ns = 900;
  t.done_ns = 1000;
  const PathSegments s = decompose(t);
  EXPECT_EQ(s.dependency_ns, 50u);
  EXPECT_EQ(s.admission_ns, 0u);
}

// ----- flight-recorder ring ----------------------------------------------------

TEST(ObsRecorder, RingOverwritesOldestAndCountsTotal) {
  ObsGuard guard;
  set_ring_capacity(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Record r;
    r.kind = Kind::Mark;
    r.ctx = i;
    record(r);
  }
  EXPECT_EQ(total_recorded(), 20u);
  const std::vector<Record> snap = snapshot_records();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].ctx, 12u + i) << "recorder must keep the newest tail";
  }
}

TEST(ObsRecorder, DisabledRecordIsDropped) {
  ObsGuard guard;
  set_enabled(false);
  record(Record{});
  EXPECT_EQ(total_recorded(), 0u);
  set_enabled(true);
}

TEST(ObsRecorder, CompleteSinkSeesExactSegments) {
  ObsGuard guard;
  std::vector<Record> seen;
  set_complete_sink([&](const Record& r) { seen.push_back(r); });
  PathSegments s;
  s.admission_ns = 1;
  s.dependency_ns = 2;
  s.queue_ns = 3;
  s.exec_ns = 4;
  s.total_ns = 11;
  note_request_complete(mint_context(3), 3, s, core::Status::Success);
  set_complete_sink(nullptr);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].kind, Kind::Complete);
  EXPECT_EQ(seen[0].tenant, 3u);
  EXPECT_EQ(seen[0].args[0], 1u);
  EXPECT_EQ(seen[0].args[1], 2u);
  EXPECT_EQ(seen[0].args[2], 3u);
  EXPECT_EQ(seen[0].args[3], 4u);
  EXPECT_EQ(seen[0].args[4], 11u);
  EXPECT_EQ(seen[0].args[5], 1u);
}

// ----- trace integration -------------------------------------------------------

TEST(ObsTrace, CommandAndWorkgroupSpansCarryContext) {
  ObsGuard guard;
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  ocl::CommandQueue q(ctx);
  ocl::Buffer in(ocl::MemFlags::ReadWrite, 64 * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, 64 * 4);
  ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), "obs_copy");
  k.set_arg(0, in);
  k.set_arg(1, out);

  const std::uint64_t my_ctx = mint_context(9);
  trace::start(0);
  ocl::AsyncEventPtr ev;
  {
    // The async path crosses threads: the worker that runs and finalizes
    // the command must re-install the submitter's context.
    trace::ContextScope scope(my_ctx);
    ev = q.enqueue_ndrange_async(k, ocl::NDRange{64});
  }
  ev->wait();
  q.finish();
  trace::stop();

  bool saw_cmd = false, saw_wg = false;
  for (const trace::TaggedEvent& te : trace::collect()) {
    const trace::TraceEvent& ev = te.event;
    if (ev.name == nullptr) continue;
    const std::string name = ev.name;
    if (name == "cmd.kernel" && ev.ctx == my_ctx) saw_cmd = true;
    if (name.rfind("wg:", 0) == 0 && ev.ctx == my_ctx) saw_wg = true;
  }
  EXPECT_TRUE(saw_cmd) << "cmd.kernel span must carry the submitter context";
  EXPECT_TRUE(saw_wg) << "workgroup spans must inherit the context";
}

TEST(ObsProf, TraceDroppedCounterAlwaysPresent) {
  const prof::Snapshot snap = prof::snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "trace.dropped") found = true;
  }
  EXPECT_TRUE(found) << "trace.dropped must be surfaced even with prof off";
}

// ----- dump schema -------------------------------------------------------------

TEST(ObsDump, SnapshotJsonParsesAndFiltersRelatedEvents) {
  ObsGuard guard;
  const std::uint64_t a = mint_context(1);
  const std::uint64_t b = mint_context(2);
  Record r;
  r.kind = Kind::Submit;
  r.ctx = a;
  r.tenant = 1;
  r.detail = "a-submit";
  record(r);
  r.ctx = b;
  r.tenant = 2;
  r.detail = "b-submit";
  record(r);
  anomaly(Kind::Timeout, a, "test timeout", core::Status::Cancelled);

  const int token = register_section("obs_test", [] {
    return std::string("{\"marker\":42}");
  });
  const std::string doc_text = snapshot_json(Kind::Timeout, a, "test timeout");
  unregister_section(token);

  std::string error;
  const json::ValuePtr doc = json::parse(doc_text, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get_u64("mclobs"), 1u);
  const json::Value* trig = doc->get("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->get_string("kind"), "timeout");
  EXPECT_EQ(trig->get_u64("ctx"), a) << "64-bit ctx must round-trip exactly";
  EXPECT_EQ(trig->get_u64("tenant"), 1u);

  const json::Value* events = doc->get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 3u);
  const json::Value* related = doc->get("related_events");
  ASSERT_NE(related, nullptr);
  ASSERT_EQ(related->array.size(), 2u) << "submit + timeout of ctx a";
  for (const json::ValuePtr& ev : related->array) {
    EXPECT_EQ(ev->get_u64("ctx"), a);
  }
  ASSERT_NE(doc->get("metrics"), nullptr);
  const json::Value* sections = doc->get("sections");
  ASSERT_NE(sections, nullptr);
  const json::Value* mine = sections->get("obs_test");
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->get_u64("marker"), 42u);
}

TEST(ObsDump, DumpNowWritesFileAndReportsPath) {
  ObsGuard guard;
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "obs_unit.mclobs")
          .string();
  std::filesystem::remove(path);
  const std::string written = dump_now(Kind::Mark, 0, "unit test", path);
  EXPECT_EQ(written, path);
  std::string error;
  const json::ValuePtr doc = json::parse_file(path, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get_u64("mclobs"), 1u);
  std::filesystem::remove(path);
}

// ----- JSON reader -------------------------------------------------------------

TEST(ObsJson, ParsesScalarsArraysObjectsAndEscapes) {
  std::string error;
  const json::ValuePtr doc = json::parse(
      R"({"u": 18446744073709551615, "neg": -2.5, "s": "a\"\\\nA",
          "t": true, "n": null, "arr": [1, 2, 3], "obj": {"k": "v"}})",
      &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get_u64("u"), 18446744073709551615ull)
      << "max uint64 must survive (doubles cannot hold it)";
  EXPECT_DOUBLE_EQ(doc->get_number("neg"), -2.5);
  EXPECT_EQ(doc->get_string("s"), "a\"\\\nA");
  EXPECT_TRUE(doc->get("t")->boolean);
  EXPECT_TRUE(doc->get("n")->is_null());
  ASSERT_TRUE(doc->get("arr")->is_array());
  EXPECT_EQ(doc->get("arr")->array.size(), 3u);
  EXPECT_EQ(doc->get("obj")->get_string("k"), "v");
}

TEST(ObsJson, RejectsMalformedDocuments) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "{'single':1}"}) {
    std::string error;
    EXPECT_EQ(json::parse(bad, &error), nullptr) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// ----- fault injection ---------------------------------------------------------

TEST(ObsInject, ParseInject) {
  EXPECT_EQ(parse_inject(nullptr), Inject::None);
  EXPECT_EQ(parse_inject(""), Inject::None);
  EXPECT_EQ(parse_inject("hang"), Inject::Hang);
  EXPECT_EQ(parse_inject("error"), Inject::Error);
  EXPECT_EQ(parse_inject("bogus"), Inject::None);
}

/// End-to-end flight-recorder flow: an injected hang parks the request, its
/// pending-phase deadline expires, the Timeout anomaly writes a `.mclobs`
/// dump, and the dump is triageable — trigger ctx equals the hung ticket's
/// context and every related event carries it.
TEST(ObsInject, HangProducesTriageableDump) {
  using namespace std::chrono_literals;
  ObsGuard guard;
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "obs_hang_dumps")
          .string();
  std::filesystem::remove_all(dir);
  set_dump_dir(dir);
  set_inject(Inject::Hang);  // consumed by the Server constructor

  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  serve::Server server(ctx, serve::ServerConfig{.manual_schedule = true});
  serve::TenantConfig tc;
  tc.name = "hang-tenant";
  tc.default_timeout_ns = 20'000'000;  // 20 ms pending-phase deadline
  serve::Session session = server.create_session(tc);

  ocl::Buffer in(ocl::MemFlags::ReadWrite, 64 * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, 64 * 4);
  serve::LaunchSpec spec;
  spec.kernel = "obs_copy";
  spec.args = {serve::ArgSpec::buf(in), serve::ArgSpec::buf(out)};
  spec.global = ocl::NDRange{64};
  serve::Ticket ticket = session.submit(std::move(spec));
  const std::uint64_t hung_ctx = ticket.context();
  ASSERT_NE(hung_ctx, 0u);

  // First pass: the armed hang parks the head instead of forwarding it.
  EXPECT_EQ(server.step(), 0u);
  EXPECT_FALSE(ticket.complete());

  std::this_thread::sleep_for(40ms);
  // Deadline passed: this pass expires the request -> Timeout anomaly ->
  // dump into `dir`.
  EXPECT_EQ(server.step(), 0u);
  EXPECT_TRUE(ticket.complete());
  EXPECT_EQ(ticket.status(), core::Status::Cancelled);

  std::string dump_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".mclobs")
      dump_path = entry.path().string();
  }
  ASSERT_FALSE(dump_path.empty()) << "timeout anomaly must write a dump";

  std::string error;
  const json::ValuePtr doc = json::parse_file(dump_path, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->get_u64("mclobs"), 1u);
  const json::Value* trig = doc->get("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->get_string("kind"), "timeout");
  EXPECT_EQ(trig->get_u64("ctx"), hung_ctx);

  const json::Value* related = doc->get("related_events");
  ASSERT_NE(related, nullptr);
  ASSERT_FALSE(related->array.empty());
  bool saw_inject = false, saw_timeout = false;
  for (const json::ValuePtr& ev : related->array) {
    EXPECT_EQ(ev->get_u64("ctx"), hung_ctx);
    const std::string kind = ev->get_string("kind");
    if (kind == "inject") saw_inject = true;
    if (kind == "timeout") saw_timeout = true;
  }
  EXPECT_TRUE(saw_inject) << "the parked request's Inject record is related";
  EXPECT_TRUE(saw_timeout);

  // The serve section snapshots the tenant's queue state at dump time.
  const json::Value* sections = doc->get("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_NE(sections->get("serve"), nullptr);

  std::filesystem::remove_all(dir);
}

/// MCL_OBS_INJECT=error: the first forwarded request fails with
/// InternalError and raises an Error anomaly (no dump dir -> no file).
TEST(ObsInject, ErrorFailsFirstForwardedRequest) {
  ObsGuard guard;
  set_inject(Inject::Error);

  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  serve::Server server(ctx, serve::ServerConfig{.manual_schedule = true});
  serve::TenantConfig tc;
  tc.name = "error-tenant";
  serve::Session session = server.create_session(tc);

  ocl::Buffer in(ocl::MemFlags::ReadWrite, 64 * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, 64 * 4);
  serve::LaunchSpec spec;
  spec.kernel = "obs_copy";
  spec.args = {serve::ArgSpec::buf(in), serve::ArgSpec::buf(out)};
  spec.global = ocl::NDRange{64};
  serve::Ticket t1 = session.submit(std::move(spec));
  server.step();
  ASSERT_TRUE(t1.complete());
  EXPECT_EQ(t1.status(), core::Status::InternalError);

  // The fault is one-shot: the next request must succeed.
  serve::LaunchSpec spec2;
  spec2.kernel = "obs_copy";
  spec2.args = {serve::ArgSpec::buf(in), serve::ArgSpec::buf(out)};
  spec2.global = ocl::NDRange{64};
  serve::Ticket t2 = session.submit(std::move(spec2));
  while (!t2.complete()) server.step();
  EXPECT_EQ(t2.status(), core::Status::Success);

  bool saw_inject = false;
  for (const Record& r : snapshot_records()) {
    if (r.kind == Kind::Inject) saw_inject = true;
  }
  EXPECT_TRUE(saw_inject);
}

/// Serve-side completion records decompose into segments that cover the
/// measured latency (the serve_load --obs acceptance check in miniature).
TEST(ObsServe, CompleteRecordsCoverMeasuredLatency) {
  ObsGuard guard;
  std::vector<Record> completes;
  set_complete_sink([&](const Record& r) { completes.push_back(r); });

  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  serve::Server server(ctx);
  serve::TenantConfig tc;
  tc.name = "cover-tenant";
  serve::Session session = server.create_session(tc);

  // Big enough that execution dominates: for ~20 us requests the
  // unattributed remainder (completion-callback dispatch) is a large
  // fraction, which is a property of tiny requests, not a decomposition bug.
  constexpr std::size_t kItems = 1 << 16;
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kItems * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kItems * 4);
  for (int i = 0; i < 50; ++i) {
    serve::LaunchSpec spec;
    spec.kernel = "obs_copy";
    spec.args = {serve::ArgSpec::buf(in), serve::ArgSpec::buf(out)};
    spec.global = ocl::NDRange{kItems};
    session.submit(std::move(spec)).wait();
  }
  session.finish();
  set_complete_sink(nullptr);

  ASSERT_EQ(completes.size(), 50u);
  std::uint64_t named_sum = 0, total_sum = 0;
  for (const Record& r : completes) {
    EXPECT_EQ(r.tenant, 1u);
    EXPECT_NE(r.ctx, 0u);
    const std::uint64_t named =
        r.args[0] + r.args[1] + r.args[2] + r.args[3];
    EXPECT_LE(named, r.args[4]) << "segments must never exceed the total";
    named_sum += named;
    total_sum += r.args[4];
  }
  ASSERT_GT(total_sum, 0u);
  EXPECT_GE(10 * named_sum, 8 * total_sum)
      << "named segments should cover >= 80% of aggregate latency";
}

}  // namespace
}  // namespace mcl::obs
