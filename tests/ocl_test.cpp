#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "ocl/platform.hpp"
#include "ocl/queue.hpp"
#include "simd/vec.hpp"

namespace mcl::ocl {
namespace {

// ----- test kernels ------------------------------------------------------------

/// Records global/group/local ids at the linearized global index.
void record_ids(const KernelArgs& a, const WorkItemCtx& c) {
  const std::size_t idx =
      (c.global_id(2) * c.global_size(1) + c.global_id(1)) * c.global_size(0) +
      c.global_id(0);
  a.buffer<unsigned>(0)[idx] = static_cast<unsigned>(c.global_id(0));
  a.buffer<unsigned>(1)[idx] = static_cast<unsigned>(
      (c.group_id(2) * c.num_groups(1) + c.group_id(1)) * c.num_groups(0) +
      c.group_id(0));
  a.buffer<unsigned>(2)[idx] = static_cast<unsigned>(
      (c.local_id(2) * c.local_size(1) + c.local_id(1)) * c.local_size(0) +
      c.local_id(0));
}
const KernelRegistrar reg_record{{.name = "test_record_ids", .scalar = &record_ids}};

/// doubles input; has a SIMD form (validates lane/tail handling).
void dbl_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  const std::size_t i = c.global_id(0);
  a.buffer<float>(1)[i] = 2.0f * a.buffer<const float>(0)[i];
}
void dbl_simd(const KernelArgs& a, const SimdItemCtx& c) {
  using V = simd::vfloatn;
  for (std::size_t g = 0; g < c.lane_groups(); ++g) {
    const std::size_t i = c.global_base() + g * static_cast<std::size_t>(V::width);
    (V{2.0f} * V::load(a.buffer<const float>(0) + i))
        .store(a.buffer<float>(1) + i);
  }
}
const KernelRegistrar reg_dbl{
    {.name = "test_double", .scalar = &dbl_scalar, .simd = &dbl_simd}};

/// Barrier kernel: neighbor exchange through local memory.
void neighbor_scalar(const KernelArgs& a, const WorkItemCtx& c) {
  float* lmem = c.local_mem<float>(2);
  const std::size_t lid = c.local_id(0);
  lmem[lid] = static_cast<float>(c.global_id(0));
  c.barrier();
  const std::size_t n = c.local_size(0);
  a.buffer<float>(0)[c.global_id(0)] = lmem[(lid + 1) % n];
}
const KernelRegistrar reg_neighbor{{.name = "test_neighbor",
                                    .scalar = &neighbor_scalar,
                                    .needs_barrier = true}};

/// Workgroup-form kernel summing its group's elements into out[group].
void group_sum(const KernelArgs& a, const WorkGroupCtx& wg) {
  float* scratch = wg.local_mem<float>(2);
  scratch[0] = 0.0f;
  wg.for_each_item([&](const WorkItemCtx& it) {
    scratch[0] += a.buffer<const float>(0)[it.global_id(0)];
  });
  wg.for_each_item([&](const WorkItemCtx& it) {
    if (it.local_id(0) == 0) a.buffer<float>(1)[it.group_id(0)] = scratch[0];
  });
}
const KernelRegistrar reg_group_sum{
    {.name = "test_group_sum", .workgroup = &group_sum}};

// ----- NDRange & local-size policy ----------------------------------------------

TEST(NDRange, TotalsAndEquality) {
  EXPECT_EQ(NDRange{}.total(), 0u);
  EXPECT_TRUE(NDRange{}.is_null());
  EXPECT_EQ(NDRange{6}.total(), 6u);
  EXPECT_EQ(NDRange(2, 3).total(), 6u);
  EXPECT_EQ(NDRange(2, 3, 4).total(), 24u);
  EXPECT_EQ(NDRange(2, 3)[0], 2u);
  EXPECT_EQ(NDRange(2, 3)[2], 1u);  // implicit 1 for unused dims
  EXPECT_TRUE(NDRange(2, 3) == NDRange(2, 3));
  EXPECT_FALSE(NDRange(2, 3) == NDRange(3, 2));
}

TEST(DefaultLocal, OneDimensionTargets64) {
  EXPECT_EQ(pick_default_local(NDRange{1024})[0], 64u);
  EXPECT_EQ(pick_default_local(NDRange{64})[0], 64u);
  EXPECT_EQ(pick_default_local(NDRange{32})[0], 32u);
  // 10000 = 2^4 * 5^4 -> largest divisor <= 64 is 50.
  EXPECT_EQ(pick_default_local(NDRange{10000})[0], 50u);
  // Primes degrade to 1 (every size divides evenly).
  EXPECT_EQ(pick_default_local(NDRange{9973})[0], 1u);
}

TEST(DefaultLocal, TwoAndThreeDimensions) {
  const NDRange l2 = pick_default_local(NDRange(128, 256));
  EXPECT_EQ(l2[0], 8u);
  EXPECT_EQ(l2[1], 8u);
  const NDRange l3 = pick_default_local(NDRange(16, 16, 16));
  EXPECT_EQ(l3[0], 4u);
  EXPECT_EQ(l3[1], 4u);
  EXPECT_EQ(l3[2], 4u);
}

TEST(DefaultLocal, AlwaysDivides) {
  for (std::size_t g = 1; g < 700; ++g) {
    const NDRange l = pick_default_local(NDRange{g});
    EXPECT_EQ(g % l[0], 0u) << g;
  }
}

// ----- buffers ------------------------------------------------------------------

TEST(Buffer, DefaultAllocZeroed) {
  Buffer b(MemFlags::ReadWrite, 256);
  EXPECT_EQ(b.size(), 256u);
  const auto* p = b.as<const unsigned char>();
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(p[i], 0);
}

TEST(Buffer, SixtyFourByteAligned) {
  for (int i = 0; i < 8; ++i) {
    Buffer b(MemFlags::ReadWrite, 100 + i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.device_ptr()) % 64, 0u);
  }
}

TEST(Buffer, CopyHostPtrCopies) {
  float src[4] = {1, 2, 3, 4};
  Buffer b(MemFlags::ReadWrite | MemFlags::CopyHostPtr, sizeof(src), src);
  src[0] = 99.0f;  // must not affect the buffer
  EXPECT_EQ(b.as<float>()[0], 1.0f);
  EXPECT_EQ(b.as<float>()[3], 4.0f);
}

TEST(Buffer, UseHostPtrAliases) {
  float src[4] = {1, 2, 3, 4};
  Buffer b(MemFlags::ReadWrite | MemFlags::UseHostPtr, sizeof(src), src);
  EXPECT_EQ(b.device_ptr(), src);
  b.as<float>()[2] = 7.0f;
  EXPECT_EQ(src[2], 7.0f);
  EXPECT_TRUE(b.host_visible());
}

TEST(Buffer, AccessFlagQueries) {
  Buffer rw(MemFlags::ReadWrite, 16);
  EXPECT_TRUE(rw.kernel_readable());
  EXPECT_TRUE(rw.kernel_writable());
  Buffer ro(MemFlags::ReadOnly, 16);
  EXPECT_TRUE(ro.kernel_readable());
  EXPECT_FALSE(ro.kernel_writable());
  Buffer wo(MemFlags::WriteOnly, 16);
  EXPECT_FALSE(wo.kernel_readable());
  EXPECT_TRUE(wo.kernel_writable());
}

TEST(Buffer, InvalidConstructionThrows) {
  EXPECT_THROW(Buffer(MemFlags::ReadWrite, 0), core::Error);
  EXPECT_THROW(Buffer(MemFlags::ReadOnly | MemFlags::WriteOnly, 16),
               core::Error);
  float x = 0;
  EXPECT_THROW(Buffer(MemFlags::ReadWrite, 4, &x), core::Error);  // stray ptr
  EXPECT_THROW(Buffer(MemFlags::UseHostPtr | MemFlags::CopyHostPtr, 4, &x),
               core::Error);
  EXPECT_THROW(Buffer(MemFlags::UseHostPtr, 4, nullptr), core::Error);
}

// ----- kernel args ----------------------------------------------------------------

TEST(KernelArgs, ScalarRoundtrip) {
  KernelArgs args;
  args.set_scalar(0, 42u);
  args.set_scalar(1, 2.5f);
  struct Pair { int a; int b; };
  args.set_scalar(2, Pair{7, 9});
  EXPECT_EQ(args.scalar<unsigned>(0), 42u);
  EXPECT_EQ(args.scalar<float>(1), 2.5f);
  EXPECT_EQ(args.scalar<Pair>(2).b, 9);
}

TEST(KernelArgs, LocalTracking) {
  KernelArgs args;
  args.set_local(0, 100);
  EXPECT_TRUE(args.is_local(0));
  EXPECT_EQ(args.local_bytes(0), 100u);
  // Total rounds each request up to 64B.
  args.set_local(1, 1);
  EXPECT_EQ(args.total_local_bytes(), 128u + 64u);
  EXPECT_THROW(args.set_local(2, 0), core::Error);
}

TEST(KernelArgs, UnsetDetection) {
  KernelArgs args;
  args.set_scalar(1, 1);  // leaves slot 0 unset
  EXPECT_FALSE(args.is_set(0));
  EXPECT_TRUE(args.is_set(1));
}

// ----- launch: coverage across shapes and executors --------------------------------

struct LaunchCase {
  NDRange global;
  NDRange local;
  ExecutorKind executor;
  const char* label;
};

class LaunchCoverage : public ::testing::TestWithParam<LaunchCase> {};

TEST_P(LaunchCoverage, EveryItemRunsOnceWithCorrectIds) {
  const LaunchCase& lc = GetParam();
  CpuDevice device(CpuDeviceConfig{.threads = 2, .executor = lc.executor});
  Context ctx(device);
  CommandQueue q(ctx);

  const std::size_t n = lc.global.total();
  Buffer g(MemFlags::ReadWrite, n * 4);
  Buffer grp(MemFlags::ReadWrite, n * 4);
  Buffer loc(MemFlags::ReadWrite, n * 4);
  std::memset(g.device_ptr(), 0xff, n * 4);

  Kernel k = ctx.create_kernel(Program::builtin(), "test_record_ids");
  k.set_arg(0, g);
  k.set_arg(1, grp);
  k.set_arg(2, loc);
  const Event ev = q.enqueue_ndrange(k, lc.global, lc.local);

  const NDRange used = ev.launch.local_used;
  const auto* gid = g.as<const unsigned>();
  const auto* lid = loc.as<const unsigned>();
  for (std::size_t z = 0; z < lc.global[2]; ++z) {
    for (std::size_t y = 0; y < lc.global[1]; ++y) {
      for (std::size_t x = 0; x < lc.global[0]; ++x) {
        const std::size_t idx = (z * lc.global[1] + y) * lc.global[0] + x;
        ASSERT_EQ(gid[idx], x) << lc.label << " idx=" << idx;
        const std::size_t expected_lid =
            ((z % used[2]) * used[1] + (y % used[1])) * used[0] + (x % used[0]);
        ASSERT_EQ(lid[idx], expected_lid) << lc.label << " idx=" << idx;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaunchCoverage,
    ::testing::Values(
        LaunchCase{NDRange{64}, NDRange{16}, ExecutorKind::Loop, "1d_loop"},
        LaunchCase{NDRange{64}, NDRange{64}, ExecutorKind::Loop, "one_group"},
        LaunchCase{NDRange{60}, NDRange{5}, ExecutorKind::Loop, "odd_sizes"},
        LaunchCase{NDRange{64}, NDRange{}, ExecutorKind::Loop, "null_local"},
        LaunchCase{NDRange{1}, NDRange{1}, ExecutorKind::Loop, "single_item"},
        LaunchCase{NDRange(16, 8), NDRange(4, 4), ExecutorKind::Loop, "2d"},
        LaunchCase{NDRange(8, 4, 2), NDRange(2, 2, 2), ExecutorKind::Loop, "3d"},
        LaunchCase{NDRange(12, 7), NDRange{}, ExecutorKind::Loop, "2d_null"},
        LaunchCase{NDRange{64}, NDRange{16}, ExecutorKind::Fiber, "1d_fiber"},
        LaunchCase{NDRange(16, 8), NDRange(4, 2), ExecutorKind::Fiber,
                   "2d_fiber"}),
    [](const auto& info) { return info.param.label; });

TEST(Launch, SimdExecutorMatchesLoopIncludingTails) {
  // local 10 with native width 4/8 forces both full lane groups and tails.
  for (std::size_t n : {40u, 70u, 130u}) {
    CpuDevice loop_dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
    CpuDevice simd_dev(CpuDeviceConfig{.executor = ExecutorKind::Simd});
    std::vector<float> in(n);
    std::iota(in.begin(), in.end(), 1.0f);

    auto run = [&](CpuDevice& dev) {
      Context ctx(dev);
      CommandQueue q(ctx);
      Buffer bin(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4, in.data());
      Buffer bout(MemFlags::WriteOnly, n * 4);
      Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
      k.set_arg(0, bin);
      k.set_arg(1, bout);
      const Event ev = q.enqueue_ndrange(k, NDRange{n}, NDRange{10});
      std::vector<float> out(n);
      (void)q.enqueue_read_buffer(bout, 0, n * 4, out.data());
      return std::make_pair(out, ev.launch.executor_used);
    };
    const auto [loop_out, loop_kind] = run(loop_dev);
    const auto [simd_out, simd_kind] = run(simd_dev);
    EXPECT_EQ(loop_kind, ExecutorKind::Loop);
    EXPECT_EQ(simd_kind, ExecutorKind::Simd);
    EXPECT_EQ(loop_out, simd_out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(loop_out[i], 2.0f * in[i]);
  }
}

TEST(Launch, AutoPicksSimdWhenAvailable) {
  CpuDevice dev;  // Auto
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 64;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  const Event ev = q.enqueue_ndrange(k, NDRange{n}, NDRange{16});
  if (simd::kNativeFloatWidth > 1) {
    EXPECT_EQ(ev.launch.executor_used, ExecutorKind::Simd);
  } else {
    EXPECT_EQ(ev.launch.executor_used, ExecutorKind::Loop);
  }
}

TEST(Launch, BarrierKernelAutoSelectsFiberAndWorks) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 48, l = 8;
  Buffer out(MemFlags::ReadWrite, n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_neighbor");
  k.set_arg(0, out);
  k.set_arg(1, 0);  // unused scalar to keep arg indices stable
  k.set_arg_local(2, l * 4);
  const Event ev = q.enqueue_ndrange(k, NDRange{n}, NDRange{l});
  EXPECT_EQ(ev.launch.executor_used, ExecutorKind::Fiber);
  const float* p = out.as<const float>();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t group = i / l;
    const std::size_t expect = group * l + (i % l + 1) % l;
    EXPECT_EQ(p[i], static_cast<float>(expect)) << i;
  }
}

TEST(Launch, BarrierOnLoopExecutorThrows) {
  CpuDevice dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer out(MemFlags::ReadWrite, 16 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_neighbor");
  k.set_arg(0, out);
  k.set_arg(1, 0);
  k.set_arg_local(2, 16 * 4);
  EXPECT_THROW((void)q.enqueue_ndrange(k, NDRange{16}, NDRange{16}),
               core::Error);
}

TEST(Launch, WorkgroupFormKernel) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 32, l = 8;
  std::vector<float> in(n);
  std::iota(in.begin(), in.end(), 0.0f);
  Buffer bin(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4, in.data());
  Buffer bout(MemFlags::ReadWrite, (n / l) * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_group_sum");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  k.set_arg_local(2, 64);
  (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{l});
  const float* p = bout.as<const float>();
  for (std::size_t g = 0; g < n / l; ++g) {
    float expect = 0;
    for (std::size_t i = 0; i < l; ++i) expect += in[g * l + i];
    EXPECT_EQ(p[g], expect);
  }
}

TEST(Launch, ValidationErrors) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  // indivisible local size
  EXPECT_THROW((void)q.enqueue_ndrange(k, NDRange{10}, NDRange{3}), core::Error);
  // zero global size
  EXPECT_THROW((void)q.enqueue_ndrange(k, NDRange{}, NDRange{}), core::Error);
  // dims mismatch
  EXPECT_THROW((void)q.enqueue_ndrange(k, NDRange{16}, NDRange(4, 4)),
               core::Error);
  // unset arg
  Kernel k2 = ctx.create_kernel(Program::builtin(), "test_double");
  k2.set_arg(1, b);
  EXPECT_THROW((void)q.enqueue_ndrange(k2, NDRange{16}, NDRange{4}), core::Error);
  // unknown kernel name
  EXPECT_THROW((void)ctx.create_kernel(Program::builtin(), "nope"), core::Error);
}

TEST(Launch, PinnedExtensionRunsAllGroups) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 64, l = 8;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);
  for (std::size_t i = 0; i < n; ++i) bin.as<float>()[i] = static_cast<float>(i);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  std::vector<int> map(n / l, 0);  // all groups on CPU 0
  const Event ev = q.enqueue_ndrange_pinned(k, NDRange{n}, NDRange{l}, map);
  EXPECT_GT(ev.seconds, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bout.as<float>()[i], 2.0f * static_cast<float>(i));
  }
  // wrong map size rejected
  std::vector<int> bad(3, 0);
  EXPECT_THROW((void)q.enqueue_ndrange_pinned(k, NDRange{n}, NDRange{l}, bad),
               core::Error);
}

// ----- queue transfers ---------------------------------------------------------

TEST(Queue, WriteReadRoundtripWithOffsets) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  const char msg[] = "hello minicl!";
  (void)q.enqueue_write_buffer(b, 8, sizeof(msg), msg);
  char out[sizeof(msg)] = {};
  (void)q.enqueue_read_buffer(b, 8, sizeof(msg), out);
  EXPECT_STREQ(out, msg);
}

TEST(Queue, TransferRangeValidation) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16);
  char tmp[32];
  EXPECT_THROW((void)q.enqueue_write_buffer(b, 0, 32, tmp), core::Error);
  EXPECT_THROW((void)q.enqueue_write_buffer(b, 8, 9, tmp), core::Error);
  EXPECT_THROW((void)q.enqueue_write_buffer(b, 0, 4, nullptr), core::Error);
  // Zero-byte transfers are no-ops (clEnqueueWriteBuffer size==0 handling).
  EXPECT_NO_THROW((void)q.enqueue_read_buffer(b, 0, 0, tmp));
  EXPECT_NO_THROW((void)q.enqueue_write_buffer(b, 16, 0, tmp));
}

TEST(Queue, TransferRangeOverflowRejected) {
  // offset + bytes used to be checked as a sum, which wraps for huge offsets
  // and waved the range through; the rewritten check must reject it.
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16);
  char tmp[16];
  const std::size_t huge = std::numeric_limits<std::size_t>::max() - 4;
  EXPECT_THROW((void)q.enqueue_write_buffer(b, huge, 8, tmp), core::Error);
  EXPECT_THROW((void)q.enqueue_read_buffer(b, huge, 8, tmp), core::Error);
  EXPECT_THROW((void)q.enqueue_read_buffer(
                   b, 8, std::numeric_limits<std::size_t>::max() - 2, tmp),
               core::Error);
}

TEST(Queue, RectPitchOverflowRejected) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 256);
  char host[256] = {};
  BufferRect rect;
  rect.region[0] = 8;
  rect.region[1] = 4;
  rect.region[2] = 1;
  rect.row_pitch = std::numeric_limits<std::size_t>::max() / 2;
  BufferRect host_rect;
  host_rect.region[0] = 8;
  host_rect.region[1] = 4;
  host_rect.region[2] = 1;
  EXPECT_THROW((void)q.enqueue_write_buffer_rect(b, rect, host_rect, host),
               core::Error);
  BufferRect huge_origin = host_rect;
  huge_origin.origin[1] = std::numeric_limits<std::size_t>::max() - 1;
  EXPECT_THROW((void)q.enqueue_read_buffer_rect(b, host_rect, huge_origin, host),
               core::Error);
}

TEST(Queue, FillOffsetMustAlignToPattern) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  const std::uint32_t pattern = 0xa5a5a5a5u;
  // OpenCL 1.2 §5.2.2: offset must be a multiple of the pattern size.
  EXPECT_THROW((void)q.enqueue_fill_buffer(b, &pattern, 4, 2, 8), core::Error);
  EXPECT_NO_THROW((void)q.enqueue_fill_buffer(b, &pattern, 4, 4, 8));
  EXPECT_EQ(b.as<std::uint32_t>()[1], pattern);
  EXPECT_EQ(b.as<std::uint32_t>()[2], pattern);
}

TEST(Queue, MapReturnsCanonicalPointerOnCpu) {
  // The Fig 7/8 mechanism: mapping is zero-copy on the CPU device.
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  Event ev;
  void* p = q.enqueue_map_buffer(b, MapFlags::ReadWrite, 16, 32, &ev);
  EXPECT_EQ(p, static_cast<std::byte*>(b.device_ptr()) + 16);
  EXPECT_EQ(ev.type, CommandType::MapBuffer);
  static_cast<float*>(p)[0] = 3.5f;  // writes through, no copy-back needed
  EXPECT_EQ(b.as<float>()[4], 3.5f);
  (void)q.enqueue_unmap(b, p);
}

TEST(Queue, UnmapValidation) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  float stray = 0;
  EXPECT_THROW((void)q.enqueue_unmap(b, &stray), core::Error);
  void* p = q.enqueue_map_buffer(b, MapFlags::Read, 0, 64);
  (void)q.enqueue_unmap(b, p);
  EXPECT_THROW((void)q.enqueue_unmap(b, p), core::Error);  // double unmap
}

TEST(Queue, MapCountTracksNesting) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  void* p1 = q.enqueue_map_buffer(b, MapFlags::Read, 0, 32);
  void* p2 = q.enqueue_map_buffer(b, MapFlags::Read, 32, 32);
  EXPECT_EQ(b.map_count(), 2);
  (void)q.enqueue_unmap(b, p1);
  (void)q.enqueue_unmap(b, p2);
  EXPECT_EQ(b.map_count(), 0);
}

// ----- devices & platform --------------------------------------------------------

TEST(Platform, ExposesBothDevices) {
  Platform platform;
  EXPECT_EQ(platform.devices().size(), 2u);
  EXPECT_EQ(platform.cpu().type(), DeviceType::Cpu);
  EXPECT_EQ(platform.gpu().type(), DeviceType::SimulatedGpu);
  EXPECT_EQ(platform.device_by_type(DeviceType::Cpu), &platform.cpu());
  EXPECT_GE(platform.cpu().compute_units(), 1);
  EXPECT_EQ(platform.gpu().compute_units(), 16);
}

TEST(SimGpu, FunctionalResultsMatchCpu) {
  Platform platform;
  Context cctx(platform.cpu());
  Context gctx(platform.gpu());
  CommandQueue cq(cctx);
  CommandQueue gq(gctx);
  const std::size_t n = 256;
  std::vector<float> in(n);
  std::iota(in.begin(), in.end(), 0.5f);

  auto run = [&](Context& ctx, CommandQueue& q) {
    Buffer bin(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4, in.data());
    Buffer bout(MemFlags::WriteOnly, n * 4);
    Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{64});
    std::vector<float> out(n);
    (void)q.enqueue_read_buffer(bout, 0, n * 4, out.data());
    return out;
  };
  EXPECT_EQ(run(cctx, cq), run(gctx, gq));
}

TEST(SimGpu, KernelWithoutCostModelIsMeasured) {
  Platform platform;
  Context ctx(platform.gpu());
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  const Event ev = q.enqueue_ndrange(k, NDRange{64}, NDRange{16});
  EXPECT_FALSE(ev.launch.simulated);
}

TEST(SimGpu, TransferOverheadModelsPcie) {
  Platform platform;
  const std::size_t mb = 1 << 20;
  const double t = platform.gpu().copy_overhead_seconds(mb);
  EXPECT_GT(t, platform.gpu().spec().pcie_latency_s);
  // Pinned buffers map free; device buffers pay a crossing.
  Buffer pinned(MemFlags::ReadWrite | MemFlags::AllocHostPtr, mb);
  Buffer devbuf(MemFlags::ReadWrite, mb);
  EXPECT_EQ(platform.gpu().map_overhead_seconds(pinned, mb), 0.0);
  EXPECT_GT(platform.gpu().map_overhead_seconds(devbuf, mb), 0.0);
}

TEST(CpuDevice, NameAndUnits) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  EXPECT_FALSE(dev.name().empty());
  EXPECT_EQ(dev.compute_units(), 2);
}

}  // namespace
}  // namespace mcl::ocl

// ----- extended buffer & queue API ----------------------------------------------

namespace mcl::ocl {
namespace {

TEST(SubBuffer, SharesParentStorage) {
  Buffer parent(MemFlags::ReadWrite, 256);
  Buffer sub = parent.sub_buffer(64, 128);
  EXPECT_TRUE(sub.is_sub_buffer());
  EXPECT_EQ(sub.parent(), &parent);
  EXPECT_EQ(sub.size(), 128u);
  sub.as<float>()[0] = 7.5f;
  EXPECT_EQ(parent.as<float>()[16], 7.5f);  // 64 bytes = 16 floats in
}

TEST(SubBuffer, RegionValidation) {
  Buffer parent(MemFlags::ReadWrite, 100);
  EXPECT_THROW((void)parent.sub_buffer(90, 20), core::Error);
  EXPECT_THROW((void)parent.sub_buffer(0, 0), core::Error);
  EXPECT_NO_THROW((void)parent.sub_buffer(0, 100));
}

TEST(SubBuffer, UsableAsKernelArg) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 64;
  Buffer big(MemFlags::ReadWrite, 2 * n * 4);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    big.as<float>()[i] = static_cast<float>(i);
  }
  // Double only the second half, in place through two views.
  Buffer in = big.sub_buffer(n * 4, n * 4);
  Buffer out = big.sub_buffer(n * 4, n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, in);
  k.set_arg(1, out);
  (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{16});
  EXPECT_EQ(big.as<float>()[0], 0.0f);                       // untouched
  EXPECT_EQ(big.as<float>()[n], 2.0f * static_cast<float>(n));  // doubled
}

TEST(Queue, CopyBuffer) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer src(MemFlags::ReadWrite, 64);
  Buffer dst(MemFlags::ReadWrite, 64);
  for (int i = 0; i < 16; ++i) src.as<float>()[i] = static_cast<float>(i);
  const Event ev = q.enqueue_copy_buffer(src, dst, 16, 32, 32);
  EXPECT_EQ(ev.type, CommandType::CopyBuffer);
  EXPECT_EQ(dst.as<float>()[8], 4.0f);  // dst byte 32 = float 8 <- src float 4
  // overlap via sub-buffers rejected
  Buffer lo = src.sub_buffer(0, 48);
  Buffer hi = src.sub_buffer(16, 48);
  EXPECT_THROW((void)q.enqueue_copy_buffer(lo, hi, 0, 0, 48), core::Error);
}

TEST(Queue, FillBuffer) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  const float pattern = 2.5f;
  (void)q.enqueue_fill_buffer(b, &pattern, sizeof(pattern), 16, 32);
  EXPECT_EQ(b.as<float>()[3], 0.0f);
  EXPECT_EQ(b.as<float>()[4], 2.5f);
  EXPECT_EQ(b.as<float>()[11], 2.5f);
  EXPECT_EQ(b.as<float>()[12], 0.0f);
  EXPECT_THROW((void)q.enqueue_fill_buffer(b, &pattern, 4, 0, 30), core::Error);
  EXPECT_THROW((void)q.enqueue_fill_buffer(b, nullptr, 4, 0, 32), core::Error);
}

TEST(Queue, BufferRectRoundtrip) {
  // Write a 2x3-row block into a 8-float-wide "image", then read it back.
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  constexpr std::size_t kWidthBytes = 8 * 4;
  Buffer b(MemFlags::ReadWrite, kWidthBytes * 4);  // 4 rows

  const float host_block[6] = {1, 2, 3, 4, 5, 6};  // 3 rows x 2 floats, packed
  BufferRect host_rect;
  host_rect.region[0] = 2 * 4;  // 2 floats per row
  host_rect.region[1] = 3;
  BufferRect buf_rect = host_rect;
  buf_rect.origin[0] = 2 * 4;  // start at column 2
  buf_rect.origin[1] = 1;      // row 1
  buf_rect.row_pitch = kWidthBytes;
  (void)q.enqueue_write_buffer_rect(b, buf_rect, host_rect, host_block);

  // Spot-check placement: row 1 columns 2..3 = {1,2}; row 3 = {5,6}.
  EXPECT_EQ(b.as<float>()[1 * 8 + 2], 1.0f);
  EXPECT_EQ(b.as<float>()[1 * 8 + 3], 2.0f);
  EXPECT_EQ(b.as<float>()[3 * 8 + 2], 5.0f);
  EXPECT_EQ(b.as<float>()[1 * 8 + 1], 0.0f);  // outside the rect untouched

  float out[6] = {};
  (void)q.enqueue_read_buffer_rect(b, buf_rect, host_rect, out);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], host_block[i]);
}

TEST(Queue, BufferRectValidation) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  float tmp[64];
  BufferRect big;
  big.region[0] = 16;
  big.region[1] = 8;  // 128 bytes > 64
  BufferRect host = big;
  EXPECT_THROW((void)q.enqueue_write_buffer_rect(b, big, host, tmp),
               core::Error);
  BufferRect mismatched = big;
  mismatched.region[1] = 2;
  BufferRect small;
  small.region[0] = 16;
  small.region[1] = 2;
  EXPECT_THROW((void)q.enqueue_write_buffer_rect(b, small, big, tmp),
               core::Error);
}

TEST(Queue, MarkerCompletesImmediately) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const Event ev = q.enqueue_marker();
  EXPECT_EQ(ev.type, CommandType::Marker);
  EXPECT_EQ(ev.seconds, 0.0);
}

TEST(KernelWorkGroupInfo, CpuReportsSimdMultiple) {
  Platform platform;
  Context ctx(platform.cpu());
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  const KernelWorkGroupInfo info = kernel_workgroup_info(k, platform.cpu());
  if (simd::kNativeFloatWidth > 1) {
    EXPECT_EQ(info.preferred_work_group_size_multiple,
              static_cast<std::size_t>(simd::kNativeFloatWidth));
  } else {
    EXPECT_EQ(info.preferred_work_group_size_multiple, 1u);
  }
  EXPECT_GT(info.max_work_group_size, 1024u);
}

TEST(KernelWorkGroupInfo, BarrierKernelBounded) {
  Platform platform;
  Context ctx(platform.cpu());
  Kernel k = ctx.create_kernel(Program::builtin(), "test_neighbor");
  k.set_arg_local(2, 256);
  const KernelWorkGroupInfo info = kernel_workgroup_info(k, platform.cpu());
  EXPECT_EQ(info.max_work_group_size, 4096u);
  EXPECT_EQ(info.local_mem_bytes, 256u);
}

TEST(KernelWorkGroupInfo, GpuReportsWarpMultiple) {
  Platform platform;
  Context ctx(platform.gpu());
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  const KernelWorkGroupInfo info = kernel_workgroup_info(k, platform.gpu());
  EXPECT_EQ(info.preferred_work_group_size_multiple, 32u);
  EXPECT_EQ(info.max_work_group_size, 1024u);
}

}  // namespace
}  // namespace mcl::ocl

// ----- asynchronous commands -----------------------------------------------------

namespace mcl::ocl {
namespace {

TEST(AsyncQueue, KernelCompletesAndReportsEvent) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 1024;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);
  for (std::size_t i = 0; i < n; ++i) bin.as<float>()[i] = static_cast<float>(i);

  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  const AsyncEventPtr ev = q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64});
  const Event done = ev->result();
  EXPECT_EQ(done.type, CommandType::NDRangeKernel);
  EXPECT_TRUE(ev->complete());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(bout.as<float>()[i], 2.0f * static_cast<float>(i));
  }
}

TEST(AsyncQueue, InOrderSemantics) {
  // write -> kernel -> read, all async; the read must observe the kernel's
  // output because one queue executes in order.
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 4096;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);
  std::vector<float> host_in(n, 3.0f), host_out(n, 0.0f);

  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  (void)q.enqueue_write_buffer_async(bin, 0, n * 4, host_in.data());
  (void)q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64});
  const AsyncEventPtr read =
      q.enqueue_read_buffer_async(bout, 0, n * 4, host_out.data());
  read->wait();
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(host_out[i], 6.0f);
}

TEST(AsyncQueue, ArgumentsSnapshotAtEnqueue) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 256;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout1(MemFlags::ReadWrite, n * 4);
  Buffer bout2(MemFlags::ReadWrite, n * 4);
  for (std::size_t i = 0; i < n; ++i) bin.as<float>()[i] = 1.0f;

  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout1);
  const AsyncEventPtr ev1 = q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64});
  k.set_arg(1, bout2);  // must NOT redirect the in-flight command
  const AsyncEventPtr ev2 = q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64});
  ev1->wait();
  ev2->wait();
  EXPECT_EQ(bout1.as<float>()[0], 2.0f);
  EXPECT_EQ(bout2.as<float>()[0], 2.0f);
}

TEST(AsyncQueue, CrossQueueWaitList) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue producer(ctx);
  CommandQueue consumer(ctx);
  const std::size_t n = 2048;
  Buffer a(MemFlags::ReadWrite, n * 4);
  Buffer b(MemFlags::ReadWrite, n * 4);
  Buffer c(MemFlags::ReadWrite, n * 4);
  for (std::size_t i = 0; i < n; ++i) a.as<float>()[i] = 5.0f;

  Kernel k1 = ctx.create_kernel(Program::builtin(), "test_double");
  k1.set_arg(0, a);
  k1.set_arg(1, b);
  Kernel k2 = ctx.create_kernel(Program::builtin(), "test_double");
  k2.set_arg(0, b);
  k2.set_arg(1, c);

  const AsyncEventPtr first =
      producer.enqueue_ndrange_async(k1, NDRange{n}, NDRange{64});
  const AsyncEventPtr second =
      consumer.enqueue_ndrange_async(k2, NDRange{n}, NDRange{64}, {first});
  second->wait();
  EXPECT_EQ(c.as<float>()[n - 1], 20.0f);
}

TEST(AsyncQueue, FinishDrainsEverything) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 512;
  Buffer bin(MemFlags::ReadWrite, n * 4);
  Buffer bout(MemFlags::ReadWrite, n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  std::vector<AsyncEventPtr> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64}));
  }
  q.finish();
  for (const auto& ev : events) EXPECT_TRUE(ev->complete());
}

TEST(AsyncQueue, FinishWithoutAsyncUseIsNoop) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  q.finish();  // dispatcher never started
}

TEST(AsyncQueue, ErrorsSurfaceOnWait) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  // indivisible local size -> the dispatcher hits the validation error
  const AsyncEventPtr ev = q.enqueue_ndrange_async(k, NDRange{10}, NDRange{3});
  EXPECT_THROW(ev->wait(), core::Error);
  // the queue survives and continues processing
  const AsyncEventPtr ok = q.enqueue_ndrange_async(k, NDRange{16}, NDRange{4});
  EXPECT_NO_THROW(ok->wait());
}

}  // namespace
}  // namespace mcl::ocl

// ----- randomized NDRange coverage fuzz --------------------------------------------

#include "core/rng.hpp"
#include "testseed.hpp"

namespace mcl::ocl {
namespace {

/// Property: for arbitrary (global, local, executor) combinations, every
/// workitem runs exactly once with self-consistent ids. 60 random shapes
/// per executor, seeded deterministically.
class NDRangeFuzz : public ::testing::TestWithParam<ExecutorKind> {};

TEST_P(NDRangeFuzz, RandomShapesCoverExactlyOnce) {
  core::Rng rng(mcl::test::seed(0xF00D));
  CpuDevice device(CpuDeviceConfig{.threads = 2, .executor = GetParam()});
  Context ctx(device);
  CommandQueue q(ctx);

  for (int trial = 0; trial < 60; ++trial) {
    const auto dims = 1 + rng.next_below(3);
    NDRange global, local;
    global.dims = local.dims = dims;
    for (std::size_t d = 0; d < 3; ++d) {
      if (d < dims) {
        // local in [1, 8], global = local * [1, 12]
        local.size[d] = 1 + rng.next_below(8);
        global.size[d] = local.size[d] * (1 + rng.next_below(12));
      } else {
        global.size[d] = local.size[d] = 1;
      }
    }
    const std::size_t n = global.total();
    Buffer g(MemFlags::ReadWrite, n * 4);
    Buffer grp(MemFlags::ReadWrite, n * 4);
    Buffer loc(MemFlags::ReadWrite, n * 4);
    const unsigned sentinel = 0xdeadbeef;
    (void)q.enqueue_fill_buffer(g, &sentinel, 4, 0, n * 4);

    Kernel k = ctx.create_kernel(Program::builtin(), "test_record_ids");
    k.set_arg(0, g);
    k.set_arg(1, grp);
    k.set_arg(2, loc);
    (void)q.enqueue_ndrange(k, global, local);

    const auto* gid = g.as<const unsigned>();
    for (std::size_t z = 0; z < global[2]; ++z) {
      for (std::size_t y = 0; y < global[1]; ++y) {
        for (std::size_t x = 0; x < global[0]; ++x) {
          const std::size_t idx = (z * global[1] + y) * global[0] + x;
          ASSERT_EQ(gid[idx], x)
              << "trial " << trial << " global=" << global[0] << "x"
              << global[1] << "x" << global[2] << " local=" << local[0] << "x"
              << local[1] << "x" << local[2] << " idx=" << idx;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Executors, NDRangeFuzz,
                         ::testing::Values(ExecutorKind::Loop,
                                           ExecutorKind::Fiber),
                         [](const auto& info) {
                           return info.param == ExecutorKind::Loop ? "Loop"
                                                                   : "Fiber";
                         });

TEST(NDRangeFuzz, SimdExecutorRandomShapesMatchLoop) {
  // The SIMD executor runs kernels with a simd form; compare outputs of
  // test_double against the loop executor over random 1D/2D shapes.
  core::Rng rng(mcl::test::seed(0xBEEF));
  CpuDevice loop_dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  CpuDevice simd_dev(CpuDeviceConfig{.executor = ExecutorKind::Simd});

  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t local = 1 + rng.next_below(40);
    const std::size_t n = local * (1 + rng.next_below(20));
    std::vector<float> in(n);
    for (auto& v : in) v = rng.next_float(-8.0f, 8.0f);

    auto run = [&](CpuDevice& dev) {
      Context ctx(dev);
      CommandQueue q(ctx);
      Buffer bin(MemFlags::ReadOnly | MemFlags::CopyHostPtr, n * 4, in.data());
      Buffer bout(MemFlags::WriteOnly, n * 4);
      Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
      k.set_arg(0, bin);
      k.set_arg(1, bout);
      (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{local});
      std::vector<float> out(n);
      (void)q.enqueue_read_buffer(bout, 0, n * 4, out.data());
      return out;
    };
    ASSERT_EQ(run(loop_dev), run(simd_dev))
        << "trial " << trial << " n=" << n << " local=" << local;
  }
}

}  // namespace
}  // namespace mcl::ocl

// ----- Image2D objects --------------------------------------------------------------

#include "ocl/image.hpp"

namespace mcl::ocl {
namespace {

TEST(Image2D, ConstructionAndLayout) {
  Image2D gray(16, 8, 1);
  EXPECT_EQ(gray.width(), 16u);
  EXPECT_EQ(gray.height(), 8u);
  EXPECT_EQ(gray.float_count(), 128u);
  Image2D rgba(4, 4, 4);
  EXPECT_EQ(rgba.float_count(), 64u);
  EXPECT_THROW(Image2D(0, 4, 1), core::Error);
  EXPECT_THROW(Image2D(4, 4, 3), core::Error);  // only 1 or 4 channels
}

TEST(Image2D, ZeroInitialized) {
  Image2D img(8, 8, 1);
  for (std::size_t i = 0; i < img.float_count(); ++i) {
    EXPECT_EQ(img.data()[i], 0.0f);
  }
}

TEST(ImageView, ClampToEdgeSampling) {
  Image2D img(4, 3, 1);
  for (std::size_t y = 0; y < 3; ++y) {
    for (std::size_t x = 0; x < 4; ++x) {
      img.view().write(x, y, static_cast<float>(y * 10 + x));
    }
  }
  const ImageView& v = img.view();
  EXPECT_EQ(v.read_clamped(1, 1), 11.0f);       // interior
  EXPECT_EQ(v.read_clamped(-5, 0), 0.0f);       // left edge clamps to x=0
  EXPECT_EQ(v.read_clamped(99, 0), 3.0f);       // right edge
  EXPECT_EQ(v.read_clamped(0, -2), 0.0f);       // top
  EXPECT_EQ(v.read_clamped(2, 50), 22.0f);      // bottom
  EXPECT_EQ(v.read_clamped(-1, -1), 0.0f);      // corner
}

TEST(ImageView, MultiChannelAccess) {
  Image2D img(2, 2, 4);
  img.view().write(1, 1, 7.0f, 2);
  EXPECT_EQ(img.view().read_clamped(1, 1, 2), 7.0f);
  EXPECT_EQ(img.view().read_clamped(1, 1, 3), 0.0f);
}

TEST(KernelArgs, ImageSlots) {
  Image2D img(4, 4, 1);
  KernelArgs args;
  args.set_image(0, img);
  EXPECT_TRUE(args.is_image(0));
  EXPECT_TRUE(args.is_set(0));
  EXPECT_FALSE(args.is_buffer(0));
  EXPECT_EQ(args.image(0).data, img.data());
  EXPECT_EQ(args.image(0).width, 4u);
}

}  // namespace
}  // namespace mcl::ocl

// ----- global work offsets -----------------------------------------------------------

namespace mcl::ocl {
namespace {

/// Kernel writing its global id relative to the offset region start.
void offset_probe(const KernelArgs& a, const WorkItemCtx& c) {
  // store global_id(0) into out[global_id(0) - base], where base comes from
  // a scalar arg so the test controls addressing.
  const auto base = a.scalar<unsigned>(1);
  a.buffer<unsigned>(0)[c.global_id(0) - base] =
      static_cast<unsigned>(c.global_id(0) + 1000 * c.global_id(1));
}
const KernelRegistrar reg_offset_probe{
    {.name = "test_offset_probe", .scalar = &offset_probe}};

TEST(GlobalOffset, ShiftsGlobalIds1D) {
  CpuDevice dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 64, base = 100;
  Buffer out(MemFlags::ReadWrite, n * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_offset_probe");
  k.set_arg(0, out);
  k.set_arg(1, static_cast<unsigned>(base));
  (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{16}, NDRange{base});
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out.as<unsigned>()[i], static_cast<unsigned>(base + i)) << i;
  }
}

TEST(GlobalOffset, ShiftsGlobalIds2D) {
  CpuDevice dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  Context ctx(dev);
  CommandQueue q(ctx);
  // 8x4 region at offset (16, 2); ids recorded as x + 1000*y.
  Buffer out(MemFlags::ReadWrite, 8 * 4 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_record_ids");
  Buffer grp(MemFlags::ReadWrite, 8 * 4 * 4);
  Buffer loc(MemFlags::ReadWrite, 8 * 4 * 4);
  k.set_arg(0, out);
  k.set_arg(1, grp);
  k.set_arg(2, loc);
  // test_record_ids indexes by global ids, which now exceed the buffer —
  // so use offset (0,0) sanity via the probe kernel instead for the 2D case:
  Buffer probe_out(MemFlags::ReadWrite, 8 * 4 * 4);
  Kernel pk = ctx.create_kernel(Program::builtin(), "test_offset_probe");
  pk.set_arg(0, probe_out);
  pk.set_arg(1, 16u);
  (void)q.enqueue_ndrange(pk, NDRange(8, 4), NDRange(4, 2), NDRange(16, 2));
  // Rows share output slots (the probe indexes by x only), so slot 0 holds
  // x=16 from whichever row wrote last: check both components' ranges.
  const unsigned v = probe_out.as<unsigned>()[0];
  EXPECT_EQ(v % 1000u, 16u);            // gid(0) = offset_x + 0
  EXPECT_GE(v / 1000u, 2u);             // gid(1) in [2, 6)
  EXPECT_LT(v / 1000u, 6u);
}

TEST(GlobalOffset, FiberAndSimdExecutorsAgree) {
  const std::size_t n = 48, base = 8;
  auto run = [&](ExecutorKind kind) {
    CpuDevice dev(CpuDeviceConfig{.executor = kind});
    Context ctx(dev);
    CommandQueue q(ctx);
    Buffer bin(MemFlags::ReadWrite, (n + base) * 4);
    Buffer bout(MemFlags::ReadWrite, (n + base) * 4);
    for (std::size_t i = 0; i < n + base; ++i) {
      bin.as<float>()[i] = static_cast<float>(i);
    }
    Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
    k.set_arg(0, bin);
    k.set_arg(1, bout);
    (void)q.enqueue_ndrange(k, NDRange{n}, NDRange{8}, NDRange{base});
    std::vector<float> out(n + base);
    (void)q.enqueue_read_buffer(bout, 0, (n + base) * 4, out.data());
    return out;
  };
  const auto loop = run(ExecutorKind::Loop);
  const auto simd = run(ExecutorKind::Simd);
  const auto fiber = run(ExecutorKind::Fiber);
  EXPECT_EQ(loop, simd);
  EXPECT_EQ(loop, fiber);
  // items [base, base+n) doubled; [0, base) untouched.
  EXPECT_EQ(loop[base], 2.0f * static_cast<float>(base));
  EXPECT_EQ(loop[0], 0.0f);
}

TEST(GlobalOffset, DimsMismatchRejected) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  EXPECT_THROW(
      (void)q.enqueue_ndrange(k, NDRange{16}, NDRange{4}, NDRange(2, 2)),
      core::Error);
}

}  // namespace
}  // namespace mcl::ocl

// ----- host error paths (H1-H3) and transfer range checks ----------------------
//
// A malformed host plan must surface as a core::Error carrying a precise
// Status — never an abort, a hang, or a silent wrong launch. These mirror
// the mclsan host-lint rules H1 (unset args), H2 (executor routing), and
// H3 (NDRange shape), plus the overflow-safe transfer range check.

#include <functional>

#include "core/error.hpp"

namespace mcl::ocl {
namespace {

core::Status launch_status(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const core::Error& e) {
    return e.status();
  }
  return core::Status::Success;
}

TEST(HostErrors, H1UnsetKernelArgReturnsInvalidKernelArgs) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_record_ids");
  // Bind slots 0 and 2, leaving a hole at slot 1 — the detectable H1 shape
  // (MiniCL has no arity metadata, so a missing *trailing* arg is invisible
  // to the host; only gaps below the highest bound slot can be linted).
  k.set_arg(0, b);
  k.set_arg(2, b);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_ndrange(k, NDRange{16}, NDRange{4});
            }),
            core::Status::InvalidKernelArgs);
}

TEST(HostErrors, H2BarrierKernelOnLoopExecutorReturnsInvalidLaunch) {
  CpuDevice dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_neighbor");
  k.set_arg(0, b);
  k.set_arg(1, 0);  // unused scalar to keep arg indices stable
  k.set_arg_local(2, 4 * 4);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_ndrange(k, NDRange{16}, NDRange{4});
            }),
            core::Status::InvalidLaunch);
}

TEST(HostErrors, H3NonDivisibleGlobalReturnsInvalidWorkGroupSize) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64 * 4);
  Kernel k = ctx.create_kernel(Program::builtin(), "test_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_ndrange(k, NDRange{10}, NDRange{4});
            }),
            core::Status::InvalidWorkGroupSize);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_ndrange(k, NDRange{16}, NDRange(4, 4));
            }),
            core::Status::InvalidWorkGroupSize);
}

TEST(TransferRange, ZeroByteTransfersAreNoOps) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16);
  float unused = 0.0f;
  // Zero-size reads/writes succeed at any offset, including one past the
  // end — nothing is touched, so there is nothing to range-check.
  EXPECT_NO_THROW((void)q.enqueue_write_buffer(b, 16, 0, &unused));
  EXPECT_NO_THROW((void)q.enqueue_read_buffer(b, 16, 0, &unused));
  EXPECT_NO_THROW((void)q.enqueue_copy_buffer(b, b, 0, 8, 0));
}

TEST(TransferRange, OverflowAdjacentOffsetsRejectedNotWrapped) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16);
  std::vector<std::byte> host(16);
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // offset + bytes wraps to a small number; the naive `offset + bytes <=
  // size` check would wave these through.
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_write_buffer(b, kMax, 2, host.data());
            }),
            core::Status::InvalidValue);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_read_buffer(b, kMax - 1, 2, host.data());
            }),
            core::Status::InvalidValue);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_write_buffer(b, 8, kMax, host.data());
            }),
            core::Status::InvalidValue);
  // Exact fit passes; one byte past fails.
  EXPECT_NO_THROW((void)q.enqueue_write_buffer(b, 0, 16, host.data()));
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_write_buffer(b, 1, 16, host.data());
            }),
            core::Status::InvalidValue);
}

TEST(TransferRange, MapRangeCheckedLikeTransfers) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 16);
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_map_buffer(b, MapFlags::Read, kMax, 2);
            }),
            core::Status::InvalidValue);
  EXPECT_EQ(launch_status([&] {
              (void)q.enqueue_map_buffer(b, MapFlags::Read, 8, 9);
            }),
            core::Status::InvalidValue);
}

}  // namespace
}  // namespace mcl::ocl
