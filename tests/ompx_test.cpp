#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <numeric>
#include <vector>

#include "ompx/ompx.hpp"

namespace mcl::ompx {
namespace {

TEST(Team, DefaultThreadCount) {
  Team team;
  EXPECT_GE(team.num_threads(), 1u);
}

TEST(Team, ExplicitThreadCount) {
  Team team(TeamOptions{.threads = 3});
  EXPECT_EQ(team.num_threads(), 3u);
}

TEST(Team, RunExecutesOncePerThread) {
  Team team(TeamOptions{.threads = 4});
  std::vector<std::atomic<int>> hits(4);
  team.run([&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, RepeatedRegionsReuseTeam) {
  Team team(TeamOptions{.threads = 4});
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> count{0};
    team.run([&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 4) << "round " << round;
  }
}

class ScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(ScheduleTest, ParallelForCoversRangeExactlyOnce) {
  Team team(TeamOptions{.threads = 4});
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  team.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); },
                    GetParam());
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ScheduleTest, ParallelForHandlesOffsets) {
  Team team(TeamOptions{.threads = 3});
  std::atomic<long long> sum{0};
  team.parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); },
                    GetParam());
  EXPECT_EQ(sum.load(), (100LL + 199LL) * 100LL / 2LL);
}

TEST_P(ScheduleTest, EmptyRangeIsNoop) {
  Team team(TeamOptions{.threads = 2});
  team.parallel_for(5, 5, [&](std::size_t) { FAIL(); }, GetParam());
  team.parallel_for(7, 3, [&](std::size_t) { FAIL(); }, GetParam());
}

TEST_P(ScheduleTest, RangesCoverAll) {
  Team team(TeamOptions{.threads = 4});
  constexpr std::size_t kN = 4099;
  std::vector<std::atomic<int>> hits(kN);
  team.parallel_for_ranges(
      0, kN,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      GetParam());
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ScheduleTest,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic,
                                           Schedule::Guided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Schedule::Static: return "Static";
                             case Schedule::Dynamic: return "Dynamic";
                             case Schedule::Guided: return "Guided";
                           }
                           return "Unknown";
                         });

TEST(Team, StaticRangesAreContiguousEqualSlices) {
  Team team(TeamOptions{.threads = 4});
  // With 4 threads and a static schedule, 100 iterations split into exactly
  // 4 contiguous slices of 25.
  std::atomic<int> slices{0};
  team.parallel_for_ranges(
      0, 100,
      [&](std::size_t b, std::size_t e) {
        EXPECT_EQ(e - b, 25u);
        EXPECT_EQ(b % 25, 0u);
        slices.fetch_add(1);
      },
      Schedule::Static);
  EXPECT_EQ(slices.load(), 4);
}

TEST(Team, StaticRangesUnevenRemainder) {
  Team team(TeamOptions{.threads = 4});
  // 10 = 3+3+2+2: the first (10 % 4) threads get one extra iteration.
  std::vector<std::atomic<int>> hits(10);
  team.parallel_for_ranges(
      0, 10,
      [&](std::size_t b, std::size_t e) {
        EXPECT_TRUE(e - b == 2 || e - b == 3);
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      Schedule::Static);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, ParallelReduceSum) {
  Team team(TeamOptions{.threads = 4});
  const long long n = 100'000;
  const long long sum = team.parallel_reduce(
      0, static_cast<std::size_t>(n), 0LL,
      [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(Team, ParallelReduceMax) {
  Team team(TeamOptions{.threads = 3});
  std::vector<int> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 37) % 991);
  }
  const int m = team.parallel_reduce(
      0, data.size(), -1, [&](std::size_t i) { return data[i]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(m, *std::max_element(data.begin(), data.end()));
}

TEST(Team, DynamicChunkRespected) {
  Team team(TeamOptions{.threads = 2});
  std::atomic<int> count{0};
  team.parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); },
                    Schedule::Dynamic, 16);
  EXPECT_EQ(count.load(), 1000);
}

TEST(Team, ProcBindConstructs) {
  // On a 1-CPU machine this pins everything to CPU 0; must not hang.
  Team team(TeamOptions{.threads = 2, .proc_bind = true, .affinity_list = {0, 0}});
  std::atomic<int> count{0};
  team.run([&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
}

TEST(Team, DefaultTeamSingleton) {
  Team& a = default_team();
  Team& b = default_team();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace mcl::ompx

// --- collapse(2) + critical --------------------------------------------------------

namespace mcl::ompx {
namespace {

TEST(Team2D, CoversFullIterationSpace) {
  Team team(TeamOptions{.threads = 4});
  constexpr std::size_t kRows = 37, kCols = 53;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  team.parallel_for_2d(0, kRows, 0, kCols, [&](std::size_t i, std::size_t j) {
    hits[i * kCols + j].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Team2D, RespectsOffsets) {
  Team team(TeamOptions{.threads = 2});
  std::atomic<long long> sum{0};
  team.parallel_for_2d(10, 12, 100, 103, [&](std::size_t i, std::size_t j) {
    sum.fetch_add(static_cast<long long>(i * 1000 + j));
  });
  // i in {10,11}, j in {100,101,102}: sum of i*1000+j over the cross product.
  long long expect = 0;
  for (long long i : {10, 11}) {
    for (long long j : {100, 101, 102}) expect += i * 1000 + j;
  }
  EXPECT_EQ(sum.load(), expect);
}

TEST(Team2D, EmptyDimensionIsNoop) {
  Team team(TeamOptions{.threads = 2});
  team.parallel_for_2d(0, 5, 3, 3, [&](std::size_t, std::size_t) { FAIL(); });
  team.parallel_for_2d(5, 2, 0, 4, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(Team2D, CollapseBalancesSkinnyOuterLoop) {
  // 2 outer iterations, 4 threads: without collapse half the team idles;
  // collapsed, every thread gets work. Verified by counting distinct tids.
  Team team(TeamOptions{.threads = 4});
  std::array<std::atomic<int>, 4> tid_work{};
  team.parallel_for_2d(
      0, 2, 0, 1000,
      [&](std::size_t, std::size_t) {
        // identify the executing thread via a thread_local marker
        thread_local int my_slot = -1;
        if (my_slot < 0) {
          static std::atomic<int> next{0};
          my_slot = next.fetch_add(1) % 4;
        }
        tid_work[static_cast<std::size_t>(my_slot)].fetch_add(1);
      },
      Schedule::Static);
  int busy = 0;
  for (auto& w : tid_work) busy += (w.load() > 0);
  EXPECT_GE(busy, 2);  // at least the flattened space spread beyond 2 slots
}

TEST(TeamCritical, MutualExclusionUnderContention) {
  Team team(TeamOptions{.threads = 4});
  long long unguarded = 0;  // plain non-atomic accumulator
  team.parallel_for(0, 10'000, [&](std::size_t i) {
    team.critical([&] { unguarded += static_cast<long long>(i); });
  });
  EXPECT_EQ(unguarded, 9999LL * 10'000LL / 2LL);
}

}  // namespace
}  // namespace mcl::ompx

// --- environment configuration ------------------------------------------------------

#include <cstdlib>

namespace mcl::ompx {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {}
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, 1); }
  const char* name_;
};

TEST(EnvConfig, NumThreads) {
  EnvGuard guard("OMPX_NUM_THREADS");
  guard.set("3");
  EXPECT_EQ(options_from_env().threads, 3u);
  guard.set("0");
  EXPECT_EQ(options_from_env().threads, 0u);  // invalid -> default
  guard.set("banana");
  EXPECT_EQ(options_from_env().threads, 0u);
}

TEST(EnvConfig, ProcBind) {
  EnvGuard guard("OMPX_PROC_BIND");
  guard.set("true");
  EXPECT_TRUE(options_from_env().proc_bind);
  guard.set("false");
  EXPECT_FALSE(options_from_env().proc_bind);
  guard.set("1");
  EXPECT_TRUE(options_from_env().proc_bind);
}

TEST(EnvConfig, CpuAffinityListImpliesBinding) {
  EnvGuard guard("OMPX_CPU_AFFINITY");
  guard.set("0 2-4");
  const TeamOptions opts = options_from_env();
  EXPECT_TRUE(opts.proc_bind);
  EXPECT_EQ(opts.affinity_list, (std::vector<int>{0, 2, 3, 4}));
  guard.set("not-a-list");
  EXPECT_TRUE(options_from_env().affinity_list.empty());
}

TEST(EnvConfig, UnsetLeavesDefaults) {
  unsetenv("OMPX_NUM_THREADS");
  unsetenv("OMPX_PROC_BIND");
  unsetenv("OMPX_CPU_AFFINITY");
  const TeamOptions opts = options_from_env();
  EXPECT_EQ(opts.threads, 0u);
  EXPECT_FALSE(opts.proc_bind);
  EXPECT_TRUE(opts.affinity_list.empty());
}

TEST(EnvConfig, ScheduleParsing) {
  auto s = parse_schedule("static");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->first, Schedule::Static);
  EXPECT_EQ(s->second, 0u);

  s = parse_schedule("dynamic,16");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->first, Schedule::Dynamic);
  EXPECT_EQ(s->second, 16u);

  s = parse_schedule("guided,4");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->first, Schedule::Guided);

  EXPECT_FALSE(parse_schedule("chaotic").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,-4").has_value());
  EXPECT_FALSE(parse_schedule("dynamic,4x").has_value());
}

TEST(EnvConfig, TeamHonorsEnvThreads) {
  EnvGuard guard("OMPX_NUM_THREADS");
  guard.set("2");
  Team team(options_from_env());
  EXPECT_EQ(team.num_threads(), 2u);
}

}  // namespace
}  // namespace mcl::ompx
