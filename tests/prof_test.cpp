// mclprof tests: log-bucket math, percentile correctness on known
// distributions, cross-thread shard merging, the zero-overhead-disabled
// contract, hardware-counter availability probing with graceful degradation,
// and end-to-end kernel-profile attribution through the launch path and the
// queue's event DAG. Carries the `prof` ctest label (run with: ctest -L prof);
// tools/tier1.sh runs it in the plain and TSan tiers.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ocl/queue.hpp"
#include "prof/hw.hpp"
#include "prof/metrics.hpp"
#include "prof/profiler.hpp"
#include "san/lint.hpp"

namespace mcl::prof {
namespace {

// ----- test kernels ------------------------------------------------------------

void square_fn(const ocl::KernelArgs& a, const ocl::WorkItemCtx& c) {
  const std::size_t i = c.global_id(0);
  a.buffer<float>(1)[i] = a.buffer<float>(0)[i] * a.buffer<float>(0)[i];
}
const ocl::KernelRegistrar reg_square{
    {.name = "prof_square", .scalar = &square_fn}};

std::uint64_t counter_value(const Snapshot& snap, const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramData* find_hist(const Snapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h.data;
  }
  return nullptr;
}

/// Every test leaves the registry disabled so later tests (and the
/// disabled-contract test in particular) start from a known state.
struct MetricsOff {
  ~MetricsOff() { set_enabled(false); }
};

// ----- bucket math -------------------------------------------------------------

TEST(ProfBuckets, IndexMatchesBitWidth) {
  EXPECT_EQ(bucket_index(0), 0u);
  EXPECT_EQ(bucket_index(1), 1u);
  EXPECT_EQ(bucket_index(2), 2u);
  EXPECT_EQ(bucket_index(3), 2u);
  EXPECT_EQ(bucket_index(4), 3u);
  EXPECT_EQ(bucket_index(7), 3u);
  EXPECT_EQ(bucket_index(8), 4u);
  EXPECT_EQ(bucket_index(1023), 10u);
  EXPECT_EQ(bucket_index(1024), 11u);
  EXPECT_EQ(bucket_index(UINT64_MAX), 64u);
}

TEST(ProfBuckets, BoundsRoundTripThroughIndex) {
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    EXPECT_LE(bucket_lower(b), bucket_upper(b)) << "bucket " << b;
    EXPECT_EQ(bucket_index(bucket_lower(b)), b) << "bucket " << b;
    EXPECT_EQ(bucket_index(bucket_upper(b)), b) << "bucket " << b;
  }
  // Buckets tile the uint64 range with no gaps.
  for (std::size_t b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(bucket_lower(b), bucket_upper(b - 1) + 1) << "bucket " << b;
  }
}

// ----- percentiles on a known distribution -------------------------------------

TEST(ProfHistogram, PercentilesOfUniform1To1000) {
  HistogramData h{};
  for (std::uint64_t v = 1; v <= 1000; ++v) h.buckets[bucket_index(v)]++;
  ASSERT_EQ(h.count(), 1000u);
  // Nearest rank: p50 -> 500th smallest = 500, in bucket 9 (upper 511).
  EXPECT_EQ(h.percentile(50.0), 511u);
  // p99 -> 990th smallest = 990, in bucket 10 (upper 1023).
  EXPECT_EQ(h.percentile(99.0), 1023u);
  EXPECT_EQ(h.percentile(100.0), 1023u);
  EXPECT_EQ(h.max(), 1023u);
}

TEST(ProfHistogram, EmptyAndSingleton) {
  HistogramData empty{};
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(50.0), 0u);
  EXPECT_EQ(empty.max(), 0u);

  HistogramData one{};
  one.buckets[bucket_index(42)] = 1;
  EXPECT_EQ(one.percentile(0.0), 63u);    // 42 lands in [32, 63]
  EXPECT_EQ(one.percentile(50.0), 63u);
  EXPECT_EQ(one.percentile(100.0), 63u);
}

TEST(ProfHistogram, MergeIsAssociativeAndCommutative) {
  HistogramData a{}, b{}, c{};
  for (std::uint64_t v = 1; v <= 100; ++v) a.buckets[bucket_index(v)]++;
  for (std::uint64_t v = 50; v <= 500; ++v) b.buckets[bucket_index(v * 3)]++;
  for (std::uint64_t v = 0; v <= 10; ++v) c.buckets[bucket_index(v * v)]++;

  HistogramData ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramData bc = b;     // a + (b + c)
  bc.merge(c);
  HistogramData a_bc = a;
  a_bc.merge(bc);
  HistogramData ba = b;     // b + a, then + c
  ba.merge(a);
  ba.merge(c);

  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.buckets, ba.buckets);
  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
}

// ----- registry: dedup, shards, disabled contract ------------------------------

TEST(ProfRegistry, RegistrationDedupesByName) {
  MetricsOff off;
  set_enabled(true);
  reset();
  const Counter c1 = counter("prof_test.dedup");
  const Counter c2 = counter("prof_test.dedup");
  ASSERT_TRUE(c1.valid());
  ASSERT_TRUE(c2.valid());
  c1.add(3);
  c2.add(4);
  EXPECT_EQ(counter_value(snapshot(), "prof_test.dedup"), 7u);
}

TEST(ProfRegistry, CrossThreadShardsMergeIntoTotals) {
  MetricsOff off;
  set_enabled(true);
  reset();
  const Counter c = counter("prof_test.mt_counter");
  const Histogram h = histogram("prof_test.mt_hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        c.add(1);
        h.record(i);
      }
    });
  }
  for (auto& w : workers) w.join();

  const Snapshot snap = snapshot();
  EXPECT_EQ(counter_value(snap, "prof_test.mt_counter"), kThreads * kPerThread);
  const HistogramData* hd = find_hist(snap, "prof_test.mt_hist");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count(), kThreads * kPerThread);
  EXPECT_EQ(hd->max(), 1023u);  // 1000 lands in [512, 1023]
}

TEST(ProfRegistry, DisabledSitesRecordNothingAndRegisterNothing) {
  MetricsOff off;
  set_enabled(false);
  // A macro site hit while disabled must not even register the name.
  MCL_PROF_COUNT("prof_test.never_enabled", 1);
  MCL_PROF_HIST("prof_test.never_enabled_hist", 99);
  Snapshot snap = snapshot();
  for (const auto& c : snap.counters) {
    EXPECT_NE(c.name, "prof_test.never_enabled");
  }
  EXPECT_EQ(find_hist(snap, "prof_test.never_enabled_hist"), nullptr);

  // The same site records once enabled (registration happens on the first
  // enabled pass), and stops recording again after disable.
  set_enabled(true);
  reset();
  for (int i = 0; i < 5; ++i) MCL_PROF_COUNT("prof_test.gated", 2);
  set_enabled(false);
  MCL_PROF_COUNT("prof_test.gated", 1000);
  EXPECT_EQ(counter_value(snapshot(), "prof_test.gated"), 10u);
}

TEST(ProfRegistry, GaugeHoldsLastValue) {
  MetricsOff off;
  set_enabled(true);
  const Gauge g = gauge("prof_test.gauge");
  g.set(1.5);
  g.set(-3.25);
  const Snapshot snap = snapshot();
  bool found = false;
  for (const auto& gv : snap.gauges) {
    if (gv.name == "prof_test.gauge") {
      EXPECT_DOUBLE_EQ(gv.value, -3.25);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfRegistry, ResetZeroesValuesButKeepsNames) {
  MetricsOff off;
  set_enabled(true);
  const Counter c = counter("prof_test.reset_me");
  c.add(9);
  reset();
  EXPECT_EQ(counter_value(snapshot(), "prof_test.reset_me"), 0u);
  c.add(2);
  EXPECT_EQ(counter_value(snapshot(), "prof_test.reset_me"), 2u);
}

TEST(ProfRegistry, TextAndJsonExportersNameMetrics) {
  MetricsOff off;
  set_enabled(true);
  counter("prof_test.export").add(1);
  const Snapshot snap = snapshot();
  EXPECT_NE(metrics_text(snap).find("prof_test.export"), std::string::npos);
  EXPECT_NE(metrics_json(snap).find("\"prof_test.export\""),
            std::string::npos);
}

// ----- hardware availability ---------------------------------------------------

TEST(ProfHw, AvailabilityIsProbedOnceAndExplained) {
  const PerfAvailability& a = availability();
  EXPECT_FALSE(a.detail.empty());
  // Degradation is reported, never silent: unusable must say why.
  if (!a.usable) {
    EXPECT_EQ(&a, &availability()) << "probe must be cached";
  } else {
    EXPECT_GT(a.events_ok, 0);
  }
}

TEST(ProfHw, SampleSubtractionFloorsAtZero) {
  HwSample after;
  after.cycles = 10;
  after.instructions = 5;
  HwSample before;
  before.cycles = 20;  // counter reset between samples (group reopen)
  before.instructions = 2;
  after -= before;
  EXPECT_EQ(after.cycles, 0u);
  EXPECT_EQ(after.instructions, 3u);
}

// ----- profiler session end-to-end ---------------------------------------------

TEST(ProfSession, KernelLaunchAttributesProfile) {
  start();
  constexpr std::size_t kN = 1024;
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  ocl::CommandQueue q(ctx);
  std::vector<float> in(kN, 2.0f), out(kN, 0.0f);
  ocl::Buffer bin(ocl::MemFlags::ReadOnly | ocl::MemFlags::UseHostPtr,
                  kN * sizeof(float), in.data());
  ocl::Buffer bout(ocl::MemFlags::ReadWrite | ocl::MemFlags::UseHostPtr,
                   kN * sizeof(float), out.data());
  ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), "prof_square");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  (void)q.enqueue_ndrange(k, ocl::NDRange{kN}, ocl::NDRange{64});

  const KernelProfile p = kernel_profile("prof_square");
  EXPECT_EQ(p.launches, 1u);
  EXPECT_EQ(p.groups, kN / 64);
  EXPECT_EQ(p.items, kN);
  EXPECT_FALSE(p.has_simd_form);
  EXPECT_EQ(p.simd_items, 0u);
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.est_bytes, 0u);
  EXPECT_GT(p.achieved_gbps(), 0.0);
  // Graceful degradation contract: `hardware` mirrors the probe. With perf
  // access the cycle counts are real; without, they stay zero and the
  // profile is still produced from software timing.
  EXPECT_EQ(p.hardware, availability().usable);
  if (!availability().usable) {
    EXPECT_EQ(p.cycles, 0u);
    EXPECT_DOUBLE_EQ(p.ipc(), 0.0);
  } else {
    EXPECT_GT(p.cycles, 0u);
    EXPECT_GT(p.ipc(), 0.0);
  }
  EXPECT_EQ(out[0], 4.0f) << "profiling must not perturb results";
  stop();
}

TEST(ProfSession, AsyncEventCarriesKernelProfile) {
  start();
  constexpr std::size_t kN = 256;
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  ocl::CommandQueue q(ctx);
  std::vector<float> in(kN, 3.0f), out(kN, 0.0f);
  ocl::Buffer bin(ocl::MemFlags::ReadOnly | ocl::MemFlags::UseHostPtr,
                  kN * sizeof(float), in.data());
  ocl::Buffer bout(ocl::MemFlags::ReadWrite | ocl::MemFlags::UseHostPtr,
                   kN * sizeof(float), out.data());
  ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), "prof_square");
  k.set_arg(0, bin);
  k.set_arg(1, bout);
  const ocl::AsyncEventPtr ev =
      q.enqueue_ndrange_async(k, ocl::NDRange{kN}, ocl::NDRange{64});
  ev->wait();

  const KernelProfile p = ev->kernel_profile();
  EXPECT_EQ(p.launches, 1u);
  EXPECT_EQ(p.items, kN);
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_EQ(p.hardware, availability().usable);
  stop();
}

TEST(ProfSession, ProfileJsonIsSelfDescribing) {
  start();
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 1});
  ocl::Context ctx(dev);
  ocl::CommandQueue q(ctx);
  std::vector<float> buf(64, 1.0f);
  ocl::Buffer b(ocl::MemFlags::ReadWrite | ocl::MemFlags::UseHostPtr,
                buf.size() * sizeof(float), buf.data());
  ocl::Kernel k = ctx.create_kernel(ocl::Program::builtin(), "prof_square");
  k.set_arg(0, b);
  k.set_arg(1, b);
  (void)q.enqueue_ndrange(k, ocl::NDRange{64}, ocl::NDRange{64});
  const std::string json = profile_json();
  stop();

  EXPECT_NE(json.find("\"mclprof\":1"), std::string::npos);
  EXPECT_NE(json.find("\"perf\":"), std::string::npos);
  EXPECT_NE(json.find("\"usable\":"), std::string::npos);
  EXPECT_NE(json.find("\"prof_square\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
}

TEST(ProfSession, StartClearsPriorProfilesAndResetClears) {
  start();
  reset_profiles();
  EXPECT_TRUE(kernel_profiles().empty());
  EXPECT_EQ(kernel_profile("prof_square").launches, 0u);
  stop();
}

// ----- P2 lint: profile vs static IR descriptor --------------------------------

TEST(ProfLint, ContradictionWarnsOnlyWhenSimdClaimUnmet) {
  const san::Report warn = san::lint_profile("k", true, 0.0);
  ASSERT_EQ(warn.diagnostics.size(), 1u);
  EXPECT_TRUE(warn.has_rule(san::Rule::P2ProfileContradiction));
  EXPECT_EQ(warn.error_count(), 0u) << "P2 is a warning, not an error";

  EXPECT_TRUE(san::lint_profile("k", true, 0.96).clean());
  EXPECT_TRUE(san::lint_profile("k", false, 0.0).clean());
}

// ----- capacity exhaustion (keep last: fills the process-global registry) ------

TEST(ProfRegistryZZ, CapacityOverflowYieldsNoOpHandles) {
  MetricsOff off;
  set_enabled(true);
  Counter last;
  for (std::size_t i = 0; i < kMaxCounters + 8; ++i) {
    last = counter("prof_test.cap." + std::to_string(i));
  }
  EXPECT_FALSE(last.valid());
  last.add(1);  // must be a safe no-op
}

}  // namespace
}  // namespace mcl::prof
