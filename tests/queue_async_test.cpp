// Event-graph executor tests: out-of-order independence, cross-queue wait
// edges, error propagation, markers/barriers, profiling timestamps, and
// multi-threaded enqueue/finish stress (run under ASan and TSan tiers).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ocl/queue.hpp"

namespace mcl::ocl {
namespace {

// ----- test kernels ------------------------------------------------------------

/// Host-controlled gate: spins (bounded) until the test releases it. Runs on
/// a dedicated gate device so it never holds the main device's launch lock.
std::atomic<int> g_gate{0};

void gate_spin(const KernelArgs& a, const WorkItemCtx&) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (g_gate.load(std::memory_order_acquire) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  a.buffer<int>(0)[0] = g_gate.load(std::memory_order_acquire);
}
const KernelRegistrar reg_gate{{.name = "qa_gate_spin", .scalar = &gate_spin}};

void double_fn(const KernelArgs& a, const WorkItemCtx& c) {
  const std::size_t i = c.global_id(0);
  a.buffer<float>(1)[i] = 2.0f * a.buffer<float>(0)[i];
}
const KernelRegistrar reg_double{{.name = "qa_double", .scalar = &double_fn}};

/// Closes the gate on construction and guarantees it opens again even if a
/// test bails early (queues drain in destructors and must not time out).
struct GateGuard {
  GateGuard() { g_gate.store(0, std::memory_order_release); }
  ~GateGuard() { g_gate.store(1, std::memory_order_release); }
  void release() { g_gate.store(1, std::memory_order_release); }
};

void expect_monotonic(const ProfilingInfo& p) {
  EXPECT_GT(p.queued_ns, 0u);
  EXPECT_LE(p.queued_ns, p.submitted_ns);
  EXPECT_LE(p.submitted_ns, p.started_ns);
  EXPECT_LE(p.started_ns, p.ended_ns);
}

/// A gate-blocked event from a throwaway queue on its own device. The
/// returned event cannot complete until the gate is released.
struct GateFixture {
  CpuDevice dev{CpuDeviceConfig{.threads = 1}};
  Context ctx{dev};
  CommandQueue queue{ctx};
  Buffer out{MemFlags::ReadWrite, sizeof(int)};
  Kernel kernel{ctx.create_kernel(Program::builtin(), "qa_gate_spin")};

  AsyncEventPtr launch() {
    kernel.set_arg(0, out);
    return queue.enqueue_ndrange_async(kernel, NDRange{1}, NDRange{1});
  }
};

// ----- out-of-order independence ------------------------------------------------

TEST(QueueAsync, OutOfOrderIndependentCommandsCompleteEitherOrder) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  const std::size_t n = 1024;
  Buffer ba(MemFlags::ReadWrite, n * 4);
  Buffer bb(MemFlags::ReadWrite, n * 4);
  std::vector<float> ha(n, 1.0f), hb(n, 2.0f);

  // First-enqueued command is held back by the gate; the second has no
  // dependencies. On an in-order queue b could never finish first.
  const AsyncEventPtr a =
      q.enqueue_write_buffer_async(ba, 0, n * 4, ha.data(), {gate_ev});
  const AsyncEventPtr b = q.enqueue_write_buffer_async(bb, 0, n * 4, hb.data());
  b->wait();
  EXPECT_FALSE(a->complete());
  EXPECT_EQ(a->state(), CommandState::Queued);

  guard.release();
  a->wait();
  EXPECT_EQ(a->state(), CommandState::Complete);
  EXPECT_EQ(ba.as<float>()[0], 1.0f);
  EXPECT_EQ(bb.as<float>()[0], 2.0f);
  // The later-enqueued command finished strictly before the earlier one ran.
  EXPECT_LE(b->profiling_ns().ended_ns, a->profiling_ns().started_ns);
  q.finish();
}

TEST(QueueAsync, OutOfOrderKernelsCompleteInReverseEnqueueOrder) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  const std::size_t n = 256;
  Buffer in(MemFlags::ReadWrite, n * 4);
  Buffer out1(MemFlags::ReadWrite, n * 4);
  Buffer out2(MemFlags::ReadWrite, n * 4);
  for (std::size_t i = 0; i < n; ++i) in.as<float>()[i] = 3.0f;

  Kernel k1 = ctx.create_kernel(Program::builtin(), "qa_double");
  k1.set_arg(0, in);
  k1.set_arg(1, out1);
  Kernel k2 = ctx.create_kernel(Program::builtin(), "qa_double");
  k2.set_arg(0, in);
  k2.set_arg(1, out2);

  const AsyncEventPtr first =
      q.enqueue_ndrange_async(k1, NDRange{n}, NDRange{64}, {gate_ev});
  const AsyncEventPtr second = q.enqueue_ndrange_async(k2, NDRange{n}, NDRange{64});
  second->wait();
  EXPECT_FALSE(first->complete());
  guard.release();
  first->wait();
  EXPECT_EQ(out1.as<float>()[n - 1], 6.0f);
  EXPECT_EQ(out2.as<float>()[n - 1], 6.0f);
  EXPECT_LE(second->profiling_ns().ended_ns, first->profiling_ns().started_ns);
}

TEST(QueueAsync, InOrderQueueStillChainsImplicitly) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);  // default: in-order
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<char> h1(64, 1), h2(64, 2);

  const AsyncEventPtr a =
      q.enqueue_write_buffer_async(b, 0, 64, h1.data(), {gate_ev});
  const AsyncEventPtr c = q.enqueue_write_buffer_async(b, 0, 64, h2.data());
  // The implicit in-order edge holds c back while a waits on the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(c->complete());
  guard.release();
  c->wait();
  EXPECT_GE(c->profiling_ns().started_ns, a->profiling_ns().ended_ns);
  EXPECT_EQ(b.as<char>()[0], 2);
}

// ----- wait lists across queues -------------------------------------------------

TEST(QueueAsync, CrossQueueWaitEdgesHonored) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue producer(ctx, QueueProperties::OutOfOrder);
  CommandQueue consumer(ctx, QueueProperties::OutOfOrder);
  const std::size_t n = 4096;
  Buffer b(MemFlags::ReadWrite, n * 4);
  std::vector<float> src(n, 7.0f), dst(n, 0.0f);

  const AsyncEventPtr w = producer.enqueue_write_buffer_async(b, 0, n * 4, src.data());
  const AsyncEventPtr r =
      consumer.enqueue_read_buffer_async(b, 0, n * 4, dst.data(), {w});
  r->wait();
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(dst[i], 7.0f);
  // The edge is visible in the timestamps: the consumer started only after
  // the producer ended.
  EXPECT_GE(r->profiling_ns().started_ns, w->profiling_ns().ended_ns);
}

// ----- error propagation --------------------------------------------------------

TEST(QueueAsync, ErrorPropagatesThroughExplicitDependents) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  const std::size_t n = 10;
  Buffer b(MemFlags::ReadWrite, n * 4);
  std::vector<float> host(n, 0.0f);
  Kernel k = ctx.create_kernel(Program::builtin(), "qa_double");
  k.set_arg(0, b);
  k.set_arg(1, b);

  // Indivisible local size: the command itself fails at execution.
  const AsyncEventPtr bad = q.enqueue_ndrange_async(k, NDRange{n}, NDRange{3});
  const AsyncEventPtr dep =
      q.enqueue_read_buffer_async(b, 0, n * 4, host.data(), {bad});
  const AsyncEventPtr grand = q.enqueue_marker_async({dep});

  // Dependents must fail, not hang.
  EXPECT_THROW(bad->wait(), core::Error);
  EXPECT_THROW(dep->wait(), core::Error);
  EXPECT_THROW(grand->wait(), core::Error);
  EXPECT_NE(bad->status(), core::Status::Success);
  EXPECT_EQ(dep->status(), bad->status());
  EXPECT_EQ(grand->status(), bad->status());
  EXPECT_EQ(dep->state(), CommandState::Error);
  // Failed commands still report monotonic profiling timestamps.
  expect_monotonic(dep->profiling_ns());

  // The queue survives: later independent commands run normally.
  const AsyncEventPtr ok = q.enqueue_write_buffer_async(b, 0, n * 4, host.data());
  EXPECT_NO_THROW(ok->wait());
  q.finish();
}

// ----- markers and barriers -----------------------------------------------------

TEST(QueueAsync, MarkerWaitsForAllOutstandingCommands) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<char> h(64, 1);

  const AsyncEventPtr blocked =
      q.enqueue_write_buffer_async(b, 0, 64, h.data(), {gate_ev});
  const AsyncEventPtr free_cmd = q.enqueue_write_buffer_async(b, 0, 64, h.data());
  const AsyncEventPtr marker = q.enqueue_marker_async();
  free_cmd->wait();
  EXPECT_FALSE(marker->complete());  // still gated via `blocked`
  guard.release();
  marker->wait();
  EXPECT_GE(marker->profiling_ns().ended_ns,
            blocked->profiling_ns().ended_ns);
  EXPECT_EQ(marker->type(), CommandType::Marker);
}

TEST(QueueAsync, BarrierFencesSubsequentCommands) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<char> h1(64, 1), h2(64, 2);

  const AsyncEventPtr blocked =
      q.enqueue_write_buffer_async(b, 0, 64, h1.data(), {gate_ev});
  const AsyncEventPtr barrier = q.enqueue_barrier_async();
  // After the barrier: would be independent on an OutOfOrder queue, but the
  // barrier must order it behind `blocked`.
  const AsyncEventPtr after = q.enqueue_write_buffer_async(b, 0, 64, h2.data());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(barrier->complete());
  EXPECT_FALSE(after->complete());
  guard.release();
  after->wait();
  EXPECT_GE(barrier->profiling_ns().ended_ns, blocked->profiling_ns().ended_ns);
  EXPECT_GE(after->profiling_ns().started_ns, barrier->profiling_ns().ended_ns);
  EXPECT_EQ(b.as<char>()[0], 2);
  EXPECT_EQ(barrier->type(), CommandType::Barrier);
}

// ----- profiling ----------------------------------------------------------------

TEST(QueueAsync, ProfilingMonotonicForEveryCommandType) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  const std::size_t n = 512;
  Buffer b1(MemFlags::ReadWrite, n * 4);
  Buffer b2(MemFlags::ReadWrite, n * 4);
  std::vector<float> host(n, 1.5f);
  Kernel k = ctx.create_kernel(Program::builtin(), "qa_double");
  k.set_arg(0, b1);
  k.set_arg(1, b2);
  const std::uint32_t pattern = 0x2020;

  std::vector<AsyncEventPtr> events;
  events.push_back(q.enqueue_write_buffer_async(b1, 0, n * 4, host.data()));
  events.push_back(q.enqueue_ndrange_async(k, NDRange{n}, NDRange{64}));
  events.push_back(q.enqueue_copy_buffer_async(b2, b1, 0, 0, n * 4));
  events.push_back(q.enqueue_fill_buffer_async(b2, &pattern, 4, 0, n * 4));
  events.push_back(q.enqueue_read_buffer_async(b1, 0, n * 4, host.data()));
  events.push_back(q.enqueue_marker_async());
  events.push_back(q.enqueue_barrier_async());
  q.finish();

  const CommandType expected[] = {
      CommandType::WriteBuffer, CommandType::NDRangeKernel,
      CommandType::CopyBuffer,  CommandType::FillBuffer,
      CommandType::ReadBuffer,  CommandType::Marker,
      CommandType::Barrier,
  };
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(events[i]->complete());
    EXPECT_EQ(events[i]->type(), expected[i]);
    const ProfilingInfo p = events[i]->profiling_ns();
    expect_monotonic(p);
    // In-order queue: command i started only after command i-1 ended.
    EXPECT_GE(p.started_ns, prev_end);
    prev_end = p.ended_ns;
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(host[i], 3.0f);
}

TEST(QueueAsync, ProfilingUnavailableBeforeCompletion) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();
  EXPECT_THROW((void)gate_ev->profiling_ns(), core::Error);
  guard.release();
  gate_ev->wait();
  EXPECT_NO_THROW((void)gate_ev->profiling_ns());
}

// ----- enqueue-time validation --------------------------------------------------

TEST(QueueAsync, EnqueueValidationFailsFast) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 64);
  char tmp[64];
  // Invalid ranges throw at the enqueue call site, not at wait().
  EXPECT_THROW((void)q.enqueue_write_buffer_async(b, 0, 128, tmp), core::Error);
  EXPECT_THROW((void)q.enqueue_read_buffer_async(
                   b, std::size_t{0} - 8, 16, tmp),
               core::Error);
  const std::uint32_t pattern = 0xff;
  EXPECT_THROW((void)q.enqueue_fill_buffer_async(b, &pattern, 4, 2, 8),
               core::Error);
  // Zero-byte transfers are valid no-op commands that still produce events.
  const AsyncEventPtr z = q.enqueue_write_buffer_async(b, 0, 0, tmp);
  z->wait();
  EXPECT_EQ(z->state(), CommandState::Complete);
  expect_monotonic(z->profiling_ns());
  q.finish();
}

// ----- concurrency stress -------------------------------------------------------

TEST(QueueAsync, FinishDrainsUnderConcurrentEnqueue) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<Buffer> buffers;
  buffers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    buffers.emplace_back(MemFlags::ReadWrite, 256);
  }
  std::vector<std::vector<AsyncEventPtr>> events(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<char> h(256, static_cast<char>(t + 1));
      for (int i = 0; i < kPerThread; ++i) {
        // On an out-of-order queue overlapping writes need explicit edges;
        // chain this thread's writes so they never run concurrently.
        std::vector<AsyncEventPtr> deps;
        if (!events[t].empty()) deps.push_back(events[t].back());
        events[t].push_back(q.enqueue_write_buffer_async(
            buffers[t], 0, 256, h.data(), std::move(deps)));
      }
      // Host pointer h dies at thread exit: drain before leaving.
      for (const auto& ev : events[t]) ev->wait();
    });
  }
  // finish() racing the enqueuing threads must neither crash nor miss work.
  for (int i = 0; i < 20; ++i) q.finish();
  for (auto& th : threads) th.join();
  q.finish();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(static_cast<int>(events[t].size()), kPerThread);
    for (const auto& ev : events[t]) EXPECT_TRUE(ev->complete());
    EXPECT_EQ(buffers[t].as<char>()[0], static_cast<char>(t + 1));
  }
}

TEST(QueueAsync, StressChainedCommandsFourThreads) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  constexpr std::size_t kBytes = 1024;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Buffer b1(MemFlags::ReadWrite, kBytes);
      Buffer b2(MemFlags::ReadWrite, kBytes);
      std::vector<char> src(kBytes), dst(kBytes);
      for (int i = 0; i < kIters; ++i) {
        const char tag = static_cast<char>((t * kIters + i) % 127 + 1);
        std::fill(src.begin(), src.end(), tag);
        const AsyncEventPtr w =
            q.enqueue_write_buffer_async(b1, 0, kBytes, src.data());
        const AsyncEventPtr c =
            q.enqueue_copy_buffer_async(b1, b2, 0, 0, kBytes, {w});
        const AsyncEventPtr r =
            q.enqueue_read_buffer_async(b2, 0, kBytes, dst.data(), {c});
        r->wait();
        for (std::size_t j = 0; j < kBytes; ++j) {
          if (dst[j] != tag) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        const ProfilingInfo pw = w->profiling_ns();
        const ProfilingInfo pc = c->profiling_ns();
        const ProfilingInfo pr = r->profiling_ns();
        if (!(pw.ended_ns <= pc.started_ns && pc.ended_ns <= pr.started_ns)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  q.finish();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mcl::ocl

// ----- randomized wait-list DAG properties --------------------------------------
//
// Property tests over the event-graph executor: arbitrary acyclic wait-list
// topologies spread across out-of-order queues must always drain (no
// deadlock, no lost wakeup), and a failed dependency must surface its
// Status through every transitive dependent instead of hanging or being
// silently dropped. Seeded via MCL_TEST_SEED (printed on failure).

#include <memory>

#include "core/rng.hpp"
#include "testseed.hpp"

namespace mcl::ocl {
namespace {

TEST(QueueDagProperty, RandomTopologiesAlwaysDrain) {
  core::Rng rng(mcl::test::seed(0xDA6));
  for (int round = 0; round < 20; ++round) {
    CpuDevice dev(CpuDeviceConfig{.threads = 2});
    Context ctx(dev);
    const std::size_t nq = 1 + rng.next_below(3);
    std::vector<std::unique_ptr<CommandQueue>> queues;
    for (std::size_t i = 0; i < nq; ++i) {
      queues.push_back(
          std::make_unique<CommandQueue>(ctx, QueueProperties::OutOfOrder));
    }
    const std::size_t n = 64;
    // Each command owns its buffers and host staging area: the wait edges
    // are random, and two unordered commands touching shared memory would be
    // a genuine data race in the command bodies — the property under test is
    // that the graph drains, not that unordered access is safe (it isn't).
    struct CmdMem {
      Buffer in{MemFlags::ReadWrite, 64 * 4};
      Buffer out{MemFlags::ReadWrite, 64 * 4};
      std::vector<float> host = std::vector<float>(64, 1.0f);
    };
    std::vector<std::unique_ptr<CmdMem>> mem;

    std::vector<AsyncEventPtr> events;
    const std::size_t cmds = 8 + rng.next_below(17);
    for (std::size_t i = 0; i < cmds; ++i) {
      // Wait on up to three earlier events — earlier-only edges keep the
      // graph acyclic by construction, but edges freely cross queues.
      std::vector<AsyncEventPtr> waits;
      if (!events.empty()) {
        const std::size_t nw = rng.next_below(4);
        for (std::size_t w = 0; w < nw; ++w) {
          waits.push_back(events[rng.next_below(events.size())]);
        }
      }
      CommandQueue& q = *queues[rng.next_below(nq)];
      mem.push_back(std::make_unique<CmdMem>());
      CmdMem& m = *mem.back();
      switch (rng.next_below(4)) {
        case 0:
          events.push_back(q.enqueue_write_buffer_async(m.in, 0, n * 4,
                                                        m.host.data(), waits));
          break;
        case 1:
          events.push_back(q.enqueue_read_buffer_async(m.out, 0, n * 4,
                                                       m.host.data(), waits));
          break;
        case 2: {
          Kernel k = ctx.create_kernel(Program::builtin(), "qa_double");
          k.set_arg(0, m.in);
          k.set_arg(1, m.out);
          events.push_back(
              q.enqueue_ndrange_async(k, NDRange{n}, NDRange{8}, waits));
          break;
        }
        default:
          events.push_back(q.enqueue_marker_async(waits));
          break;
      }
    }
    for (auto& q : queues) q->finish();
    for (const AsyncEventPtr& e : events) {
      EXPECT_NO_THROW(e->wait()) << "round " << round;
      EXPECT_EQ(e->state(), CommandState::Complete) << "round " << round;
    }
  }
}

TEST(QueueDagProperty, FailedDependencyPropagatesThroughRandomDags) {
  core::Rng rng(mcl::test::seed(0xFA11));
  for (int round = 0; round < 10; ++round) {
    CpuDevice dev(CpuDeviceConfig{.threads = 2});
    Context ctx(dev);
    CommandQueue q(ctx, QueueProperties::OutOfOrder);
    const std::size_t n = 10;
    Buffer b(MemFlags::ReadWrite, n * 4);
    Kernel k = ctx.create_kernel(Program::builtin(), "qa_double");
    k.set_arg(0, b);
    k.set_arg(1, b);

    // As in RandomTopologiesAlwaysDrain: unordered commands must not share
    // memory, so every write gets a private buffer + host source.
    struct CmdMem {
      Buffer buf{MemFlags::ReadWrite, 10 * 4};
      std::vector<float> host = std::vector<float>(10, 0.0f);
    };
    std::vector<std::unique_ptr<CmdMem>> mem;

    std::vector<AsyncEventPtr> events;
    std::vector<bool> tainted;
    // One poisoned root: an indivisible local size that fails at execution.
    events.push_back(q.enqueue_ndrange_async(k, NDRange{n}, NDRange{3}));
    tainted.push_back(true);

    const std::size_t cmds = 6 + rng.next_below(11);
    for (std::size_t i = 0; i < cmds; ++i) {
      std::vector<AsyncEventPtr> waits;
      bool bad = false;
      const std::size_t nw = rng.next_below(3);
      for (std::size_t w = 0; w < nw; ++w) {
        const std::size_t pick = rng.next_below(events.size());
        waits.push_back(events[pick]);
        bad = bad || tainted[pick];
      }
      // Out-of-order queue: only the explicit wait list creates edges, so
      // `bad` exactly predicts whether the failure reaches this command.
      if (rng.next_below(2) == 0) {
        mem.push_back(std::make_unique<CmdMem>());
        CmdMem& m = *mem.back();
        events.push_back(
            q.enqueue_write_buffer_async(m.buf, 0, n * 4, m.host.data(), waits));
      } else {
        events.push_back(q.enqueue_marker_async(waits));
      }
      tainted.push_back(bad);
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (tainted[i]) {
        EXPECT_THROW(events[i]->wait(), core::Error)
            << "round " << round << " event " << i;
        EXPECT_NE(events[i]->status(), core::Status::Success);
        EXPECT_EQ(events[i]->state(), CommandState::Error);
      } else {
        EXPECT_NO_THROW(events[i]->wait())
            << "round " << round << " event " << i;
        EXPECT_EQ(events[i]->status(), core::Status::Success);
      }
    }
    q.finish();
  }
}

// ----- zero-byte argument validation ---------------------------------------------

TEST(QueueAsync, ZeroByteTransfersStillValidateRanges) {
  CpuDevice dev(CpuDeviceConfig{.threads = 1});
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer a(MemFlags::ReadWrite, 64);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<std::byte> host(64);
  const std::uint32_t pattern = 0;

  // An out-of-bounds offset is an API error regardless of transfer size; the
  // zero-byte fast path used to wave it through.
  EXPECT_THROW(q.enqueue_write_buffer_async(a, 128, 0, host.data()),
               core::Error);
  EXPECT_THROW(q.enqueue_read_buffer_async(a, 128, 0, host.data()),
               core::Error);
  EXPECT_THROW(q.enqueue_copy_buffer_async(a, b, 128, 0, 0), core::Error);
  EXPECT_THROW(q.enqueue_copy_buffer_async(a, b, 0, 128, 0), core::Error);
  EXPECT_THROW(q.enqueue_fill_buffer_async(a, &pattern, 4, 128, 0),
               core::Error);
  EXPECT_THROW(q.enqueue_write_buffer(a, 128, 0, host.data()), core::Error);
  EXPECT_THROW(q.enqueue_read_buffer(a, 128, 0, host.data()), core::Error);
  EXPECT_THROW(q.enqueue_copy_buffer(a, b, 128, 0, 0), core::Error);
  EXPECT_THROW(q.enqueue_fill_buffer(a, &pattern, 4, 128, 0), core::Error);

  // Null pointers fail the same way they do on the non-zero path.
  EXPECT_THROW(q.enqueue_write_buffer_async(a, 0, 0, nullptr), core::Error);
  EXPECT_THROW(q.enqueue_read_buffer_async(a, 0, 0, nullptr), core::Error);
  EXPECT_THROW(q.enqueue_write_buffer(a, 0, 0, nullptr), core::Error);
  EXPECT_THROW(q.enqueue_read_buffer(a, 0, 0, nullptr), core::Error);

  // Valid zero-byte transfers remain successful no-ops.
  q.enqueue_write_buffer_async(a, 64, 0, host.data())->wait();
  q.enqueue_read_buffer_async(a, 64, 0, host.data())->wait();
  q.enqueue_copy_buffer_async(a, b, 64, 64, 0)->wait();
  q.enqueue_fill_buffer_async(a, &pattern, 4, 64, 0)->wait();
  q.finish();
}

// ----- timed wait ----------------------------------------------------------------

TEST(QueueAsync, WaitForTimesOutThenSucceeds) {
  using namespace std::chrono_literals;
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr ev = gate.launch();
  // Gate closed: the command cannot finish, so the timed wait must report
  // timeout (and must not cancel anything).
  EXPECT_FALSE(ev->wait_for(5ms));
  EXPECT_FALSE(ev->complete());
  guard.release();
  EXPECT_TRUE(ev->wait_for(5s));
  EXPECT_EQ(ev->state(), CommandState::Complete);
}

TEST(QueueAsync, WaitForRethrowsCommandError) {
  using namespace std::chrono_literals;
  CpuDevice dev(CpuDeviceConfig{.threads = 1});
  Context ctx(dev);
  CommandQueue q(ctx);
  Buffer b(MemFlags::ReadWrite, 40);
  Kernel k = ctx.create_kernel(Program::builtin(), "qa_double");
  k.set_arg(0, b);
  k.set_arg(1, b);
  // Indivisible local size: fails at execution, like the untimed wait tests.
  const AsyncEventPtr ev = q.enqueue_ndrange_async(k, NDRange{10}, NDRange{3});
  EXPECT_THROW((void)ev->wait_for(5s), core::Error);
  EXPECT_EQ(ev->state(), CommandState::Error);
}

// ----- user events ---------------------------------------------------------------

TEST(QueueAsync, UserEventGatesDependentsUntilSet) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<std::byte> host(64);

  const AsyncEventPtr user = AsyncEvent::create_user();
  EXPECT_FALSE(user->complete());
  const AsyncEventPtr dep =
      q.enqueue_write_buffer_async(b, 0, 64, host.data(), {user});
  EXPECT_FALSE(dep->complete());

  user->set_user_status(core::Status::Success);
  dep->wait();
  EXPECT_EQ(dep->state(), CommandState::Complete);
  q.finish();
}

TEST(QueueAsync, UserEventFailurePropagatesItsStatus) {
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<std::byte> host(64);

  const AsyncEventPtr user = AsyncEvent::create_user();
  const AsyncEventPtr dep =
      q.enqueue_write_buffer_async(b, 0, 64, host.data(), {user});
  user->set_user_status(core::Status::Cancelled);
  try {
    dep->wait();
    FAIL() << "expected propagated Cancelled";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::Cancelled);
  }
  EXPECT_EQ(dep->state(), CommandState::Error);
  EXPECT_EQ(dep->status(), core::Status::Cancelled);
  q.finish();
}

TEST(QueueAsync, UserEventMisuseThrows) {
  const AsyncEventPtr user = AsyncEvent::create_user();
  user->set_user_status(core::Status::Success);
  EXPECT_THROW(user->set_user_status(core::Status::Success), core::Error);

  CpuDevice dev(CpuDeviceConfig{.threads = 1});
  Context ctx(dev);
  CommandQueue q(ctx);
  const AsyncEventPtr marker = q.enqueue_marker_async();
  marker->wait();
  EXPECT_THROW(marker->set_user_status(core::Status::Success), core::Error);
  q.finish();
}

// ----- transitive finish() -------------------------------------------------------

TEST(QueueAsync, FinishDrainsContinuationReenqueuedWork) {
  GateFixture gate;
  GateGuard guard;
  const AsyncEventPtr gate_ev = gate.launch();

  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<std::byte> host(64);

  // first is held by the gate; its completion callback enqueues second,
  // whose callback enqueues third — the batching pattern mclserve uses.
  // finish() must drain the whole chain, not just what was outstanding when
  // the drain predicate was first evaluated.
  std::atomic<bool> chain_done{false};
  const AsyncEventPtr first =
      q.enqueue_write_buffer_async(b, 0, 64, host.data(), {gate_ev});
  first->on_complete([&](core::Status) {
    const AsyncEventPtr second =
        q.enqueue_write_buffer_async(b, 0, 64, host.data());
    second->on_complete([&](core::Status) {
      const AsyncEventPtr third = q.enqueue_marker_async();
      third->on_complete([&](core::Status) {
        chain_done.store(true, std::memory_order_release);
      });
    });
  });

  guard.release();
  q.finish();
  EXPECT_TRUE(chain_done.load(std::memory_order_acquire));
}

// Regression (mclobs PR): a timed-out waiter later observing completion must
// not double-run or drop continuations. Several waiters time out while the
// event is gated, callbacks are registered before the timeouts, between
// timeout and completion, and after terminal state — each must run exactly
// once, and finish() must return (callbacks_in_flight_ balanced) even though
// timed waits gave up on the event first. Runs under the TSan tier via the
// `queue` label.
TEST(QueueAsync, TimedOutWaiterThenCompletionRunsCallbacksOnce) {
  using namespace std::chrono_literals;
  CpuDevice dev(CpuDeviceConfig{.threads = 2});
  Context ctx(dev);
  CommandQueue q(ctx, QueueProperties::OutOfOrder);
  Buffer b(MemFlags::ReadWrite, 64);
  std::vector<std::byte> host(64);

  const AsyncEventPtr gate = AsyncEvent::create_user();
  const AsyncEventPtr ev =
      q.enqueue_write_buffer_async(b, 0, 64, host.data(), {gate});

  std::atomic<int> calls{0};
  ev->on_complete([&](core::Status s) {
    EXPECT_EQ(s, core::Status::Success);
    calls.fetch_add(1, std::memory_order_relaxed);
  });

  // Gate closed: every timed wait must report timeout without cancelling the
  // command or firing its callbacks.
  std::vector<std::thread> waiters;
  std::atomic<int> timeouts{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      if (!ev->wait_for(2ms)) timeouts.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(timeouts.load(), 4);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_FALSE(ev->complete());

  // Register a second callback after the timeouts, then race completion
  // against fresh timed waiters (TSan: callback registration vs finalize).
  ev->on_complete(
      [&](core::Status) { calls.fetch_add(1, std::memory_order_relaxed); });
  std::thread releaser([&] { gate->set_user_status(core::Status::Success); });
  std::vector<std::thread> racers;
  for (int i = 0; i < 4; ++i) {
    racers.emplace_back([&] { (void)ev->wait_for(5s); });
  }
  releaser.join();
  for (auto& t : racers) t.join();
  EXPECT_TRUE(ev->wait_for(5s));
  EXPECT_EQ(ev->state(), CommandState::Complete);

  // Terminal event: late registration runs inline, exactly once.
  ev->on_complete(
      [&](core::Status) { calls.fetch_add(1, std::memory_order_relaxed); });
  // finish() waits for outstanding_ == 0 && callbacks_in_flight_ == 0; a
  // leaked in-flight count would hang here (and the 30s ctest timeout would
  // catch it).
  q.finish();
  EXPECT_EQ(calls.load(), 3);
}

TEST(QueueAsync, OnCompleteRunsInlineOnTerminalEvent) {
  CpuDevice dev(CpuDeviceConfig{.threads = 1});
  Context ctx(dev);
  CommandQueue q(ctx);
  const AsyncEventPtr marker = q.enqueue_marker_async();
  marker->wait();
  bool ran = false;
  marker->on_complete([&](core::Status s) {
    ran = true;
    EXPECT_EQ(s, core::Status::Success);
  });
  EXPECT_TRUE(ran);
  q.finish();
}

}  // namespace
}  // namespace mcl::ocl
