// mclsan tests: static IR analysis (races, bounds, barrier placement),
// host-API lint, the Checked executor's dynamic findings, and the
// num_groups/enqueue-validation regressions that ride along.
#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <vector>

#include "apps/mbench.hpp"
#include "apps/simple.hpp"
#include "core/error.hpp"
#include "ocl/detail/ctx_access.hpp"
#include "ocl/device.hpp"
#include "ocl/queue.hpp"
#include "san/lint.hpp"
#include "san/static_analysis.hpp"
#include "veclegal/analysis.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl {
namespace {

using ocl::Buffer;
using ocl::CommandQueue;
using ocl::Context;
using ocl::CpuDevice;
using ocl::CpuDeviceConfig;
using ocl::CtxAccess;
using ocl::ExecutorKind;
using ocl::Kernel;
using ocl::KernelDef;
using ocl::KernelRegistrar;
using ocl::MemFlags;
using ocl::NDRange;
using ocl::Program;
using ocl::WorkItemCtx;
using san::Rule;
using veclegal::ArrayInfo;
using veclegal::barrier_stmt;
using veclegal::KernelIr;
using veclegal::KernelIrRegistry;
using veclegal::ref;
using veclegal::store;

// ----- test kernels -----------------------------------------------------------

/// Only even-numbered workitems reach the barrier: divergence.
void divergent_kernel(const ocl::KernelArgs& a, const WorkItemCtx& c) {
  if (c.local_id(0) % 2 == 0) c.barrier();
  a.buffer<float>(0)[c.global_id(0)] = 1.0f;
}
const KernelRegistrar reg_divergent{{.name = "san_test_divergent",
                                     .scalar = &divergent_kernel,
                                     .needs_barrier = true}};

/// Uniform barrier: every item passes it once (control case).
void uniform_barrier_kernel(const ocl::KernelArgs& a, const WorkItemCtx& c) {
  c.barrier();
  a.buffer<float>(0)[c.global_id(0)] = 1.0f;
}
const KernelRegistrar reg_uniform{{.name = "san_test_uniform_barrier",
                                   .scalar = &uniform_barrier_kernel,
                                   .needs_barrier = true}};

/// Writes whatever arg 0 is bound to; tests bind a ReadOnly buffer.
void write_arg0_kernel(const ocl::KernelArgs& a, const WorkItemCtx& c) {
  a.buffer<float>(0)[c.global_id(0)] += 1.0f;
}
const KernelRegistrar reg_write_arg0{
    {.name = "san_test_write_arg0", .scalar = &write_arg0_kernel}};

/// Requests 8 floats of local memory at arg 1 but stores to slot 10.
void local_overflow_kernel(const ocl::KernelArgs& a, const WorkItemCtx& c) {
  (void)a;
  c.local_mem<float>(1)[10] = 1.0f;
}
const KernelRegistrar reg_local_overflow{
    {.name = "san_test_local_overflow", .scalar = &local_overflow_kernel}};

// ----- static analysis: table-driven race/bounds/barrier cases -----------------

KernelIr one_stmt_ir(veclegal::Stmt stmt, std::vector<ArrayInfo> arrays,
                     long long trip = 1024) {
  KernelIr ir;
  ir.body.trip_count = trip;
  ir.body.stmts.push_back(std::move(stmt));
  ir.arrays = std::move(arrays);
  return ir;
}

TEST(SanStatic, RaceAndBoundsTable) {
  struct Case {
    const char* name;
    KernelIr ir;
    bool clean;
    Rule expected;  // meaningful when !clean
  };
  std::vector<Case> cases;
  // Race-free elementwise body.
  cases.push_back({"elementwise",
                   one_stmt_ir(store(ref(2), {ref(0), ref(1)}, "c[i]=a[i]+b[i]"),
                               {{.array = 0, .arg_index = 0, .extent = 1024},
                                {.array = 1, .arg_index = 1, .extent = 1024},
                                {.array = 2, .arg_index = 2, .extent = 1024}}),
                   true, Rule::S2WriteWriteRace});
  // Loop-carried read of the neighbor: inter-item read-write race.
  cases.push_back({"carried",
                   one_stmt_ir(store(ref(0, 1, 1), {ref(0)}, "a[i+1]=f(a[i])"),
                               {{.array = 0, .arg_index = 0, .extent = 2048}}),
                   false, Rule::S3ReadWriteRace});
  // Scale-0 store: every item writes one element (the S1 generalization).
  cases.push_back({"broadcast-store",
                   one_stmt_ir(store(ref(0, 0, 7), {ref(1)}, "a[7]=b[i]"),
                               {{.array = 0, .arg_index = 0, .extent = 1024},
                                {.array = 1, .arg_index = 1, .extent = 1024}}),
                   false, Rule::S2WriteWriteRace});
  // Strided write beyond the declared extent.
  cases.push_back({"oob-strided",
                   one_stmt_ir(store(ref(0, 2), {}, "a[2i]=0"),
                               {{.array = 0, .arg_index = 0, .extent = 1024}}),
                   false, Rule::B1OutOfBounds});
  // Write through an array declared read-only.
  cases.push_back(
      {"readonly-write",
       one_stmt_ir(store(ref(0), {}, "a[i]=0"),
                   {{.array = 0, .arg_index = 0, .extent = 1024,
                     .read_only = true}}),
       false, Rule::W1ReadOnlyWrite});
  // Divergent barrier.
  {
    KernelIr ir;
    ir.body.trip_count = 1024;
    ir.body.straight_line = false;
    ir.body.stmts.push_back(barrier_stmt(/*divergent=*/true,
                                         "if (lid&1) barrier()"));
    cases.push_back({"divergent-barrier", std::move(ir), false,
                     Rule::P1BarrierDivergence});
  }

  for (Case& c : cases) {
    const san::Report report = san::analyze_kernel(c.name, c.ir);
    EXPECT_EQ(report.clean(), c.clean) << c.name << ":\n" << report.to_string();
    if (!c.clean) {
      EXPECT_TRUE(report.has_rule(c.expected))
          << c.name << ":\n" << report.to_string();
    }
  }
}

TEST(SanStatic, BarrierEpochSeparatesLocalNotGlobal) {
  // write lm[i]; barrier; read lm[i+1] — the classic neighbor exchange.
  auto body = [](bool local) {
    KernelIr ir;
    ir.body.trip_count = 64;
    ir.body.stmts.push_back(store(ref(0), {}, "m[i] = gid"));
    ir.body.stmts.push_back(barrier_stmt());
    ir.body.stmts.push_back(store(ref(1), {ref(0, 1, 1)}, "out[i] = m[i+1]"));
    // extent 65: the m[i+1] read must stay in bounds so only race rules fire
    ir.arrays = {{.array = 0, .arg_index = 2, .extent = 65, .local = local},
                 {.array = 1, .arg_index = 0, .extent = 64}};
    return ir;
  };
  // Local array: the barrier orders the write epoch before the read epoch.
  EXPECT_TRUE(san::analyze_kernel("neighbor-local", body(true)).clean());
  // Global array: groups don't synchronize at barriers — still a race.
  const san::Report global_report =
      san::analyze_kernel("neighbor-global", body(false));
  EXPECT_FALSE(global_report.clean());
  EXPECT_TRUE(global_report.has_rule(Rule::S3ReadWriteRace));
}

TEST(SanStatic, ItemsCollideSolver) {
  using veclegal::Subscript;
  // Same stride, distance 1 within range.
  EXPECT_TRUE(san::items_collide({1, 0}, {1, 1}, 1024));
  // Same stride, distance 0: one item only, never inter-item.
  EXPECT_FALSE(san::items_collide({1, 0}, {1, 0}, 1024));
  // Distance beyond the item count.
  EXPECT_FALSE(san::items_collide({1, 0}, {1, 2048}, 1024));
  // Pinned element vs stride that hits it.
  EXPECT_TRUE(san::items_collide({0, 6}, {2, 0}, 1024));
  // Pinned element the stride can never reach.
  EXPECT_FALSE(san::items_collide({0, 7}, {2, 0}, 1024));
  // Different strides, exact solve: 2i == 3j + 1 at (i=2, j=1).
  EXPECT_TRUE(san::items_collide({2, 0}, {3, 1}, 16));
  // Different strides with no solution in range: 2i == 2j + 1 is odd vs even.
  EXPECT_FALSE(san::items_collide({2, 0}, {2, 1}, 16));
  // Huge space falls back to gcd solvability (conservative).
  EXPECT_TRUE(san::items_collide({2, 0}, {3, 1}, 1 << 30));
  EXPECT_FALSE(san::items_collide({2, 0}, {4, 1}, 1 << 30));
}

TEST(SanStatic, ItemsCollideEdgeCases) {
  using san::items_collide;
  // Negative strides mirror positive ones: -i+1023 meets j at i+j = 1023.
  EXPECT_TRUE(items_collide({-1, 1023}, {1, 0}, 1024));
  EXPECT_FALSE(items_collide({-2, 0}, {-2, 1}, 1024));  // parity again
  EXPECT_TRUE(items_collide({-2, 0}, {2, -4}, 16));     // (i=0, j=2) -> 0
  // n == 0 means unknown launch size: any stride-divisible distance collides,
  // including pinned elements every item touches.
  EXPECT_TRUE(items_collide({1, 0}, {1, 5}, 0));
  EXPECT_TRUE(items_collide({0, 3}, {0, 3}, 0));
  EXPECT_FALSE(items_collide({0, 3}, {0, 4}, 0));
  // A single workitem has no distinct partner, pinned or not.
  EXPECT_FALSE(items_collide({0, 3}, {0, 3}, 1));
  EXPECT_FALSE(items_collide({1, 0}, {1, 0}, 1));
}

TEST(SanStatic, ItemsCollideExactVsGcdAgreeAtTheLimit) {
  using san::items_collide;
  // The same (a, b, n) queried one element under and exactly at the
  // exact-solve threshold exercises the Diophantine loop and the gcd
  // fallback on identical inputs; both paths must agree on these pairs.
  const long long n = 512;
  struct Pair {
    veclegal::Subscript a, b;
    bool collide;
  };
  const Pair pairs[] = {
      {{2, 0}, {4, 2}, true},    // 2i == 4j+2 at (i=3, j=1)
      {{2, 0}, {4, 1}, false},   // parity mismatch
      {{3, 1}, {6, 4}, true},    // i = 2j+1
      {{6, 0}, {10, 3}, false},  // gcd(6,10) = 2 does not divide 3
  };
  for (const Pair& p : pairs) {
    EXPECT_EQ(items_collide(p.a, p.b, n, /*exact_solve_limit=*/n), p.collide);
    EXPECT_EQ(items_collide(p.a, p.b, n, /*exact_solve_limit=*/n - 1),
              p.collide);
  }
}

TEST(SanStatic, ItemsCollideNoOverflowNearLlongMax) {
  using san::items_collide;
  // Opposite-sign offsets near the extremes: the offset difference exceeds
  // long long; the __int128 solver must widen instead of wrapping to a
  // small (colliding-looking) distance. Regression for the signed-overflow
  // bug in the original long-long solver.
  EXPECT_FALSE(
      items_collide({1, LLONG_MAX - 512}, {1, LLONG_MIN + 512}, 1024));
  // Same magnitudes, genuinely reachable distance: still detected.
  EXPECT_TRUE(
      items_collide({1, LLONG_MAX - 512}, {1, LLONG_MAX - 256}, 1024));
  // LLONG_MIN scale: |scale| negation must not overflow either.
  EXPECT_FALSE(items_collide({LLONG_MIN, 0}, {LLONG_MIN, 1}, 16));
  EXPECT_TRUE(items_collide({LLONG_MIN, 0}, {LLONG_MIN, LLONG_MIN}, 16));
}

TEST(SanStatic, BoundsExactAtLlongMaxAdjacentExtents) {
  // a[i + (LLONG_MAX - 1024)] over trip 1024 ends at LLONG_MAX - 1: legal
  // for extent LLONG_MAX, but offset + trip overflows long long — the
  // interval domain must evaluate it exactly (it runs in __int128).
  auto huge = [](long long offset) {
    return one_stmt_ir(store(ref(0, 1, offset), {}, "a[i+K] = 0"),
                       {{.array = 0, .arg_index = 0, .extent = LLONG_MAX}},
                       1024);
  };
  EXPECT_TRUE(san::analyze_kernel("huge-clean", huge(LLONG_MAX - 1024)).clean());
  const san::Report oob = san::analyze_kernel("huge-oob", huge(LLONG_MAX - 10));
  EXPECT_FALSE(oob.clean());
  EXPECT_TRUE(oob.has_rule(Rule::B1OutOfBounds));
}

TEST(SanStatic, VerifyLintRulesSurfaceAsWarnings) {
  // A dead store (a[i] overwritten unread) and a barrier separating no
  // communication: both V-rules report at Warning severity, so the report
  // stays clean() — lint never fails the mclsan --all gate.
  KernelIr ir;
  ir.body.trip_count = 64;
  ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 1"));
  ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 2"));
  ir.body.stmts.push_back(barrier_stmt());
  ir.body.stmts.push_back(store(ref(1), {}, "b[i] = 3"));
  ir.arrays = {{.array = 0, .arg_index = 0, .extent = 64},
               {.array = 1, .arg_index = 1, .extent = 64}};
  const san::Report r = san::analyze_kernel("lint-demo", ir);
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(r.has_rule(Rule::V1DeadStore)) << r.to_string();
  EXPECT_TRUE(r.has_rule(Rule::V2RedundantBarrier)) << r.to_string();
  for (const san::Diagnostic& d : r.diagnostics) {
    if (d.rule == Rule::V1DeadStore || d.rule == Rule::V2RedundantBarrier) {
      EXPECT_EQ(d.severity, san::Severity::Warning) << d.to_string();
    }
  }
}

TEST(SanStatic, Mbench2StaysSpmdLegalButLoopIllegal) {
  // Fig 11's FMUL body: the SPMD model vectorizes it (no inter-item race),
  // the loop model refuses (RMW chain through a[i]); mclsan agrees with the
  // SPMD verdict — no race between distinct workitems.
  const auto& benches = apps::all_mbenches();
  const auto it = std::find_if(benches.begin(), benches.end(),
                               [](const auto& b) {
                                 return std::string(b.kernel) == "mbench2";
                               });
  ASSERT_NE(it, benches.end());
  EXPECT_TRUE(veclegal::analyze(it->ir, veclegal::Model::Spmd).vectorizable);
  EXPECT_FALSE(veclegal::analyze(it->ir, veclegal::Model::Loop).vectorizable);

  const KernelIr* ir = KernelIrRegistry::instance().find("mbench2");
  ASSERT_NE(ir, nullptr);
  EXPECT_TRUE(san::analyze_kernel("mbench2", *ir).clean());
}

TEST(SanStatic, ShippedKernelsOnlyMbench5Flagged) {
  std::vector<std::string> flagged;
  for (const std::string& name : KernelIrRegistry::instance().names()) {
    if (name.rfind("san_test", 0) == 0) continue;  // this file's seeds
    const KernelIr* ir = KernelIrRegistry::instance().find(name);
    ASSERT_NE(ir, nullptr) << name;
    if (!san::analyze_kernel(name, *ir).clean()) flagged.push_back(name);
  }
  EXPECT_EQ(flagged, std::vector<std::string>{"mbench5"});
}

// ----- host-API lint -----------------------------------------------------------

TEST(SanLint, UnsetArgExecutorAndNDRange) {
  const KernelDef& def = Program::builtin().lookup("san_test_divergent");
  // MiniCL has no arity metadata, so H1 sees gaps below the highest bound
  // slot: bind arg 1, leave arg 0 unset.
  ocl::KernelArgs args;
  Buffer buf(MemFlags::ReadWrite, 64 * sizeof(float));
  args.set_buffer(1, buf);
  san::Report r = san::lint_launch(def, args, NDRange{64}, NDRange{},
                                   ExecutorKind::Fiber);
  EXPECT_TRUE(r.has_rule(Rule::H1UnsetArg));

  args.set_buffer(0, buf);
  r = san::lint_launch(def, args, NDRange{64}, NDRange{}, ExecutorKind::Fiber);
  EXPECT_TRUE(r.clean()) << r.to_string();

  // Barrier kernel on a loop executor.
  r = san::lint_launch(def, args, NDRange{64}, NDRange{}, ExecutorKind::Loop);
  EXPECT_TRUE(r.has_rule(Rule::H2BarrierExecutor));

  // Local size that does not divide the global size.
  r = san::lint_launch(def, args, NDRange{64}, NDRange{48},
                       ExecutorKind::Fiber);
  EXPECT_TRUE(r.has_rule(Rule::H3BadNDRange));
}

// ----- enqueue-time enforcement (satellite regressions) ------------------------

TEST(SanEnqueue, UnsetArgRejectedWithKernelName) {
  CpuDevice dev;
  Context ctx(dev);
  CommandQueue q(ctx);
  Kernel k = ctx.create_kernel(Program::builtin(), apps::kVectorAddKernel);
  Buffer a = ctx.create_buffer(MemFlags::ReadWrite, 64 * sizeof(float));
  Buffer c = ctx.create_buffer(MemFlags::ReadWrite, 64 * sizeof(float));
  k.set_arg(0, a);
  k.set_arg(2, c);  // arg 1 left unset (a gap — detectable without arity info)
  try {
    q.enqueue_ndrange(k, NDRange{64});
    FAIL() << "launch with unset args must throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::InvalidKernelArgs);
    EXPECT_NE(std::string(e.what()).find(apps::kVectorAddKernel),
              std::string::npos)
        << e.what();
  }
}

TEST(SanEnqueue, BarrierKernelOnLoopExecutorRejected) {
  CpuDevice dev(CpuDeviceConfig{.executor = ExecutorKind::Loop});
  Context ctx(dev);
  CommandQueue q(ctx);
  Kernel k = ctx.create_kernel(Program::builtin(), "san_test_divergent");
  Buffer buf = ctx.create_buffer(MemFlags::ReadWrite, 64 * sizeof(float));
  k.set_arg(0, buf);
  try {
    q.enqueue_ndrange(k, NDRange{64}, NDRange{16});
    FAIL() << "barrier kernel on Loop executor must throw";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::InvalidLaunch);
    EXPECT_NE(std::string(e.what()).find("san_test_divergent"),
              std::string::npos)
        << e.what();
  }
}

// ----- num_groups regression ---------------------------------------------------

TEST(NumGroups, RoundsUpWithPartialFinalGroup) {
  WorkItemCtx item;
  CtxAccess::set_sizes(item, NDRange{10}, NDRange{4});
  EXPECT_EQ(item.num_groups(0), 3u);  // was 2 with truncating division
  EXPECT_EQ(item.num_groups(1), 1u);

  ocl::WorkGroupCtx group;
  CtxAccess::init_group(group, NDRange{10, 6}, NDRange{4, 4}, nullptr);
  EXPECT_EQ(group.num_groups(0), 3u);
  EXPECT_EQ(group.num_groups(1), 2u);
}

// ----- dynamic mode: the Checked executor --------------------------------------

CpuDevice checked_device() {
  return CpuDevice(
      CpuDeviceConfig{.threads = 1, .executor = ExecutorKind::Checked});
}

/// Runs `kernel` under the Checked executor, expecting a SanitizerViolation
/// whose message mentions `expect_tag` (e.g. "[P1]").
template <typename Setup>
void expect_violation(const std::string& kernel, const char* expect_tag,
                      const NDRange& global, const NDRange& local,
                      Setup&& setup) {
  CpuDevice dev = checked_device();
  Context ctx(dev);
  CommandQueue q(ctx);
  Kernel k = ctx.create_kernel(Program::builtin(), kernel);
  std::vector<Buffer> buffers;
  setup(ctx, k, buffers);
  try {
    q.enqueue_ndrange(k, global, local);
    FAIL() << kernel << ": expected a SanitizerViolation";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::SanitizerViolation) << e.what();
    EXPECT_NE(std::string(e.what()).find(expect_tag), std::string::npos)
        << e.what();
  }
}

TEST(SanChecked, CatchesBarrierDivergence) {
  expect_violation("san_test_divergent", "[P1]", NDRange{128}, NDRange{16},
                   [](Context& ctx, Kernel& k, std::vector<Buffer>& bufs) {
                     bufs.push_back(ctx.create_buffer(
                         MemFlags::ReadWrite, 128 * sizeof(float)));
                     k.set_arg(0, bufs.back());
                   });
}

TEST(SanChecked, CatchesReadOnlyBufferWrite) {
  expect_violation("san_test_write_arg0", "[W1]", NDRange{64}, NDRange{},
                   [](Context& ctx, Kernel& k, std::vector<Buffer>& bufs) {
                     bufs.push_back(ctx.create_buffer(MemFlags::ReadOnly,
                                                      64 * sizeof(float)));
                     k.set_arg(0, bufs.back());
                   });
}

TEST(SanChecked, CatchesLocalOverflow) {
  expect_violation("san_test_local_overflow", "[M1]", NDRange{64}, NDRange{16},
                   [](Context& ctx, Kernel& k, std::vector<Buffer>& bufs) {
                     bufs.push_back(ctx.create_buffer(MemFlags::ReadWrite,
                                                      64 * sizeof(float)));
                     k.set_arg(0, bufs.back());
                     k.set_arg_local(1, 8 * sizeof(float));
                   });
}

TEST(SanChecked, CatchesMbench5RaceViaIrReplay) {
  const std::size_t n = 1024;  // descriptor extents assume the nominal trip
  expect_violation("mbench5", "[S3]", NDRange{n}, NDRange{},
                   [n](Context& ctx, Kernel& k, std::vector<Buffer>& bufs) {
                     bufs.push_back(ctx.create_buffer(
                         MemFlags::ReadWrite, (3 * n + 1) * sizeof(float)));
                     bufs.push_back(ctx.create_buffer(MemFlags::ReadOnly,
                                                      n * sizeof(float)));
                     bufs.push_back(ctx.create_buffer(MemFlags::ReadWrite,
                                                      2 * n * sizeof(float)));
                     k.set_arg(0, bufs[0]);
                     k.set_arg(1, bufs[1]);
                     k.set_arg(2, bufs[2]);
                     k.set_arg(3, 1.5f);
                   });
}

TEST(SanChecked, CleanKernelsPassAndProduceCorrectOutput) {
  for (const char* name : {"square", "san_test_uniform_barrier"}) {
    CpuDevice dev = checked_device();
    Context ctx(dev);
    CommandQueue q(ctx);
    Kernel k = ctx.create_kernel(Program::builtin(), name);
    const std::size_t n = 256;
    Buffer a = ctx.create_buffer(MemFlags::ReadWrite, n * sizeof(float));
    std::vector<float> init(n, 3.0f);
    q.enqueue_write_buffer(a, 0, n * sizeof(float), init.data());
    k.set_arg(0, a);
    if (std::string(name) == "square") {
      // square reads arg 0, writes arg 1.
      Buffer out = ctx.create_buffer(MemFlags::ReadWrite, n * sizeof(float));
      k.set_arg(1, out);
      EXPECT_NO_THROW(q.enqueue_ndrange(k, NDRange{n}, NDRange{64}));
      std::vector<float> got(n, 0.0f);
      q.enqueue_read_buffer(out, 0, n * sizeof(float), got.data());
      EXPECT_EQ(got[7], 9.0f);
    } else {
      EXPECT_NO_THROW(q.enqueue_ndrange(k, NDRange{n}, NDRange{64}));
    }
  }
}

TEST(SanChecked, ReportsCheckedAsExecutorUsed) {
  CpuDevice dev = checked_device();
  const KernelDef& def = Program::builtin().lookup("square");
  ocl::KernelArgs args;
  Buffer in(MemFlags::ReadOnly, 64 * sizeof(float));
  Buffer out(MemFlags::ReadWrite, 64 * sizeof(float));
  args.set_buffer(0, in);
  args.set_buffer(1, out);
  const auto result = dev.launch(def, args, NDRange{64}, NDRange{});
  EXPECT_EQ(result.executor_used, ExecutorKind::Checked);
}

TEST(SanChecked, SlowdownStaysBounded) {
  // The CLI's --slowdown mode tracks the real <10x budget on the 1M-element
  // kernel; this regression keeps a generous bound so CI timing noise (and
  // instrumented builds) don't flake.
  const KernelDef& def = Program::builtin().lookup("square");
  const std::size_t n = 1 << 18;
  Buffer in(MemFlags::ReadOnly, n * sizeof(float));
  Buffer out(MemFlags::ReadWrite, n * sizeof(float));
  ocl::KernelArgs args;
  args.set_buffer(0, in);
  args.set_buffer(1, out);
  auto best_of = [&](ExecutorKind kind) {
    CpuDevice dev(CpuDeviceConfig{.threads = 1, .executor = kind});
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, dev.launch(def, args, NDRange{n}, NDRange{}).seconds);
    }
    return best;
  };
  const double loop_s = best_of(ExecutorKind::Loop);
  const double checked_s = best_of(ExecutorKind::Checked);
  EXPECT_LT(checked_s, 50.0 * loop_s + 0.02) << "loop " << loop_s
                                             << "s checked " << checked_s << "s";
}

}  // namespace
}  // namespace mcl
