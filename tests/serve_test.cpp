// mclserve tests: admission control and backpressure, weighted-fair-queueing
// starvation regression, batching/fusion, kernel-descriptor caching,
// cancellation and pending-phase timeouts, and a multi-tenant dependency
// stress run (the `serve` label is in the plain and TSan tiers).
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "ocl/queue.hpp"
#include "serve/serve.hpp"

namespace mcl::serve {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kN = 64;

struct ServeFixture {
  ocl::CpuDevice dev{ocl::CpuDeviceConfig{.threads = 2}};
  ocl::Context ctx{dev};
};

LaunchSpec square_launch(ocl::Buffer& in, ocl::Buffer& out, std::size_t items,
                         std::size_t offset_0 = 0) {
  LaunchSpec spec;
  spec.kernel = "square";
  spec.args = {ArgSpec::buf(in), ArgSpec::buf(out)};
  spec.global = ocl::NDRange{items};
  if (offset_0 != 0) spec.offset = ocl::NDRange{offset_0};
  return spec;
}

/// Manual-mode helper: spin until every forwarded command retired (the
/// in-flight window is free again). Commands on the CPU device always
/// terminate, so the loop is bounded by the test timeout.
void drain_in_flight(Server& server) {
  while (server.stats().in_flight != 0) std::this_thread::yield();
}

// ----- roundtrip -----------------------------------------------------------------

TEST(Serve, RoundtripWriteLaunchRead) {
  ServeFixture f;
  Server server(f.ctx);
  Session s = server.create_session({.name = "t0"});

  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);
  std::vector<float> host_in(kN), host_out(kN, 0.0f);
  for (std::size_t i = 0; i < kN; ++i) host_in[i] = static_cast<float>(i);

  Ticket w = s.submit_write(in, 0, kN * 4, host_in.data());
  Ticket l = s.submit(square_launch(in, out, kN), {w});
  Ticket r = s.submit_read(out, 0, kN * 4, host_out.data(), {l});
  r.wait();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(host_out[i], host_in[i] * host_in[i]) << i;
  }
  EXPECT_EQ(r.status(), core::Status::Success);
  s.finish();
  const SessionStats st = s.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.outstanding, 0u);
}

TEST(Serve, UnknownKernelFailsAtSubmit) {
  ServeFixture f;
  Server server(f.ctx);
  Session s = server.create_session({.name = "t0"});
  LaunchSpec spec;
  spec.kernel = "serve_no_such_kernel";
  spec.global = ocl::NDRange{1};
  try {
    s.submit(std::move(spec));
    FAIL() << "expected InvalidKernelName";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::InvalidKernelName);
  }
}

TEST(Serve, KernelDescriptorCacheCountsHits) {
  ServeFixture f;
  Server server(f.ctx);
  Session s = server.create_session({.name = "t0"});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);
  s.submit(square_launch(in, out, kN)).wait();
  s.submit(square_launch(in, out, kN)).wait();
  s.finish();
  const SessionStats st = s.stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
}

// ----- admission control / backpressure ------------------------------------------

TEST(Serve, RejectPolicyBouncesAtDepth) {
  ServeFixture f;
  // Manual mode: nothing dispatches, so admitted requests stay pending and
  // the depth bound is what is being observed.
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session({.name = "t0",
                                     .max_queue_depth = 2,
                                     .admission = AdmissionPolicy::Reject});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  Ticket a = s.submit(square_launch(in, out, kN));
  Ticket b = s.submit(square_launch(in, out, kN));
  try {
    s.submit(square_launch(in, out, kN));
    FAIL() << "expected OutOfResources";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::OutOfResources);
  }
  EXPECT_FALSE(s.try_submit(square_launch(in, out, kN)).has_value());

  const SessionStats st = s.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.rejected, 2u);
  EXPECT_EQ(st.outstanding, 2u);

  // Free the stream so the destructor's cancel path is also exercised on a
  // known state (both still pending).
  EXPECT_TRUE(server.cancel(a));
  EXPECT_TRUE(server.cancel(b));
}

TEST(Serve, BlockPolicyAppliesBackpressureThenResumes) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session({.name = "t0", .max_queue_depth = 1});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  Ticket a = s.submit(square_launch(in, out, kN));
  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    Ticket b = s.submit(square_launch(in, out, kN));  // blocks: depth 1
    admitted.store(true);
    EXPECT_TRUE(b.valid());
  });
  std::this_thread::sleep_for(30ms);
  // Still blocked: depth 1, nothing dispatched. outstanding never exceeds
  // the configured bound — offered load does not grow server memory.
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(s.stats().outstanding, 1u);

  EXPECT_TRUE(server.cancel(a));  // frees the slot; the waiter admits
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(s.stats().outstanding, 1u);
  EXPECT_EQ(s.stats().submitted, 2u);
}

// ----- cancellation / timeout ----------------------------------------------------

TEST(Serve, CancelPendingCompletesTicketCancelled) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session({.name = "t0"});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  Ticket a = s.submit(square_launch(in, out, kN));
  EXPECT_TRUE(server.cancel(a));
  EXPECT_TRUE(a.complete());
  EXPECT_EQ(a.status(), core::Status::Cancelled);
  try {
    a.wait();
    FAIL() << "expected Cancelled";
  } catch (const core::Error& e) {
    EXPECT_EQ(e.status(), core::Status::Cancelled);
  }
  EXPECT_FALSE(server.cancel(a));  // already done
  EXPECT_EQ(s.stats().cancelled, 1u);
}

TEST(Serve, CancellationPropagatesToDependents) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session({.name = "t0"});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  Ticket a = s.submit(square_launch(in, out, kN));
  Ticket b = s.submit(square_launch(in, out, kN), {a});
  EXPECT_TRUE(server.cancel(a));
  // b's dependency is now terminal-with-failure, so the scheduler forwards
  // it and the event graph's failed-dependency propagation fails it with
  // the dep's Status — the same path a failed kernel takes.
  while (!b.complete()) {
    server.step();
    std::this_thread::yield();
  }
  EXPECT_EQ(b.status(), core::Status::Cancelled);
  EXPECT_EQ(s.stats().failed, 1u);
  EXPECT_EQ(s.stats().cancelled, 1u);
}

TEST(Serve, PendingPhaseTimeoutCancels) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session(
      {.name = "t0", .default_timeout_ns = 1'000'000});  // 1 ms
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  Ticket a = s.submit(square_launch(in, out, kN));
  std::this_thread::sleep_for(5ms);
  server.step();  // deadline pass runs before dispatch
  EXPECT_TRUE(a.complete());
  EXPECT_EQ(a.status(), core::Status::Cancelled);
  EXPECT_EQ(s.stats().timed_out, 1u);
  EXPECT_EQ(s.stats().outstanding, 0u);
}

TEST(Serve, TicketWaitForTimesOutWhilePending) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session({.name = "t0"});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);
  Ticket a = s.submit(square_launch(in, out, kN));
  EXPECT_FALSE(a.wait_for(2ms));  // never dispatched in manual mode
  EXPECT_TRUE(server.cancel(a));
}

// ----- weighted fair queueing ----------------------------------------------------

/// Starvation regression: with a heavy tenant holding a deep backlog, a
/// light tenant of equal weight still gets every other dispatch slot — its
/// K requests complete after at most K+1 heavy dispatches, not after the
/// heavy backlog drains.
TEST(Serve, WfqEqualWeightsPreventStarvation) {
  ServeFixture f;
  Server server(f.ctx, {.max_in_flight = 1, .manual_schedule = true});
  Session heavy =
      server.create_session({.name = "heavy", .max_queue_depth = 256});
  Session light =
      server.create_session({.name = "light", .max_queue_depth = 256});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  constexpr std::size_t kHeavyBacklog = 64;
  constexpr std::size_t kLightJobs = 8;
  for (std::size_t i = 0; i < kHeavyBacklog; ++i) {
    heavy.submit(square_launch(in, out, kN));
  }
  for (std::size_t i = 0; i < kLightJobs; ++i) {
    light.submit(square_launch(in, out, kN));
  }

  while (light.stats().completed < kLightJobs) {
    ASSERT_GT(server.step(), 0u) << "scheduler stalled";
    drain_in_flight(server);
  }
  // Equal weights, equal cost: dispatches alternate, so the heavy tenant
  // got at most one extra slot while the light tenant drained.
  EXPECT_LE(heavy.stats().forwarded, kLightJobs + 1);
  // No finish(): in manual mode nothing steps the remaining heavy backlog;
  // ~Server cancels it.
}

TEST(Serve, WfqShareTracksWeights) {
  ServeFixture f;
  Server server(f.ctx, {.max_in_flight = 1, .manual_schedule = true});
  Session w3 = server.create_session(
      {.name = "w3", .weight = 3.0, .max_queue_depth = 256});
  Session w1 = server.create_session(
      {.name = "w1", .weight = 1.0, .max_queue_depth = 256});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);

  for (std::size_t i = 0; i < 60; ++i) {
    w3.submit(square_launch(in, out, kN));
    w1.submit(square_launch(in, out, kN));
  }
  std::size_t dispatches = 0;
  while (dispatches < 40) {
    dispatches += server.step();
    drain_in_flight(server);
  }
  // Expected split while both stay backlogged: 30 / 10. Allow slack for the
  // tag tie-breaks at round boundaries.
  EXPECT_GE(w3.stats().forwarded, 27u);
  EXPECT_LE(w1.stats().forwarded, 13u);
  // No finish(): the 80 still-pending requests are cancelled by ~Server.
}

// ----- batching ------------------------------------------------------------------

TEST(Serve, BatchingFusesContiguousSmallLaunches) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session(
      {.name = "t0", .max_queue_depth = 64, .batch_max_items = 512});
  constexpr std::size_t kTotal = 512;
  constexpr std::size_t kChunk = 64;
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kTotal * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kTotal * 4);
  for (std::size_t i = 0; i < kTotal; ++i) {
    in.as<float>()[i] = static_cast<float>(i % 97);
  }

  std::vector<Ticket> tickets;
  for (std::size_t off = 0; off < kTotal; off += kChunk) {
    tickets.push_back(s.submit(square_launch(in, out, kChunk, off)));
  }
  server.step();
  for (Ticket& t : tickets) t.wait();
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(out.as<float>()[i], in.as<float>()[i] * in.as<float>()[i]) << i;
  }
  const SessionStats st = s.stats();
  EXPECT_EQ(st.forwarded, 1u);  // all eight launches fused into one command
  EXPECT_EQ(st.batched, 8u);
  EXPECT_EQ(st.completed, 8u);
  EXPECT_EQ(server.stats().fused_requests, 7u);
}

TEST(Serve, BatchingStopsAtNonContiguousOffset) {
  ServeFixture f;
  Server server(f.ctx, {.manual_schedule = true});
  Session s = server.create_session(
      {.name = "t0", .max_queue_depth = 64, .batch_max_items = 512});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, 256 * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, 256 * 4);

  Ticket a = s.submit(square_launch(in, out, kN, 0));
  Ticket b = s.submit(square_launch(in, out, kN, 128));  // gap: not fusable
  server.step();
  drain_in_flight(server);
  server.step();
  a.wait();
  b.wait();
  EXPECT_EQ(s.stats().forwarded, 2u);
  EXPECT_EQ(s.stats().batched, 0u);
}

// ----- in-order streams ----------------------------------------------------------

TEST(Serve, InOrderTenantSerializesWithoutExplicitDeps) {
  ServeFixture f;
  Server server(f.ctx);
  Session s = server.create_session({.name = "t0", .in_order = true});
  ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);
  std::vector<float> host_in(kN, 3.0f), host_out(kN, 0.0f);

  // No dep tickets: the tenant's in-order stream is the ordering.
  s.submit_write(in, 0, kN * 4, host_in.data());
  s.submit(square_launch(in, out, kN));
  Ticket r = s.submit_read(out, 0, kN * 4, host_out.data());
  r.wait();
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(host_out[i], 9.0f) << i;
  s.finish();
}

// ----- multi-tenant stress -------------------------------------------------------

/// Eight tenants, each a client thread running dependent
/// write -> square -> read chains through bounded Block-admission streams.
/// Exercises admission blocking, WFQ under concurrency, the dep-wake path,
/// and completion accounting; runs under TSan via the `serve` label.
TEST(Serve, MultiTenantStressNoLostTickets) {
  ServeFixture f;
  Server server(f.ctx);
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kIters = 50;

  std::vector<Session> sessions;
  for (std::size_t t = 0; t < kTenants; ++t) {
    sessions.push_back(server.create_session(
        {.name = "tenant" + std::to_string(t),
         .weight = static_cast<double>(1 + t % 3),
         .max_queue_depth = 16}));
  }

  std::vector<std::thread> clients;
  std::vector<int> failures(kTenants, 0);
  for (std::size_t t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      Session s = sessions[t];
      ocl::Buffer in(ocl::MemFlags::ReadWrite, kN * 4);
      ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * 4);
      std::vector<float> host_in(kN), host_out(kN);
      Ticket last, prev_write;
      for (std::size_t i = 0; i < kIters; ++i) {
        // The previous write's async memcpy may still be reading host_in;
        // the chain deps below only order the device-side commands.
        if (prev_write.valid()) prev_write.wait();
        for (std::size_t j = 0; j < kN; ++j) {
          host_in[j] = static_cast<float>(t + i + j);
        }
        std::vector<Ticket> chain_dep;
        if (last.valid()) chain_dep.push_back(last);
        Ticket w = s.submit_write(in, 0, kN * 4, host_in.data(), chain_dep);
        prev_write = w;
        Ticket l = s.submit(square_launch(in, out, kN), {w});
        last = s.submit_read(out, 0, kN * 4, host_out.data(), {l});
      }
      last.wait();
      for (std::size_t j = 0; j < kN; ++j) {
        const float x = static_cast<float>(t + (kIters - 1) + j);
        if (host_out[j] != x * x) failures[t]++;
      }
      s.finish();
    });
  }
  for (std::thread& c : clients) c.join();

  const ServerStats st = server.stats();
  EXPECT_EQ(st.in_flight, 0u);
  for (std::size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(failures[t], 0) << "tenant " << t;
    const SessionStats& ts = st.tenants[t];
    EXPECT_EQ(ts.submitted, kIters * 3);
    EXPECT_EQ(ts.completed, kIters * 3);
    EXPECT_EQ(ts.failed, 0u);
    EXPECT_EQ(ts.outstanding, 0u);
  }
}

// ----- config validation ---------------------------------------------------------

TEST(Serve, RejectsInvalidTenantConfig) {
  ServeFixture f;
  Server server(f.ctx);
  EXPECT_THROW((void)server.create_session({.name = ""}), core::Error);
  EXPECT_THROW((void)server.create_session({.name = "t", .weight = 0.0}),
               core::Error);
  EXPECT_THROW(
      (void)server.create_session({.name = "t", .max_queue_depth = 0}),
      core::Error);
  const Session a = server.create_session({.name = "dup"});
  EXPECT_EQ(a.tenant_name(), "dup");
  EXPECT_THROW((void)server.create_session({.name = "dup"}), core::Error);
}

}  // namespace
}  // namespace mcl::serve
