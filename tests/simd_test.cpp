#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "simd/math.hpp"
#include "testseed.hpp"
#include "simd/vec.hpp"

namespace mcl::simd {
namespace {

// The suite exercises every compiled width via typed tests.
template <typename T>
class VecTest : public ::testing::Test {};

template <int W>
struct WidthTag {
  static constexpr int width = W;
};

#if defined(__AVX__)
using Widths = ::testing::Types<WidthTag<1>, WidthTag<4>, WidthTag<8>>;
#elif defined(__SSE2__)
using Widths = ::testing::Types<WidthTag<1>, WidthTag<4>>;
#else
using Widths = ::testing::Types<WidthTag<1>>;
#endif
TYPED_TEST_SUITE(VecTest, Widths);

template <int W>
std::vector<float> to_vec(vfloat<W> v) {
  std::vector<float> out(W);
  for (int i = 0; i < W; ++i) out[i] = v.lane(i);
  return out;
}

TYPED_TEST(VecTest, LoadStoreRoundtrip) {
  constexpr int W = TypeParam::width;
  alignas(64) float in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = static_cast<float>(i) * 1.5f - 2.0f;
  vfloat<W>::load_aligned(in).store_aligned(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(in[i], out[i]);
}

TYPED_TEST(VecTest, BroadcastAndIota) {
  constexpr int W = TypeParam::width;
  const vfloat<W> b{3.25f};
  for (int i = 0; i < W; ++i) EXPECT_EQ(b.lane(i), 3.25f);
  const vfloat<W> io = vfloat<W>::iota(10.0f);
  for (int i = 0; i < W; ++i) EXPECT_EQ(io.lane(i), 10.0f + static_cast<float>(i));
}

TYPED_TEST(VecTest, ArithmeticMatchesScalar) {
  constexpr int W = TypeParam::width;
  core::Rng rng(mcl::test::seed(99));
  for (int trial = 0; trial < 50; ++trial) {
    alignas(64) float a[W], b[W];
    for (int i = 0; i < W; ++i) {
      a[i] = rng.next_float(-10.0f, 10.0f);
      b[i] = rng.next_float(0.5f, 10.0f);
    }
    const auto va = vfloat<W>::load_aligned(a);
    const auto vb = vfloat<W>::load_aligned(b);
    for (int i = 0; i < W; ++i) {
      EXPECT_FLOAT_EQ((va + vb).lane(i), a[i] + b[i]);
      EXPECT_FLOAT_EQ((va - vb).lane(i), a[i] - b[i]);
      EXPECT_FLOAT_EQ((va * vb).lane(i), a[i] * b[i]);
      EXPECT_FLOAT_EQ((va / vb).lane(i), a[i] / b[i]);
      EXPECT_FLOAT_EQ(min(va, vb).lane(i), std::fmin(a[i], b[i]));
      EXPECT_FLOAT_EQ(max(va, vb).lane(i), std::fmax(a[i], b[i]));
      EXPECT_FLOAT_EQ(abs(va).lane(i), std::fabs(a[i]));
    }
  }
}

TYPED_TEST(VecTest, FmaddMatches) {
  constexpr int W = TypeParam::width;
  const auto a = vfloat<W>::iota(1.0f);
  const vfloat<W> b{2.0f}, c{0.5f};
  for (int i = 0; i < W; ++i) {
    EXPECT_NEAR(fmadd(a, b, c).lane(i), (1.0f + i) * 2.0f + 0.5f, 1e-6);
  }
}

TYPED_TEST(VecTest, SqrtMatches) {
  constexpr int W = TypeParam::width;
  const auto x = vfloat<W>::iota(1.0f);
  for (int i = 0; i < W; ++i) {
    EXPECT_NEAR(sqrt(x).lane(i), std::sqrt(1.0f + i), 1e-6);
  }
}

TYPED_TEST(VecTest, CompareAndSelect) {
  constexpr int W = TypeParam::width;
  const auto a = vfloat<W>::iota(0.0f);       // 0, 1, 2, ...
  const vfloat<W> threshold{1.5f};
  const auto mask = cmp_lt(a, threshold);     // lanes 0,1 true
  const auto sel = select(mask, vfloat<W>{-1.0f}, vfloat<W>{+1.0f});
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ(sel.lane(i), i < 2 ? -1.0f : 1.0f) << "lane " << i;
  }
  const auto gt = cmp_gt(a, threshold);
  const auto sel2 = select(gt, vfloat<W>{9.0f}, vfloat<W>{3.0f});
  for (int i = 0; i < W; ++i) EXPECT_EQ(sel2.lane(i), i > 1 ? 9.0f : 3.0f);
}

TYPED_TEST(VecTest, FloorMatches) {
  constexpr int W = TypeParam::width;
  alignas(64) float vals[W];
  for (int i = 0; i < W; ++i) vals[i] = static_cast<float>(i) - 1.75f;
  const auto f = floor(vfloat<W>::load_aligned(vals));
  for (int i = 0; i < W; ++i) EXPECT_EQ(f.lane(i), std::floor(vals[i]));
}

TYPED_TEST(VecTest, ReduceAdd) {
  constexpr int W = TypeParam::width;
  const auto x = vfloat<W>::iota(1.0f);
  EXPECT_FLOAT_EQ(x.reduce_add(), static_cast<float>(W * (W + 1)) / 2.0f);
}

// --- math functions: accuracy vs libm across widths --------------------------

TYPED_TEST(VecTest, ExpAccuracy) {
  constexpr int W = TypeParam::width;
  core::Rng rng(mcl::test::seed(7));
  for (int trial = 0; trial < 200; ++trial) {
    alignas(64) float x[W];
    for (int i = 0; i < W; ++i) x[i] = rng.next_float(-80.0f, 80.0f);
    const auto r = vexp(vfloat<W>::load_aligned(x));
    for (int i = 0; i < W; ++i) {
      const double expect = std::exp(static_cast<double>(x[i]));
      EXPECT_NEAR(r.lane(i) / expect, 1.0, 3e-6) << "x=" << x[i];
    }
  }
}

TYPED_TEST(VecTest, ExpClampsExtremes) {
  constexpr int W = TypeParam::width;
  EXPECT_TRUE(std::isfinite(vexp(vfloat<W>{1000.0f}).lane(0)));
  EXPECT_NEAR(vexp(vfloat<W>{-1000.0f}).lane(0), 0.0f, 1e-30);
}

TYPED_TEST(VecTest, LogAccuracy) {
  constexpr int W = TypeParam::width;
  core::Rng rng(mcl::test::seed(8));
  for (int trial = 0; trial < 200; ++trial) {
    alignas(64) float x[W];
    for (int i = 0; i < W; ++i) x[i] = rng.next_float(1e-5f, 1e5f);
    const auto r = vlog(vfloat<W>::load_aligned(x));
    for (int i = 0; i < W; ++i) {
      const double expect = std::log(static_cast<double>(x[i]));
      EXPECT_NEAR(r.lane(i), expect, 2e-4 * std::fabs(expect) + 2e-6)
          << "x=" << x[i];
    }
  }
}

TYPED_TEST(VecTest, SinCosAccuracy) {
  constexpr int W = TypeParam::width;
  core::Rng rng(mcl::test::seed(9));
  for (int trial = 0; trial < 200; ++trial) {
    alignas(64) float x[W];
    for (int i = 0; i < W; ++i) x[i] = rng.next_float(-50.0f, 50.0f);
    vfloat<W> s, c;
    vsincos(vfloat<W>::load_aligned(x), s, c);
    for (int i = 0; i < W; ++i) {
      EXPECT_NEAR(s.lane(i), std::sin(static_cast<double>(x[i])), 2e-5)
          << "x=" << x[i];
      EXPECT_NEAR(c.lane(i), std::cos(static_cast<double>(x[i])), 2e-5)
          << "x=" << x[i];
    }
  }
}

TYPED_TEST(VecTest, SinCosPythagorean) {
  constexpr int W = TypeParam::width;
  core::Rng rng(mcl::test::seed(10));
  for (int trial = 0; trial < 100; ++trial) {
    const vfloat<W> x{rng.next_float(-100.0f, 100.0f)};
    vfloat<W> s, c;
    vsincos(x, s, c);
    for (int i = 0; i < W; ++i) {
      EXPECT_NEAR(s.lane(i) * s.lane(i) + c.lane(i) * c.lane(i), 1.0f, 1e-4);
    }
  }
}

TYPED_TEST(VecTest, NormalCdfProperties) {
  constexpr int W = TypeParam::width;
  // Known points.
  EXPECT_NEAR(normal_cdf(vfloat<W>{0.0f}).lane(0), 0.5, 1e-6);
  EXPECT_NEAR(normal_cdf(vfloat<W>{1.0f}).lane(0), 0.8413447, 1e-5);
  EXPECT_NEAR(normal_cdf(vfloat<W>{-1.0f}).lane(0), 0.1586553, 1e-5);
  EXPECT_NEAR(normal_cdf(vfloat<W>{6.0f}).lane(0), 1.0, 1e-6);
  // Symmetry: CND(d) + CND(-d) == 1.
  core::Rng rng(mcl::test::seed(11));
  for (int trial = 0; trial < 100; ++trial) {
    const float d = rng.next_float(-5.0f, 5.0f);
    const float sum = normal_cdf(vfloat<W>{d}).lane(0) +
                      normal_cdf(vfloat<W>{-d}).lane(0);
    EXPECT_NEAR(sum, 1.0f, 2e-6) << "d=" << d;
  }
  // Monotonicity on a grid.
  float prev = 0.0f;
  for (float d = -6.0f; d <= 6.0f; d += 0.25f) {
    const float v = normal_cdf(vfloat<W>{d}).lane(0);
    EXPECT_GE(v, prev - 1e-6f);
    prev = v;
  }
}

TEST(Simd, NativeWidthConsistent) {
  EXPECT_GE(kNativeFloatWidth, 1);
  EXPECT_EQ(vfloatn::width, kNativeFloatWidth);
  EXPECT_NE(native_isa_name(), nullptr);
}

}  // namespace
}  // namespace mcl::simd
