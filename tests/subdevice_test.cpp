// Sub-device sharding tests (run under TSan via the `subdev` ctest label).
//
// Covers the uniform multi-device layer of the CL shim and the pool-sharding
// machinery under it:
//  - partition spans are disjoint and cover the pool,
//  - work launched on a shard executes only on that shard's workers
//    (no cross-shard stealing),
//  - two sub-device queues created through clCreateSubDevices run
//    concurrently without races and produce correct results,
//  - clReleaseDevice on a sub-device with live queues is safe (the queue and
//    context keep the shard alive until the last release),
//  - tuner entries are keyed on the SUB-DEVICE width, not the parent pool
//    width (regression for the shard-width keying fix).
//
// ctest sets MCL_CPU_THREADS=4 so the pool is partitionable even on
// single-core CI hosts; when run by hand on a narrower pool the sharding
// tests skip.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <CL/cl.h>

#include "ocl/buffer.hpp"
#include "ocl/device.hpp"
#include "ocl/kernel.hpp"
#include "ocl/platform.hpp"
#include "ocl/types.hpp"
#include "tune/tune.hpp"

namespace {

using mcl::ocl::CpuDevice;
using mcl::ocl::CpuSubDevice;
using mcl::ocl::KernelArgs;
using mcl::ocl::KernelDef;
using mcl::ocl::KernelRegistrar;
using mcl::ocl::NDRange;
using mcl::ocl::Platform;
using mcl::ocl::WorkItemCtx;

CpuDevice& cpu() { return Platform::default_instance().cpu(); }

/// Records the pool worker index that executed each item (-1 when the item
/// ran on the enqueuing thread, which participates in its shard's launches).
void record_worker(const KernelArgs& a, const WorkItemCtx& c) {
  // Enough work per item that the shard's pool workers actually pick up
  // batches instead of the caller draining the whole range.
  volatile int sink = 0;
  for (int i = 0; i < 4000; ++i) sink = sink + i;
  a.buffer<int>(0)[c.global_id(0)] = cpu().pool_worker_index();
}
const KernelRegistrar reg_record{
    {.name = "subdev_record_worker", .scalar = &record_worker}};

bool pool_too_narrow() { return cpu().compute_units() < 4; }

// ---------------------------------------------------------------------------

TEST(SubDevicePartition, SpansDisjointAndCoverPool) {
  if (pool_too_narrow()) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";
  const std::size_t total = static_cast<std::size_t>(cpu().compute_units());

  auto subs = cpu().partition_equally(2);
  ASSERT_EQ(total / 2, subs.size());
  std::vector<bool> covered(total, false);
  for (const auto& sub : subs) {
    auto span = sub->span();
    EXPECT_LT(span.begin, span.end);
    EXPECT_EQ(2u, span.end - span.begin);
    for (std::size_t w = span.begin; w < span.end; ++w) {
      EXPECT_FALSE(covered[w]) << "worker " << w << " in two shards";
      covered[w] = true;
    }
  }

  const std::size_t counts[] = {1, 3};
  auto uneven = cpu().partition_by_counts(counts);
  ASSERT_EQ(2u, uneven.size());
  EXPECT_EQ(1u, uneven[0]->span().end - uneven[0]->span().begin);
  EXPECT_EQ(3u, uneven[1]->span().end - uneven[1]->span().begin);
  EXPECT_LE(uneven[0]->span().end, uneven[1]->span().begin);
  EXPECT_EQ(1, uneven[0]->compute_units());
  EXPECT_EQ(3, uneven[1]->compute_units());
}

TEST(SubDevicePartition, ShardExecutionStaysInSpan) {
  if (pool_too_narrow()) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";
  auto subs = cpu().partition_equally(2);
  ASSERT_GE(subs.size(), 2u);
  ASSERT_TRUE(mcl::ocl::Program::builtin().contains("subdev_record_worker"));
  const KernelDef& def =
      mcl::ocl::Program::builtin().lookup("subdev_record_worker");

  constexpr std::size_t kItems = 1 << 12;
  std::vector<std::vector<int>> out(2, std::vector<int>(kItems, -2));

  // Launch on both shards at once; each shard must only ever touch its own
  // workers, so the two launches cannot contend (TSan verifies).
  std::vector<std::thread> hosts;
  for (int s = 0; s < 2; ++s) {
    hosts.emplace_back([&, s] {
      mcl::ocl::Buffer buf(mcl::ocl::MemFlags::UseHostPtr,
                           kItems * sizeof(int), out[s].data());
      KernelArgs args;
      args.set_buffer(0, buf);
      for (int rep = 0; rep < 4; ++rep) {
        subs[s]->launch(def, args, NDRange{kItems}, NDRange{}, NDRange{});
      }
    });
  }
  for (auto& h : hosts) h.join();

  std::set<int> seen[2];
  for (int s = 0; s < 2; ++s) {
    const auto span = subs[s]->span();
    for (std::size_t i = 0; i < kItems; ++i) {
      const int w = out[s][i];
      ASSERT_NE(-2, w) << "item " << i << " never executed";
      if (w < 0) continue;  // ran on the enqueuing host thread
      EXPECT_GE(w, static_cast<int>(span.begin));
      EXPECT_LT(w, static_cast<int>(span.end));
      seen[s].insert(w);
    }
  }
  // Disjoint shards => disjoint observed worker sets.
  for (int w : seen[0]) EXPECT_EQ(0u, seen[1].count(w));
}

// ---------------------------------------------------------------------------
// Through the CL shim: clCreateSubDevices -> one context -> two queues.

struct ShimFix {
  cl_device_id root = nullptr;
  cl_device_id sub[2] = {nullptr, nullptr};
  cl_context context = nullptr;
  cl_command_queue queue[2] = {nullptr, nullptr};

  static ShimFix create() {
    ShimFix f;
    cl_platform_id platform;
    EXPECT_EQ(CL_SUCCESS, clGetPlatformIDs(1, &platform, nullptr));
    EXPECT_EQ(CL_SUCCESS, clGetDeviceIDs(platform, CL_DEVICE_TYPE_CPU, 1,
                                         &f.root, nullptr));
    cl_device_partition_property props[] = {CL_DEVICE_PARTITION_EQUALLY, 2,
                                            0};
    cl_uint n = 0;
    EXPECT_EQ(CL_SUCCESS, clCreateSubDevices(f.root, props, 2, f.sub, &n));
    EXPECT_GE(n, 2u);
    cl_int err = CL_SUCCESS;
    f.context = clCreateContext(nullptr, 2, f.sub, nullptr, nullptr, &err);
    EXPECT_EQ(CL_SUCCESS, err);
    for (int i = 0; i < 2; ++i) {
      f.queue[i] = clCreateCommandQueue(f.context, f.sub[i],
                                        CL_QUEUE_PROFILING_ENABLE, &err);
      EXPECT_EQ(CL_SUCCESS, err);
    }
    return f;
  }
};

TEST(SubDeviceShim, ConcurrentQueuesComputeCorrectly) {
  if (pool_too_narrow()) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";
  ShimFix f = ShimFix::create();

  const char* src =
      "__kernel void square(__global const float* in, __global float* out) "
      "{ out[get_global_id(0)] = in[get_global_id(0)] * "
      "in[get_global_id(0)]; }";
  cl_int err = CL_SUCCESS;
  cl_program program =
      clCreateProgramWithSource(f.context, 1, &src, nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS,
            clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr));

  constexpr size_t kN = 1 << 14;
  std::vector<float> in(kN);
  for (size_t i = 0; i < kN; ++i) in[i] = static_cast<float>(i % 256);

  // Each shard gets its own kernel handle, buffers and queue; the host
  // threads enqueue concurrently.
  std::vector<std::vector<float>> out(2, std::vector<float>(kN, -1.0f));
  std::vector<std::thread> hosts;
  std::atomic<int> failures{0};
  for (int s = 0; s < 2; ++s) {
    hosts.emplace_back([&, s] {
      cl_int e = CL_SUCCESS;
      cl_kernel kernel = clCreateKernel(program, "square", &e);
      if (e != CL_SUCCESS) { ++failures; return; }
      cl_mem in_buf = clCreateBuffer(
          f.context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
          kN * sizeof(float), in.data(), &e);
      if (e != CL_SUCCESS) { ++failures; return; }
      cl_mem out_buf = clCreateBuffer(f.context, CL_MEM_WRITE_ONLY,
                                      kN * sizeof(float), nullptr, &e);
      if (e != CL_SUCCESS) { ++failures; return; }
      clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf);
      clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_buf);
      size_t global = kN;
      for (int rep = 0; rep < 4 && failures == 0; ++rep) {
        cl_event ev;
        if (clEnqueueNDRangeKernel(f.queue[s], kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, &ev) != CL_SUCCESS) {
          ++failures;
          break;
        }
        if (clEnqueueReadBuffer(f.queue[s], out_buf, CL_TRUE, 0,
                                kN * sizeof(float), out[s].data(), 1, &ev,
                                nullptr) != CL_SUCCESS) {
          ++failures;
        }
        clReleaseEvent(ev);
      }
      clReleaseMemObject(in_buf);
      clReleaseMemObject(out_buf);
      clReleaseKernel(kernel);
    });
  }
  for (auto& h : hosts) h.join();
  ASSERT_EQ(0, failures.load());

  for (int s = 0; s < 2; ++s) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(in[i] * in[i], out[s][i]) << "shard " << s << " item " << i;
    }
  }

  for (int i = 0; i < 2; ++i) clReleaseCommandQueue(f.queue[i]);
  clReleaseProgram(program);
  clReleaseContext(f.context);
  for (int i = 0; i < 2; ++i) clReleaseDevice(f.sub[i]);
}

TEST(SubDeviceShim, ReleaseDeviceWithLiveQueuesIsSafe) {
  if (pool_too_narrow()) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";
  ShimFix f = ShimFix::create();

  // Drop the application's device references first: the context and the
  // queues must keep the shards alive.
  ASSERT_EQ(CL_SUCCESS, clReleaseDevice(f.sub[0]));
  ASSERT_EQ(CL_SUCCESS, clReleaseDevice(f.sub[1]));

  const char* src = "__kernel void square(__global const float* a, "
                    "__global float* b) { }";
  cl_int err = CL_SUCCESS;
  cl_program program =
      clCreateProgramWithSource(f.context, 1, &src, nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  ASSERT_EQ(CL_SUCCESS,
            clBuildProgram(program, 0, nullptr, nullptr, nullptr, nullptr));
  cl_kernel kernel = clCreateKernel(program, "square", &err);
  ASSERT_EQ(CL_SUCCESS, err);

  constexpr size_t kN = 4096;
  std::vector<float> host(kN, 1.0f);
  cl_mem buf = clCreateBuffer(f.context,
                              CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR,
                              kN * sizeof(float), host.data(), &err);
  ASSERT_EQ(CL_SUCCESS, err);
  cl_mem out = clCreateBuffer(f.context, CL_MEM_READ_WRITE,
                              kN * sizeof(float), nullptr, &err);
  ASSERT_EQ(CL_SUCCESS, err);
  clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf);
  clSetKernelArg(kernel, 1, sizeof(cl_mem), &out);

  // The shards must still execute after the user refs are gone.
  size_t global = kN;
  for (int s = 0; s < 2; ++s) {
    ASSERT_EQ(CL_SUCCESS,
              clEnqueueNDRangeKernel(f.queue[s], kernel, 1, nullptr, &global,
                                     nullptr, 0, nullptr, nullptr));
    ASSERT_EQ(CL_SUCCESS, clFinish(f.queue[s]));
  }

  // Teardown in the adversarial order: queues last hold the shards.
  clReleaseMemObject(buf);
  clReleaseMemObject(out);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  ASSERT_EQ(CL_SUCCESS, clReleaseContext(f.context));
  ASSERT_EQ(CL_SUCCESS, clReleaseCommandQueue(f.queue[0]));
  ASSERT_EQ(CL_SUCCESS, clReleaseCommandQueue(f.queue[1]));
}

// ---------------------------------------------------------------------------
// Regression: tuner entries must be keyed on the SUB-DEVICE width. Two
// shards of unequal width launching the same kernel shape must produce two
// tuner entries (before the fix, both keyed on the parent pool width and
// collided in one entry).

TEST(SubDeviceTuner, EntriesKeyedOnShardWidth) {
  if (pool_too_narrow()) GTEST_SKIP() << "needs MCL_CPU_THREADS>=4";
  namespace tune = mcl::tune;
  auto& tuner = tune::Tuner::instance();
  tuner.set_mode(tune::Mode::Online);
  tuner.reset();

  const std::size_t counts[] = {1, 3};
  auto subs = cpu().partition_by_counts(counts);
  ASSERT_EQ(2u, subs.size());
  const KernelDef& def =
      mcl::ocl::Program::builtin().lookup("subdev_record_worker");

  constexpr std::size_t kItems = 1 << 10;
  std::vector<int> out(kItems, 0);
  mcl::ocl::Buffer buf(mcl::ocl::MemFlags::UseHostPtr, kItems * sizeof(int),
                       out.data());
  KernelArgs args;
  args.set_buffer(0, buf);
  for (const auto& sub : subs) {
    sub->launch(def, args, NDRange{kItems}, NDRange{}, NDRange{});
  }

  // Same kernel, same shape, different shard widths => two distinct tuner
  // entries. Before the shard-width keying fix, both launches keyed on the
  // parent pool width and collided in a single entry.
  EXPECT_EQ(2u, tuner.entry_count("subdev_record_worker"));

  tuner.reset();
  tuner.set_mode(tune::Mode::Off);
}

}  // namespace
