// Single-point RNG seeding for the test suite.
//
// Tests that want random data derive their stream seed from
// mcl::test::seed(salt). The base seed comes from the MCL_TEST_SEED
// environment variable (default 0x5eed) and is printed on the first test
// failure, so a red CI run can be replayed exactly:
//
//   MCL_TEST_SEED=<printed value> ./build/tests/<binary> --gtest_filter=...
//
// Distinct call sites should pass distinct salts so their streams stay
// decorrelated no matter what base the environment picks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace mcl::test {

/// The run-wide base seed: MCL_TEST_SEED if set (decimal or 0x-hex),
/// otherwise the historical default 0x5eed.
inline std::uint64_t seed_base() {
  static const std::uint64_t base = [] {
    if (const char* env = std::getenv("MCL_TEST_SEED")) {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return std::uint64_t{0x5eed};
  }();
  return base;
}

/// Per-stream seed: splitmix64 of base + golden-ratio-spread salt, so
/// adjacent salts land far apart in state space.
inline std::uint64_t seed(std::uint64_t salt) {
  std::uint64_t state = seed_base() + 0x9e3779b97f4a7c15ULL * (salt + 1);
  return core::splitmix64(state);
}

namespace detail {

/// Prints the active base seed once, on the first failing assertion, so the
/// run is replayable even when the seed came from the default.
class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed() || printed_) return;
    printed_ = true;
    std::fprintf(stderr,
                 "[  SEED    ] base test seed %llu; replay with "
                 "MCL_TEST_SEED=%llu\n",
                 static_cast<unsigned long long>(seed_base()),
                 static_cast<unsigned long long>(seed_base()));
  }
  bool printed_ = false;
};

inline const bool seed_reporter_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedReporter);
  return true;
}();

}  // namespace detail

}  // namespace mcl::test
