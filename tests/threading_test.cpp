#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "threading/affinity.hpp"
#include "threading/barrier.hpp"
#include "threading/fiber.hpp"
#include "threading/thread_pool.hpp"

namespace mcl::threading {
namespace {

// --- affinity ------------------------------------------------------------------

TEST(Affinity, LogicalCpuCountPositive) { EXPECT_GE(logical_cpu_count(), 1); }

TEST(Affinity, PinCurrentThreadToCpu0) {
  EXPECT_TRUE(pin_current_thread(0));
  const auto cpus = current_affinity();
  ASSERT_EQ(cpus.size(), 1u);
  EXPECT_EQ(cpus[0], 0);
}

TEST(Affinity, PinRejectsAbsurdCpu) {
  EXPECT_FALSE(pin_current_thread(-1));
  EXPECT_FALSE(pin_current_thread(1 << 20));
}

TEST(AffinityParse, SimpleList) {
  const auto cpus = parse_affinity_list("0 3 1");
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<int>{0, 3, 1}));
}

TEST(AffinityParse, RangesAndStrides) {
  EXPECT_EQ(*parse_affinity_list("1-4"), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(*parse_affinity_list("0-6:2"), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(*parse_affinity_list("0,2, 5-6"), (std::vector<int>{0, 2, 5, 6}));
}

TEST(AffinityParse, RejectsMalformed) {
  EXPECT_FALSE(parse_affinity_list("").has_value());
  EXPECT_FALSE(parse_affinity_list("a-b").has_value());
  EXPECT_FALSE(parse_affinity_list("4-1").has_value());
  EXPECT_FALSE(parse_affinity_list("1-5:0").has_value());
}

// --- barrier ---------------------------------------------------------------------

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[kPhases];
  for (auto& c : phase_counts) c.store(0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread must observe the full count.
        EXPECT_EQ(phase_counts[p].load(), kThreads);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
}

// --- thread pool ------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelRunCoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelRunChunked) {
  ThreadPool pool(2);
  constexpr std::size_t kN = 1003;  // not a multiple of the chunk
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_run(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 64);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ThreadPool, ParallelRunZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RepeatedBatchesAllComplete) {
  // Regression: successive batches reuse stack addresses; generations must
  // keep workers participating (and results exact) every time.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_run(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPool, SmallBatchesWakeSleepingWorkers) {
  // Regression for the lost-wakeup race: the batch used to be published and
  // notified without holding the pool mutex, so a worker could evaluate the
  // wait predicate, miss the notify, and sleep through the whole batch — the
  // caller then silently executed every index alone (participants == 1).
  // Each index waits (bounded) for a second participant, so a woken worker
  // always gets a chance to claim work before the batch drains.
  ThreadPool pool(2);
  int multi = 0;
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> started{0};
    const RunStats stats = pool.parallel_run(8, [&](std::size_t) {
      started.fetch_add(1, std::memory_order_relaxed);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
      while (started.load(std::memory_order_relaxed) < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    });
    if (stats.participants >= 2) ++multi;
  }
  // Allow a little scheduler noise, but sleeping through batches must not
  // be a steady-state behavior.
  EXPECT_GE(multi, kRounds * 9 / 10);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_run(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ThreadCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.thread_count(),
            static_cast<std::size_t>(logical_cpu_count()));
}

// --- fibers -------------------------------------------------------------------------

TEST(Fiber, AllFibersRun) {
  std::vector<int> hits(100, 0);
  run_fiber_group(100, [&](std::size_t i, FiberYield&) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(Fiber, BarrierAlignsPhases) {
  // Every fiber writes phase 0 data, barriers, then reads a neighbor's
  // phase-0 value. Without a real barrier the neighbor's slot would still
  // be the sentinel.
  constexpr std::size_t kN = 37;
  std::vector<int> slot(kN, -1);
  std::vector<int> seen(kN, -2);
  run_fiber_group(kN, [&](std::size_t i, FiberYield& yield) {
    slot[i] = static_cast<int>(i);
    yield.barrier();
    seen[i] = slot[(i + 1) % kN];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(seen[i], static_cast<int>((i + 1) % kN));
  }
}

TEST(Fiber, ManyBarrierPhases) {
  constexpr std::size_t kN = 16;
  constexpr int kPhases = 25;
  std::vector<int> counters(kN, 0);
  run_fiber_group(kN, [&](std::size_t i, FiberYield& yield) {
    for (int p = 0; p < kPhases; ++p) {
      ++counters[i];
      yield.barrier();
      // All fibers must have finished this phase.
      for (std::size_t j = 0; j < kN; ++j) EXPECT_GE(counters[j], p + 1);
      yield.barrier();
    }
  });
}

TEST(Fiber, PropagatesException) {
  EXPECT_THROW(
      run_fiber_group(8,
                      [&](std::size_t i, FiberYield&) {
                        if (i == 3) throw std::runtime_error("kernel fault");
                      }),
      std::runtime_error);
}

TEST(Fiber, ZeroFibersIsNoop) {
  run_fiber_group(0, [](std::size_t, FiberYield&) { FAIL(); });
}

TEST(Fiber, StacksSurviveDeepUsage) {
  // Each fiber uses a few KB of stack; ensures stack sizing and reuse work.
  std::vector<double> out(32, 0.0);
  run_fiber_group(
      32,
      [&](std::size_t i, FiberYield& yield) {
        volatile double local[512];
        for (int j = 0; j < 512; ++j) local[j] = static_cast<double>(j + i);
        yield.barrier();
        double sum = 0;
        for (int j = 0; j < 512; ++j) sum += local[j];
        out[i] = sum;
      },
      64 * 1024);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(out[i], 512.0 * 511.0 / 2.0 + 512.0 * static_cast<double>(i));
  }
  release_fiber_stacks();
}

}  // namespace
}  // namespace mcl::threading

// --- work-stealing schedule strategy -----------------------------------------------

namespace mcl::threading {
namespace {

TEST(WorkStealing, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_run(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 1,
                    ScheduleStrategy::WorkStealing);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkStealing, ChunkedAndUnevenCounts) {
  ThreadPool pool(3);
  for (std::size_t n : {1u, 7u, 100u, 1003u}) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_run(n, [&](std::size_t i) { sum.fetch_add(i + 1); }, 16,
                      ScheduleStrategy::WorkStealing);
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "n=" << n;
  }
}

TEST(WorkStealing, SkewedWorkloadStillCompletes) {
  // All the work piles into the first slot's range; thieves must spread it.
  ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_run(
      kN,
      [&](std::size_t i) {
        if (i < kN / 8) {  // heavy head
          volatile double sink = 0;
          for (int j = 0; j < 2000; ++j) sink += j;
        }
        hits[i].fetch_add(1);
      },
      1, ScheduleStrategy::WorkStealing);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(WorkStealing, RepeatedBatchesStayExact) {
  ThreadPool pool(4);
  for (int round = 0; round < 30; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_run(257, [&](std::size_t i) { sum.fetch_add(i); }, 4,
                      ScheduleStrategy::WorkStealing);
    ASSERT_EQ(sum.load(), 256u * 257u / 2u) << "round " << round;
  }
}

}  // namespace
}  // namespace mcl::threading

// --- run statistics --------------------------------------------------------------

namespace mcl::threading {
namespace {

TEST(RunStatistics, AllIndicesAccounted) {
  ThreadPool pool(3);
  for (ScheduleStrategy s :
       {ScheduleStrategy::CentralCounter, ScheduleStrategy::WorkStealing}) {
    const RunStats stats =
        pool.parallel_run(1000, [](std::size_t) {}, 8, s);
    EXPECT_GE(stats.participants, 1u);
    EXPECT_LE(stats.participants, 4u);  // 3 workers + caller
    EXPECT_GE(stats.max_per_participant, 1000u / 4u);
    EXPECT_GE(stats.imbalance, 1.0);
  }
}

TEST(RunStatistics, SingleParticipantPerfectlyBalanced) {
  ThreadPool pool(1);  // one worker + the caller; tiny batch -> often 1 party
  const RunStats stats =
      pool.parallel_run(1, [](std::size_t) {}, 1);
  EXPECT_EQ(stats.participants, 1u);
  EXPECT_DOUBLE_EQ(stats.imbalance, 1.0);
  EXPECT_EQ(stats.max_per_participant, 1u);
}

TEST(RunStatistics, ZeroCountEmptyStats) {
  ThreadPool pool(2);
  const RunStats stats = pool.parallel_run(0, [](std::size_t) {});
  EXPECT_EQ(stats.participants, 0u);
}

}  // namespace
}  // namespace mcl::threading
