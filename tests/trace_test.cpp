// mcltrace tests: ring wraparound + drop accounting, concurrent writers
// draining into one session, the zero-events-when-disabled contract, the
// Chrome JSON / metrics exporters, the T1 drop lint, the C API entry points,
// and the shared-epoch regression (a kernel's Running->Complete profiling
// window must enclose its per-workgroup trace spans).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <latch>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ocl/mcl.h"
#include "ocl/queue.hpp"
#include "san/lint.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace mcl::trace {
namespace {

// Every test owns the global session: start() resets store, rings, and drop
// counts, so earlier tests cannot leak events into later ones.

TEST(TraceRing, WraparoundCountsDropsInsteadOfBlocking) {
  start(/*drain_interval_ms=*/0);  // no drainer: the ring must wrap
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < kRingCapacity + extra; ++i) {
    instant("wrap", "i", i);
  }
  stop();
  const std::vector<TaggedEvent> events = collect();
  EXPECT_EQ(events.size(), kRingCapacity);
  EXPECT_EQ(dropped_events(), extra);
  // The oldest events survive (producers drop at the full ring's edge, they
  // never overwrite), so the ring holds args 0..capacity-1.
  for (const TaggedEvent& te : events) {
    EXPECT_LT(te.event.args[0], kRingCapacity);
  }
}

TEST(TraceRing, FlushBackpressureDrainsEverythingWithoutDrops) {
  // Two consumers cooperate on the session lock: the 1 ms background
  // drainer and explicit flush() calls every kRingCapacity/4 events. The
  // flushes bound ring occupancy deterministically (no drop can occur no
  // matter how slowly the drainer is scheduled — e.g. under TSan), and the
  // concurrent drainer must neither lose nor duplicate events.
  start(/*drain_interval_ms=*/1);
  for (std::size_t i = 0; i < 4 * kRingCapacity; ++i) {
    if (i % (kRingCapacity / 4) == 0) flush();
    instant("flood");
  }
  stop();
  EXPECT_EQ(collect().size(), 4 * kRingCapacity);
  EXPECT_EQ(dropped_events(), 0u);
}

TEST(TraceRing, ConcurrentWritersDrainIntoOneSession) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 4000;  // < kRingCapacity: zero drops
  start(/*drain_interval_ms=*/10);
  // The latch keeps all four threads alive until everyone has emitted, so
  // each holds a distinct ring (rings recycle only on thread exit).
  std::latch emitted(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&emitted, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        instant("worker", "thread,i", t, i);
      }
      emitted.arrive_and_wait();
    });
  }
  for (std::thread& t : threads) t.join();
  stop();
  const std::vector<TaggedEvent> events = collect();
  EXPECT_EQ(dropped_events(), 0u);
  std::map<std::uint32_t, std::size_t> per_tid;
  for (const TaggedEvent& te : events) ++per_tid[te.tid];
  EXPECT_EQ(per_tid.size(), kThreads);
  for (const auto& [tid, count] : per_tid) EXPECT_EQ(count, kPerThread);
}

TEST(TraceSession, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(enabled());
  MCL_TRACE_SCOPE("disabled.scope");
  MCL_TRACE_INSTANT("disabled.instant");
  MCL_TRACE_COUNTER("disabled.counter", 1.0);
  span_begin("disabled.begin");
  span_end("disabled.begin");
  start(/*drain_interval_ms=*/0);
  instant("only.event");
  stop();
  const std::vector<TaggedEvent> events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].event.name, "only.event");
  EXPECT_EQ(dropped_events(), 0u);
}

TEST(TraceSession, RestartClearsStoreAndDrops) {
  start(0);
  for (std::size_t i = 0; i < kRingCapacity + 5; ++i) instant("first");
  stop();
  EXPECT_GT(dropped_events(), 0u);
  start(0);
  instant("second");
  stop();
  const std::vector<TaggedEvent> events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].event.name, "second");
  EXPECT_EQ(dropped_events(), 0u);
}

TEST(TraceSession, InternReturnsStableDedupedPointers) {
  const std::string dynamic = std::string("ker") + "nel";
  const char* a = intern(dynamic);
  const char* b = intern("kernel");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "kernel");
}

TEST(TraceExport, ChromeJsonCarriesEventsAndDropCount) {
  start(0);
  span_begin("phase", "n", 7);
  instant("mark");
  counter("gauge", 2.5);
  span_end("phase");
  stop();
  const std::string json = chrome_trace_json(collect(), /*dropped=*/3);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":3"), std::string::npos);
  EXPECT_NE(json.find("mcltrace.dropped"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos);
}

TEST(TraceExport, MetricsAggregateCompleteAndBeginEndSpans) {
  std::vector<TaggedEvent> events;
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.type = EventType::Complete;
    ev.name = "work";
    ev.ts_ns = i * 1000;
    ev.dur_ns = 1'000'000;  // 1 ms each
    events.push_back({1, ev});
  }
  TraceEvent b;
  b.type = EventType::Begin;
  b.name = "outer";
  b.ts_ns = 0;
  events.push_back({2, b});
  TraceEvent e;
  e.type = EventType::End;
  e.name = "outer";
  e.ts_ns = 5'000'000;
  events.push_back({2, e});

  const std::vector<MetricSummary> rows = metrics(events);
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by total: 10 x 1 ms = 10 ms ahead of one 5 ms span.
  EXPECT_EQ(rows[0].name, "work");
  EXPECT_EQ(rows[0].count, 10u);
  EXPECT_DOUBLE_EQ(rows[0].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].p99_ms, 1.0);
  EXPECT_EQ(rows[1].name, "outer");
  EXPECT_DOUBLE_EQ(rows[1].total_ms, 5.0);
  EXPECT_NE(metrics_text(rows).find("work"), std::string::npos);
}

TEST(TraceLint, T1FiresOnDropsOnly)  {
  EXPECT_TRUE(san::lint_trace(0).clean());
  EXPECT_TRUE(san::lint_trace(0).diagnostics.empty());
  const san::Report report = san::lint_trace(42);
  EXPECT_TRUE(report.has_rule(san::Rule::T1TraceDrop));
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].severity, san::Severity::Warning);
  EXPECT_NE(report.to_string().find("42"), std::string::npos);
}

TEST(TraceCApi, BeginEndCounterRoundTrip) {
  EXPECT_EQ(mclTraceBegin(nullptr), MCL_INVALID_VALUE);
  EXPECT_EQ(mclTraceEnd(nullptr), MCL_INVALID_VALUE);
  EXPECT_EQ(mclTraceCounter(nullptr, 0.0), MCL_INVALID_VALUE);
  // Off: success, but nothing recorded.
  EXPECT_EQ(mclTraceBegin("capi.phase"), MCL_SUCCESS);
  start(0);
  EXPECT_EQ(mclTraceBegin("capi.phase"), MCL_SUCCESS);
  EXPECT_EQ(mclTraceCounter("capi.gauge", 1.5), MCL_SUCCESS);
  EXPECT_EQ(mclTraceEnd("capi.phase"), MCL_SUCCESS);
  stop();
  const std::vector<TaggedEvent> events = collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].event.name, "capi.phase");
  EXPECT_EQ(events[0].event.type, EventType::Begin);
  EXPECT_EQ(events[2].event.type, EventType::End);
}

// The shared-epoch regression (ISSUE 3 satellite): AsyncEvent profiling
// timestamps and trace spans both use core::steady_now_ns, so a kernel's
// Running->Complete window must enclose every workgroup span it produced.
TEST(TraceEpoch, KernelProfilingWindowEnclosesWorkgroupSpans) {
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  constexpr std::size_t n = 1024;
  ocl::Buffer in(ocl::MemFlags::ReadWrite, n * 4);
  ocl::Buffer out(ocl::MemFlags::ReadWrite, n * 4);
  ocl::Kernel kernel = ctx.create_kernel(ocl::Program::builtin(), "square");
  kernel.set_arg(0, in);
  kernel.set_arg(1, out);

  start(/*drain_interval_ms=*/10);
  ocl::AsyncEventPtr ev;
  {
    ocl::CommandQueue queue(ctx);
    ev = queue.enqueue_ndrange_async(kernel, ocl::NDRange{n}, ocl::NDRange{64});
    ev->wait();
  }
  const ocl::ProfilingInfo prof = ev->profiling_ns();
  stop();

  std::size_t wg_spans = 0;
  bool saw_cmd_kernel = false;
  for (const TaggedEvent& te : collect()) {
    const std::string_view name = te.event.name;
    if (name == "wg:square") {
      ++wg_spans;
      EXPECT_GE(te.event.ts_ns, prof.started_ns);
      EXPECT_LE(te.event.ts_ns + te.event.dur_ns, prof.ended_ns);
    } else if (name == "cmd.kernel") {
      saw_cmd_kernel = true;
      EXPECT_EQ(te.event.ts_ns, prof.started_ns);
      EXPECT_EQ(te.event.ts_ns + te.event.dur_ns, prof.ended_ns);
    }
  }
  EXPECT_EQ(wg_spans, n / 64);
  EXPECT_TRUE(saw_cmd_kernel);
  EXPECT_GE(prof.submitted_ns, prof.queued_ns);
  EXPECT_GE(prof.started_ns, prof.submitted_ns);
  EXPECT_GE(prof.ended_ns, prof.started_ns);
}

// Queued/dispatch phases of fast commands often round to zero nanoseconds;
// finalize used to drop those spans entirely, so trace consumers could not
// reconstruct a full per-command lifecycle. Every finalized command must now
// emit exactly one cmd.queued and one cmd.dispatch span (zero-duration spans
// included — Perfetto renders them as instants).
TEST(TraceEpoch, EveryCommandEmitsAllLifecycleSpans) {
  ocl::CpuDevice dev(ocl::CpuDeviceConfig{.threads = 2});
  ocl::Context ctx(dev);
  constexpr std::size_t kCommands = 64;

  start(/*drain_interval_ms=*/10);
  {
    ocl::CommandQueue queue(ctx);
    // Markers are the fastest command: both pre-run phases round to ~0 ns.
    for (std::size_t i = 0; i < kCommands; ++i) {
      (void)queue.enqueue_marker_async();
    }
    queue.finish();
  }
  stop();

  std::size_t queued = 0, dispatch = 0, marker = 0;
  for (const TaggedEvent& te : collect()) {
    const std::string_view name = te.event.name;
    if (name == "cmd.queued") ++queued;
    if (name == "cmd.dispatch") ++dispatch;
    if (name == "cmd.marker") ++marker;
  }
  EXPECT_EQ(marker, kCommands);
  // Span count == command count: nothing dropped on zero-duration rounding.
  EXPECT_EQ(queued, kCommands);
  EXPECT_EQ(dispatch, kCommands);
}

}  // namespace
}  // namespace mcl::trace
