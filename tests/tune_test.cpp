// mcltune tests: feature extraction, candidate legality (GroupRunner-matched
// pruning), the bounded explore/exploit policy with its regression guard,
// persistent-cache round-trip / version-mismatch / corruption / concurrent
// writers, IR re-registration eviction, warm-cache zero-exploration, the
// launch-path integration (results stay correct while tuning), and the C API
// (the `tune` label is in the plain and TSan tiers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/matrixmul.hpp"
#include "apps/simple.hpp"
#include "ocl/mcl.h"
#include "ocl/queue.hpp"
#include "simd/vec.hpp"
#include "tune/tune.hpp"
#include "veclegal/kernel_ir.hpp"

namespace mcl::tune {
namespace {

/// Every test leaves the process-global tuner the way it found it: mode off,
/// no entries, zeroed stats.
struct TunerGuard {
  TunerGuard() { clean(); }
  ~TunerGuard() { clean(); }
  static void clean() {
    Tuner& t = Tuner::instance();
    t.set_mode(Mode::Off);
    t.reset();
    t.reset_stats();
  }
};

/// A synthetic scalar-only kernel def: never launched, so the body can be
/// null — decide()/report() only consult name/simd/workgroup/needs_barrier.
ocl::KernelDef synthetic_def(const char* name) {
  ocl::KernelDef def;
  def.name = name;
  return def;
}

/// Drives one entry to convergence with synthetic timings: candidate 0 is
/// fast, everything else is 10x slower (so the regression guard fires).
/// Returns the config string of the fast candidate.
std::string converge_entry(Tuner& t, const ocl::KernelDef& def,
                           const ocl::NDRange& global, std::size_t threads) {
  t.set_mode(Mode::Online);
  std::string fast_config;
  for (int i = 0; i < 200; ++i) {
    if (t.converged(def.name, global, ocl::NDRange{}, threads)) break;
    auto d = t.decide(def, global, ocl::NDRange{}, false, threads);
    if (!d) break;
    if (d->candidate == 0) fast_config = d->config.to_string();
    t.report(*d, d->candidate == 0 ? 0.001 : 0.010);
  }
  EXPECT_TRUE(t.converged(def.name, global, ocl::NDRange{}, threads));
  return fast_config;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// ----- features ------------------------------------------------------------

TEST(TuneFeatures, SquareIsUnitStrideWithFacts) {
  const ocl::KernelDef& def = ocl::Program::builtin().lookup(apps::kSquareKernel);
  const Features f = features_for(def);
  EXPECT_TRUE(f.have_facts);  // simple.cpp registers square's IR
  EXPECT_FALSE(f.barrier);
  EXPECT_FALSE(f.local_mem);
  EXPECT_FALSE(f.gather_scatter);
  EXPECT_GE(f.unit_stride_fraction, 0.5);
  EXPECT_EQ(f.has_simd_form, def.simd != nullptr);
  EXPECT_GE(f.locality_class, 1);
  EXPECT_LE(f.locality_class, 4);
}

TEST(TuneFeatures, UnregisteredKernelDegradesToDefaults) {
  const Features f = features_for(synthetic_def("tune.test.nofacts"));
  EXPECT_FALSE(f.have_facts);
  EXPECT_EQ(f.locality_class, 1);
}

// ----- candidate legality --------------------------------------------------

TEST(TuneCandidates, LocalsAlwaysDivideGlobal) {
  const ocl::KernelDef& def = ocl::Program::builtin().lookup(apps::kSquareKernel);
  const Features f = features_for(def);
  // 1000 is not divisible by 128/256/512 — only legal divisors may survive.
  const ocl::NDRange global{1000};
  const auto cands = enumerate_candidates(def, f, global, ocl::NDRange{},
                                          /*has_local_args=*/false, 4);
  ASSERT_FALSE(cands.empty());
  for (const TunedConfig& c : cands) {
    if (c.local.is_null()) continue;
    for (std::size_t d = 0; d < global.dims; ++d) {
      EXPECT_EQ(global[d] % c.local[d], 0u) << c.to_string();
    }
    EXPECT_NE(c.executor, ocl::ExecutorKind::Checked) << c.to_string();
  }
}

TEST(TuneCandidates, BarrierKernelOnlyGetsFiber) {
  const ocl::KernelDef& def =
      ocl::Program::builtin().lookup(apps::kMatrixMulFiberKernel);
  ASSERT_TRUE(def.needs_barrier);
  const Features f = features_for(def);
  const auto cands = enumerate_candidates(def, f, ocl::NDRange(64, 64),
                                          ocl::NDRange{},
                                          /*has_local_args=*/false, 4);
  ASSERT_FALSE(cands.empty());
  for (const TunedConfig& c : cands) {
    EXPECT_EQ(c.executor, ocl::ExecutorKind::Fiber) << c.to_string();
    // Fiber stacks are per item: barrier candidates stay <= 256 items/group.
    if (!c.local.is_null()) {
      EXPECT_LE(c.local.total(), 256u) << c.to_string();
    }
  }
}

TEST(TuneCandidates, LocalMemArgsSuppressLocalOverride) {
  const ocl::KernelDef& def =
      ocl::Program::builtin().lookup(apps::kMatrixMulKernel);
  const Features f = features_for(def);
  const auto cands = enumerate_candidates(def, f, ocl::NDRange(64, 64),
                                          ocl::NDRange{},
                                          /*has_local_args=*/true, 4);
  ASSERT_FALSE(cands.empty());
  for (const TunedConfig& c : cands) {
    EXPECT_TRUE(c.local.is_null()) << c.to_string();
    // matrixmul is workgroup-form: the executor knob is not meaningful and
    // candidates must leave it at Auto.
    EXPECT_EQ(c.executor, ocl::ExecutorKind::Auto) << c.to_string();
  }
}

TEST(TuneCandidates, CallerLocalIsNeverOverridden) {
  const ocl::KernelDef& def = ocl::Program::builtin().lookup(apps::kSquareKernel);
  const Features f = features_for(def);
  const auto cands = enumerate_candidates(def, f, ocl::NDRange{4096},
                                          ocl::NDRange{128},
                                          /*has_local_args=*/false, 4);
  ASSERT_FALSE(cands.empty());
  for (const TunedConfig& c : cands) {
    EXPECT_TRUE(c.local.is_null()) << c.to_string();
  }
}

TEST(TuneCandidates, SimdOfferedOnlyWithSimdForm) {
  const ocl::KernelDef& square =
      ocl::Program::builtin().lookup(apps::kSquareKernel);
  const auto square_cands =
      enumerate_candidates(square, features_for(square), ocl::NDRange{4096},
                           ocl::NDRange{}, false, 4);
  const bool offers_simd =
      std::any_of(square_cands.begin(), square_cands.end(),
                  [](const TunedConfig& c) {
                    return c.executor == ocl::ExecutorKind::Simd;
                  });
  EXPECT_EQ(offers_simd, square.simd != nullptr && simd::kNativeFloatWidth > 1);

  const auto scalar_cands = enumerate_candidates(
      synthetic_def("tune.test.scalar"),
      features_for(synthetic_def("tune.test.scalar")), ocl::NDRange{4096},
      ocl::NDRange{}, false, 4);
  for (const TunedConfig& c : scalar_cands) {
    EXPECT_NE(c.executor, ocl::ExecutorKind::Simd) << c.to_string();
  }
}

// ----- online policy -------------------------------------------------------

TEST(TuneOnline, DisabledModeReturnsNoDecision) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(t.decide(synthetic_def("tune.test.off"), ocl::NDRange{4096},
                        ocl::NDRange{}, false, 4)
                   .has_value());
  EXPECT_EQ(t.stats().decisions, 0u);
}

TEST(TuneOnline, ConvergesQuarantinesAndKeepsFastest) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.converge");
  const ocl::NDRange global{4096};
  const std::string fast = converge_entry(t, def, global, 4);

  const TunerStats s = t.stats();
  EXPECT_GT(s.explore, 0u);
  EXPECT_GE(s.quarantined, 1u);  // the 10x-slower candidates were retired
  EXPECT_EQ(s.converged, 1u);
  // The budget is bounded: at most candidates * trials exploration launches.
  EXPECT_LE(s.explore, 8u * 3u);

  // The incumbent is the fast candidate we fed.
  auto cfg = t.tuned_config(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->to_string(), fast);

  // Converged entries never explore again.
  t.reset_stats();
  for (int i = 0; i < 10; ++i) {
    auto d = t.decide(def, global, ocl::NDRange{}, false, 4);
    ASSERT_TRUE(d.has_value());
    EXPECT_FALSE(d->explore);
    EXPECT_EQ(d->config.to_string(), fast);
  }
  EXPECT_EQ(t.stats().explore, 0u);
  EXPECT_EQ(t.stats().exploit, 10u);
}

TEST(TuneOnline, SeedModeNeverExplores) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Seed);
  const ocl::KernelDef def = synthetic_def("tune.test.seed");
  for (int i = 0; i < 5; ++i) {
    auto d = t.decide(def, ocl::NDRange{4096}, ocl::NDRange{}, false, 4);
    ASSERT_TRUE(d.has_value());
    EXPECT_FALSE(d->explore);
  }
  EXPECT_EQ(t.stats().explore, 0u);
  EXPECT_EQ(t.stats().exploit, 5u);
}

TEST(TuneOnline, ReportAfterEvictionIsIgnored) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Online);
  const ocl::KernelDef def = synthetic_def("tune.test.evictrace");
  auto d = t.decide(def, ocl::NDRange{4096}, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(d.has_value());
  t.evict(def.name);
  t.report(*d, 0.001);  // must not crash or resurrect the entry
  EXPECT_EQ(t.entry_count(def.name), 0u);
}

TEST(TuneOnline, StaleGenerationReportIsDropped) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Online);
  const ocl::KernelDef& def =
      ocl::Program::builtin().lookup(apps::kSquareKernel);
  const ocl::NDRange global{4096};
  auto d1 = t.decide(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(d1.has_value());
  t.report(*d1, 0.001);
  auto d2 = t.decide(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(d2.has_value());
  ASSERT_NE(d1->candidate, d2->candidate);  // round-robin moved on

  // Re-registration bumps the generation and evicts the entry; the next
  // decide recreates it under the new generation.
  auto& registry = veclegal::KernelIrRegistry::instance();
  const veclegal::KernelIr* ir = registry.find(def.name);
  ASSERT_NE(ir, nullptr);
  registry.add(def.name, *ir);
  auto d3 = t.decide(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(d3.has_value());

  // d2 belongs to the evicted entry. Its (absurdly fast) timing must not be
  // credited to the recreated candidate list, or a never-measured config
  // becomes the unbeatable incumbent.
  t.report(*d2, 1e-9);
  auto cfg = t.tuned_config(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_NE(cfg->to_string(), d2->config.to_string());
}

TEST(TuneOnline, LocalMemArgLaunchesGetTheirOwnEntry) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.localargs");
  const ocl::NDRange global{8192};
  // Converge the no-local-args shape; its candidate list includes
  // local-size overrides.
  converge_entry(t, def, global, 4);
  // The same kernel/shape launched WITH caller-sized local-memory args must
  // hit a separate entry (has_local_args is part of the key) that never
  // overrides the local size — the learned override's group size would
  // invalidate the caller's local byte counts.
  for (int i = 0; i < 30; ++i) {
    auto d = t.decide(def, global, ocl::NDRange{}, /*has_local_args=*/true, 4);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->config.local.is_null());
    t.report(*d, 0.001);
  }
  EXPECT_EQ(t.entry_count(def.name), 2u);
}

// ----- persistent cache ----------------------------------------------------

TEST(TuneCache, RoundTripRestoresConvergedEntry) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.roundtrip");
  const ocl::NDRange global{8192};
  converge_entry(t, def, global, 4);
  auto saved = t.tuned_config(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(saved.has_value());

  const std::string path = temp_path("tune_roundtrip.cache");
  ASSERT_TRUE(t.save_cache(path));

  t.reset();
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_EQ(t.load_cache(path), 1u);
  EXPECT_TRUE(t.converged(def.name, global, ocl::NDRange{}, 4));
  auto loaded = t.tuned_config(def, global, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_string(), saved->to_string());
}

TEST(TuneCache, WarmEntryPerformsZeroExploration) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.warm");
  const ocl::NDRange global{8192};
  converge_entry(t, def, global, 4);
  const std::string path = temp_path("tune_warm.cache");
  ASSERT_TRUE(t.save_cache(path));

  t.reset();
  t.reset_stats();
  ASSERT_EQ(t.load_cache(path), 1u);
  t.set_mode(Mode::Online);
  for (int i = 0; i < 20; ++i) {
    auto d = t.decide(def, global, ocl::NDRange{}, false, 4);
    ASSERT_TRUE(d.has_value());
    EXPECT_FALSE(d->explore);
  }
  const TunerStats s = t.stats();
  EXPECT_EQ(s.explore, 0u);  // the warm-cache acceptance criterion
  EXPECT_EQ(s.exploit, 20u);
  EXPECT_EQ(s.cache_hits, 20u);
  EXPECT_EQ(s.cache_rows_loaded, 1u);
}

TEST(TuneCache, VersionMismatchRejectsWholeFile) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  // A well-checksummed file with the wrong version header: the checksum
  // passes, the version check must still reject it. v1 is the retired
  // pre-|aB-key format, so this doubles as the old-file rejection test.
  const std::string payload = "mcltune v1\n";
  std::ostringstream doc;
  doc << payload << "checksum " << std::hex << fnv1a64(payload) << "\n";
  const std::string path = temp_path("tune_version.cache");
  write_file(path, doc.str());
  EXPECT_EQ(t.load_cache(path), 0u);
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_GE(t.stats().cache_rows_rejected, 1u);
}

TEST(TuneCache, TruncatedFileFallsBackToColdStart) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.trunc");
  converge_entry(t, def, ocl::NDRange{8192}, 4);
  const std::string path = temp_path("tune_trunc.cache");
  ASSERT_TRUE(t.save_cache(path));
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), 16u);
  write_file(path, full.substr(0, full.size() / 2));

  t.reset();
  EXPECT_EQ(t.load_cache(path), 0u);
  EXPECT_EQ(t.entry_count(), 0u);
}

TEST(TuneCache, CorruptedByteFailsChecksum) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.corrupt");
  converge_entry(t, def, ocl::NDRange{8192}, 4);
  const std::string path = temp_path("tune_corrupt.cache");
  ASSERT_TRUE(t.save_cache(path));
  std::string contents = read_file(path);
  const std::size_t pos = contents.find("row");
  ASSERT_NE(pos, std::string::npos);
  contents[pos] = 'R';  // flip one byte inside the checksummed payload
  write_file(path, contents);

  t.reset();
  t.reset_stats();
  EXPECT_EQ(t.load_cache(path), 0u);
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_GE(t.stats().cache_rows_rejected, 1u);
}

TEST(TuneCache, ConcurrentWritersNeverTearTheFile) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef def = synthetic_def("tune.test.writers");
  converge_entry(t, def, ocl::NDRange{8192}, 4);
  const std::string path = temp_path("tune_writers.cache");

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) EXPECT_TRUE(t.save_cache(path));
    });
  }
  for (std::thread& w : writers) w.join();

  // Whatever writer won, the published file is one complete document.
  t.reset();
  EXPECT_EQ(t.load_cache(path), 1u);
}

TEST(TuneCache, StaleGenerationRowIsSkipped) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  // Use a kernel with registered IR so re-registration bumps its generation.
  const ocl::KernelDef& def =
      ocl::Program::builtin().lookup(apps::kSquareKernel);
  const ocl::NDRange global{4096};
  converge_entry(t, def, global, 4);
  const std::string path = temp_path("tune_stale.cache");
  ASSERT_TRUE(t.save_cache(path));

  auto& registry = veclegal::KernelIrRegistry::instance();
  const veclegal::KernelIr* ir = registry.find(def.name);
  ASSERT_NE(ir, nullptr);
  registry.add(def.name, *ir);  // generation bump (and tuner eviction)

  t.reset();
  t.reset_stats();
  EXPECT_EQ(t.load_cache(path), 0u);  // row generation no longer current
  EXPECT_GE(t.stats().cache_rows_rejected, 1u);
  EXPECT_EQ(t.entry_count(def.name), 0u);
}

TEST(TuneCache, WarmRowIllegalForThisBuildIsDroppedAtDecide) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  // Hand-craft a structurally valid v2 cache whose row pins the Simd
  // executor for a kernel with no simd form — what a cache written by a
  // SIMD-enabled build (or a hand edit) looks like to this process. The
  // generation guard cannot catch it (0 == 0 for never-registered IR);
  // decide() must drop the row instead of serving a config GroupRunner
  // would reject on every launch.
  const std::string key = "tune.test.illegalwarm|g4096x1x1|lauto|t4|a0";
  std::ostringstream payload;
  payload << "mcltune v2\n"
          << "row " << key << " 0 0 0 0 0 3 16 0 1 1000\n";
  std::ostringstream doc;
  doc << payload.str() << "checksum " << std::hex << fnv1a64(payload.str())
      << "\n";
  const std::string path = temp_path("tune_illegal.cache");
  write_file(path, doc.str());

  ASSERT_EQ(t.load_cache(path), 1u);  // structurally valid: it loads
  t.set_mode(Mode::Online);
  const ocl::KernelDef def = synthetic_def("tune.test.illegalwarm");
  const std::uint64_t rejected_before = t.stats().cache_rows_rejected;
  auto d = t.decide(def, ocl::NDRange{4096}, ocl::NDRange{}, false, 4);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->config.executor, ocl::ExecutorKind::Simd);
  EXPECT_GT(t.stats().cache_rows_rejected, rejected_before);
  // The rebuilt entry is cold: it explores like one.
  EXPECT_FALSE(t.converged(def.name, ocl::NDRange{4096}, ocl::NDRange{}, 4));
}

// ----- IR re-registration eviction ----------------------------------------

TEST(TuneEvict, ReRegistrationDropsTunedEntries) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  const ocl::KernelDef& def =
      ocl::Program::builtin().lookup(apps::kSquareKernel);
  const ocl::NDRange global{2048};
  converge_entry(t, def, global, 4);
  ASSERT_GE(t.entry_count(def.name), 1u);
  const std::uint64_t evictions_before = t.stats().evictions;

  auto& registry = veclegal::KernelIrRegistry::instance();
  const veclegal::KernelIr* ir = registry.find(def.name);
  ASSERT_NE(ir, nullptr);
  registry.add(def.name, *ir);

  // Regression: a stale tuned config must never be served for the new body.
  EXPECT_EQ(t.entry_count(def.name), 0u);
  EXPECT_GT(t.stats().evictions, evictions_before);
  EXPECT_FALSE(t.converged(def.name, global, ocl::NDRange{}, 4));
}

// ----- registry concurrency (exercised under the TSan tier) ----------------

TEST(TuneRegistry, ConcurrentReRegistrationAndLaunchPathReadsAreSafe) {
  TunerGuard guard;
  auto& registry = veclegal::KernelIrRegistry::instance();
  const veclegal::KernelIr* square = registry.find(apps::kSquareKernel);
  ASSERT_NE(square, nullptr);
  const veclegal::KernelIr ir_copy = *square;

  // A writer registers fresh kernel names (map inserts rebalance the tree)
  // while readers walk it the way the tune launch path does (features_for
  // -> find(), names(), generation()); the registry must synchronize the IR
  // map itself, not just the analysis cache beside it.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      registry.add("tune.test.race." + std::to_string(i), ir_copy);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        (void)registry.find(apps::kSquareKernel);
        (void)registry.names();
        (void)registry.generation("tune.test.race.0");
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_NE(registry.find(apps::kSquareKernel), nullptr);
}

// ----- launch-path integration --------------------------------------------

TEST(TuneLaunch, OnlineTuningKeepsResultsCorrect) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Online);

  ocl::CpuDevice dev{ocl::CpuDeviceConfig{.threads = 2}};
  ocl::Context ctx{dev};
  ocl::CommandQueue q{ctx};

  constexpr std::size_t kN = 8192;
  std::vector<float> host(kN);
  for (std::size_t i = 0; i < kN; ++i) host[i] = static_cast<float>(i % 97);
  ocl::Buffer in(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                 kN * sizeof(float), host.data());
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * sizeof(float));

  ocl::Kernel kernel(ocl::Program::builtin().lookup(apps::kSquareKernel));
  kernel.set_arg(0, in);
  kernel.set_arg(1, out);

  const ocl::NDRange global{kN};
  const std::size_t threads = static_cast<std::size_t>(dev.compute_units());
  int converged_at = 0;
  for (int i = 1; i <= 50; ++i) {
    q.enqueue_ndrange(kernel, global);
    if (converged_at == 0 &&
        t.converged(apps::kSquareKernel, global, ocl::NDRange{}, threads)) {
      converged_at = i;
    }
  }
  // The explore/exploit budget converges well within 50 repeat launches.
  EXPECT_GT(converged_at, 0);
  EXPECT_LE(converged_at, 50);
  EXPECT_GT(t.stats().decisions, 0u);

  // Whatever configs were explored, every launch computed the right thing.
  std::vector<float> result(kN, 0.0f);
  q.enqueue_read_buffer(out, 0, kN * sizeof(float), result.data());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_FLOAT_EQ(result[i], host[i] * host[i]) << "at index " << i;
  }
}

TEST(TuneLaunch, ExplicitExecutorConfigBypassesTuner) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Online);

  ocl::CpuDeviceConfig cfg;
  cfg.threads = 2;
  cfg.executor = ocl::ExecutorKind::Loop;  // caller policy: not tunable
  ocl::CpuDevice dev{cfg};
  ocl::Context ctx{dev};
  ocl::CommandQueue q{ctx};

  constexpr std::size_t kN = 1024;
  std::vector<float> host(kN, 2.0f);
  ocl::Buffer in(ocl::MemFlags::ReadOnly | ocl::MemFlags::CopyHostPtr,
                 kN * sizeof(float), host.data());
  ocl::Buffer out(ocl::MemFlags::ReadWrite, kN * sizeof(float));
  ocl::Kernel kernel(ocl::Program::builtin().lookup(apps::kSquareKernel));
  kernel.set_arg(0, in);
  kernel.set_arg(1, out);
  q.enqueue_ndrange(kernel, ocl::NDRange{kN});
  EXPECT_EQ(t.stats().decisions, 0u);
}

// ----- env + C API ---------------------------------------------------------

TEST(TuneMode, EnvParsing) {
  ::setenv("MCL_TUNE", "seed", 1);
  EXPECT_EQ(mode_from_env(), Mode::Seed);
  ::setenv("MCL_TUNE", "online", 1);
  EXPECT_EQ(mode_from_env(), Mode::Online);
  ::setenv("MCL_TUNE", "1", 1);
  EXPECT_EQ(mode_from_env(), Mode::Online);
  ::setenv("MCL_TUNE", "banana", 1);
  EXPECT_EQ(mode_from_env(), Mode::Off);
  ::unsetenv("MCL_TUNE");
  EXPECT_EQ(mode_from_env(), Mode::Off);
}

// Regression: enabled() must resolve MCL_TUNE itself. The env parse used to
// live only in the Tuner constructor, which is reached via instance() — but
// the launch path consults enabled() *before* ever constructing the tuner,
// so `MCL_TUNE=online <binary>` was a silent no-op.
TEST(TuneMode, EnvVarActivatesEnabledWithoutTouchingTheSingleton) {
  TunerGuard guard;
  ::setenv("MCL_TUNE", "online", 1);
  detail::g_mode.store(detail::kModeUnset, std::memory_order_relaxed);
  EXPECT_TRUE(enabled());  // lazy env resolve, no instance() involved
  EXPECT_EQ(Tuner::instance().mode(), Mode::Online);
  ::unsetenv("MCL_TUNE");

  // A mode published before the first query beats the environment default.
  detail::g_mode.store(detail::kModeUnset, std::memory_order_relaxed);
  ::setenv("MCL_TUNE", "online", 1);
  Tuner::instance().set_mode(Mode::Off);
  EXPECT_FALSE(enabled());
  ::unsetenv("MCL_TUNE");
}

TEST(TuneCApi, SetTuningAndQueryConfig) {
  TunerGuard guard;
  EXPECT_EQ(mclSetTuning(MCL_TUNE_SEED), MCL_SUCCESS);
  EXPECT_EQ(Tuner::instance().mode(), Mode::Seed);
  EXPECT_EQ(mclSetTuning(7), MCL_INVALID_VALUE);

  const std::size_t global[1] = {4096};
  mcl_tuned_config cfg{};
  EXPECT_EQ(mclGetTunedConfig("square", 1, global, &cfg), MCL_SUCCESS);
  EXPECT_GT(cfg.chunk_divisor, 0u);
  EXPECT_GE(cfg.executor, 0);
  EXPECT_LE(cfg.executor, 3);
  if (cfg.work_dim != 0) {
    ASSERT_EQ(cfg.work_dim, 1u);
    EXPECT_EQ(global[0] % cfg.local_size[0], 0u);
  }

  EXPECT_EQ(mclGetTunedConfig("no.such.kernel", 1, global, &cfg),
            MCL_INVALID_KERNEL_NAME);
  EXPECT_EQ(mclGetTunedConfig("square", 0, global, &cfg), MCL_INVALID_VALUE);
  EXPECT_EQ(mclGetTunedConfig("square", 1, nullptr, &cfg), MCL_INVALID_VALUE);
  EXPECT_EQ(mclSetTuning(MCL_TUNE_OFF), MCL_SUCCESS);
}

// ----- multi-tenant sharing (mclserve integration) -------------------------

TEST(TuneShare, SameShapeFromTwoClientsSharesOneEntry) {
  TunerGuard guard;
  Tuner& t = Tuner::instance();
  t.set_mode(Mode::Online);
  const ocl::KernelDef def = synthetic_def("tune.test.shared");
  const ocl::NDRange global{4096};

  // Two "tenants" (threads) race decide/report on the same shape. The tuner
  // is process-global, so they must converge onto ONE entry, not two.
  std::vector<std::thread> tenants;
  for (int w = 0; w < 2; ++w) {
    tenants.emplace_back([&] {
      for (int i = 0; i < 60; ++i) {
        auto d = t.decide(def, global, ocl::NDRange{}, false, 4);
        if (!d) break;
        t.report(*d, d->candidate == 0 ? 0.001 : 0.010);
      }
    });
  }
  for (std::thread& w : tenants) w.join();
  EXPECT_EQ(t.entry_count(def.name), 1u);
  EXPECT_TRUE(t.converged(def.name, global, ocl::NDRange{}, 4));
}

}  // namespace
}  // namespace mcl::tune
