#include <gtest/gtest.h>

#include "apps/mbench.hpp"
#include "veclegal/analysis.hpp"

namespace mcl::veclegal {
namespace {

LoopBody simple_elementwise() {
  LoopBody l{.name = "saxpy", .stmts = {}, .trip_count = 1024};
  l.stmts.push_back(store(ref(2), {ref(0), ref(1)}, "c[i] = a[i] + b[i]"));
  return l;
}

TEST(LoopModel, ElementwiseIsVectorizable) {
  const Verdict v = analyze(simple_elementwise(), Model::Loop);
  EXPECT_TRUE(v.vectorizable) << v.summary();
}

TEST(LoopModel, UncountableLoopRefused) {
  LoopBody l = simple_elementwise();
  l.trip_count = 0;
  const Verdict v = analyze(l, Model::Loop);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("L1"), std::string::npos);
}

TEST(LoopModel, ControlFlowRefused) {
  LoopBody l = simple_elementwise();
  l.straight_line = false;
  EXPECT_FALSE(analyze(l, Model::Loop).vectorizable);
}

TEST(LoopModel, MultipleExitsRefused) {
  LoopBody l = simple_elementwise();
  l.single_entry_exit = false;
  EXPECT_FALSE(analyze(l, Model::Loop).vectorizable);
}

TEST(LoopModel, NonUnitStrideLoadRefused) {
  LoopBody l{.name = "strided", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(2), {ref(0, 3)}, "c[i] = a[3i]"));
  const Verdict v = analyze(l, Model::Loop);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("L2"), std::string::npos);
}

TEST(LoopModel, LoopInvariantLoadAllowed) {
  LoopBody l{.name = "broadcast", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(2), {ref(0, 0, 5), ref(1)}, "c[i] = a[5] * b[i]"));
  EXPECT_TRUE(analyze(l, Model::Loop).vectorizable);
}

TEST(LoopModel, CarriedFlowDependenceRefused) {
  // a[i+1] = a[i] * b[i]: distance-1 flow dependence.
  LoopBody l{.name = "recur", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(0, 1, 1), {ref(0), ref(1)}, "a[i+1] = a[i]*b[i]"));
  const Verdict v = analyze(l, Model::Loop);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("distance 1"), std::string::npos);
}

TEST(LoopModel, FarDependenceOutsideWindowAllowed) {
  // a[i+64] = a[i]: distance 64 >= W, safe for W-lane vectors.
  LoopBody l{.name = "far", .stmts = {}, .trip_count = 1024};
  l.stmts.push_back(store(ref(0, 1, 64), {ref(0)}, "a[i+64] = a[i]"));
  EXPECT_TRUE(analyze(l, Model::Loop, 8).vectorizable);
  // ... but unsafe for 128-lane hypothetical vectors.
  EXPECT_FALSE(analyze(l, Model::Loop, 128).vectorizable);
}

TEST(LoopModel, ScalarRecurrenceRefused) {
  // s = s + a[i] (reduction without the reduction idiom).
  LoopBody l{.name = "sum", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(assign_temp(0, {ref(0)}, {0}, "s = s + a[i]"));
  const Verdict v = analyze(l, Model::Loop);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("recurrence"), std::string::npos);
}

TEST(LoopModel, TempDefinedBeforeUseAllowed) {
  LoopBody l{.name = "temp", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(assign_temp(0, {ref(0), ref(1)}, {}, "t = a[i]*b[i]"));
  l.stmts.push_back(store(ref(2), {}, "c[i] = t", {0}));
  EXPECT_TRUE(analyze(l, Model::Loop).vectorizable);
}

TEST(LoopModel, SingleRmwAllowed) {
  // c[i] = alpha*a[i] + c[i] is one read-modify-write: fine.
  LoopBody l{.name = "axpy", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(2), {ref(0), ref(2)}, "c[i] = a*x + c[i]"));
  EXPECT_TRUE(analyze(l, Model::Loop).vectorizable);
}

TEST(LoopModel, ChainedRmwRefused) {
  // The Fig 11 FMUL chain: repeated RMW of the same element.
  LoopBody l{.name = "fig11", .stmts = {}, .trip_count = 4};
  for (int i = 0; i < 6; ++i) {
    l.stmts.push_back(store(ref(0), {ref(0), ref(1)}, "FMUL(a[j], b[j])"));
  }
  const Verdict v = analyze(l, Model::Loop);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("L4"), std::string::npos);
}

// --- SPMD model ---------------------------------------------------------------

TEST(SpmdModel, Fig11ChainVectorizes) {
  // The same chained body IS vectorizable across workitems — the paper's
  // central Fig 11 observation.
  LoopBody l{.name = "fig11", .stmts = {}, .trip_count = 4};
  for (int i = 0; i < 6; ++i) {
    l.stmts.push_back(store(ref(0), {ref(0), ref(1)}, "FMUL(a[j], b[j])"));
  }
  EXPECT_TRUE(analyze(l, Model::Spmd).vectorizable);
}

TEST(SpmdModel, StridedAccessVectorizes) {
  LoopBody l{.name = "strided", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(2, 2), {ref(0, 3)}, "c[2i] = a[3i]"));
  EXPECT_TRUE(analyze(l, Model::Spmd).vectorizable);
}

TEST(SpmdModel, SharedElementStoreRefused) {
  LoopBody l{.name = "race", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(store(ref(2, 0), {ref(0)}, "c[0] = a[i]"));
  const Verdict v = analyze(l, Model::Spmd);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("S1"), std::string::npos);
}

TEST(Verdict, SummaryMentionsOutcome) {
  const Verdict v = analyze(simple_elementwise(), Model::Loop);
  EXPECT_NE(v.summary().find("VECTORIZABLE"), std::string::npos);
}

TEST(Explain, RendersBothModels) {
  const std::string text = explain_both(simple_elementwise());
  EXPECT_NE(text.find("loop auto-vectorizer"), std::string::npos);
  EXPECT_NE(text.find("SPMD vectorizer"), std::string::npos);
}

// --- MBench IR: the verdicts Fig 10 depends on ---------------------------------

struct MBenchExpectation {
  const char* name;
  bool loop_vectorizable;
};

class MBenchVerdicts : public ::testing::TestWithParam<MBenchExpectation> {};

TEST_P(MBenchVerdicts, LoopVerdictMatchesPaperStory) {
  for (const auto& mb : apps::all_mbenches()) {
    if (std::string(mb.name) != GetParam().name) continue;
    const Verdict loop = analyze(mb.ir, Model::Loop);
    EXPECT_EQ(loop.vectorizable, GetParam().loop_vectorizable)
        << mb.name << ": " << loop.summary();
    // All MBench kernels vectorize in the SPMD model.
    EXPECT_TRUE(analyze(mb.ir, Model::Spmd).vectorizable) << mb.name;
    return;
  }
  FAIL() << "unknown MBench " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMBenches, MBenchVerdicts,
    ::testing::Values(MBenchExpectation{"MBench1", true},
                      MBenchExpectation{"MBench2", false},
                      MBenchExpectation{"MBench3", false},
                      MBenchExpectation{"MBench4", true},
                      MBenchExpectation{"MBench5", false},
                      MBenchExpectation{"MBench6", false},
                      MBenchExpectation{"MBench7", false},
                      MBenchExpectation{"MBench8", true}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace mcl::veclegal

// --- reduction idioms & options ---------------------------------------------------

namespace mcl::veclegal {
namespace {

LoopBody dot_product_body() {
  // s = s + a[i]*b[i]; c[0..] untouched — the canonical reduction.
  LoopBody l{.name = "dot", .stmts = {}, .trip_count = 1024};
  l.stmts.push_back(assign_temp(0, {ref(0), ref(1)}, {0}, "s = s + a[i]*b[i]"));
  return l;
}

TEST(Reductions, FragileCompilerRefuses) {
  // Default options model the paper-era vectorizer: no reassociation.
  EXPECT_FALSE(analyze(dot_product_body(), Model::Loop).vectorizable);
}

TEST(Reductions, ReassociatingCompilerAccepts) {
  AnalysisOptions opts;
  opts.allow_reduction_idioms = true;
  const Verdict v = analyze(dot_product_body(), Model::Loop, opts);
  EXPECT_TRUE(v.vectorizable) << v.summary();
}

TEST(Reductions, ConsumedAccumulatorIsNotAnIdiom) {
  // t feeds another statement inside the loop: order matters, not a
  // reduction even with reassociation.
  LoopBody l = dot_product_body();
  l.stmts.push_back(store(ref(2), {}, "c[i] = s", {0}));
  AnalysisOptions opts;
  opts.allow_reduction_idioms = true;
  EXPECT_FALSE(analyze(l, Model::Loop, opts).vectorizable);
}

TEST(Reductions, MultiplyDefinedAccumulatorIsNotAnIdiom) {
  LoopBody l = dot_product_body();
  l.stmts.push_back(assign_temp(0, {ref(1)}, {}, "s = b[i]"));
  AnalysisOptions opts;
  opts.allow_reduction_idioms = true;
  EXPECT_FALSE(analyze(l, Model::Loop, opts).vectorizable);
}

TEST(Reductions, TwoIndependentReductionsBothAccepted) {
  LoopBody l{.name = "dot2", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(assign_temp(0, {ref(0)}, {0}, "s0 = s0 + a[i]"));
  l.stmts.push_back(assign_temp(1, {ref(1)}, {1}, "s1 = s1 * b[i]"));
  AnalysisOptions opts;
  opts.allow_reduction_idioms = true;
  EXPECT_TRUE(analyze(l, Model::Loop, opts).vectorizable);
}

TEST(Reductions, OtherRulesStillApply) {
  // A reduction over a strided load still trips L2.
  LoopBody l{.name = "strided-dot", .stmts = {}, .trip_count = 128};
  l.stmts.push_back(assign_temp(0, {ref(0, 2)}, {0}, "s = s + a[2i]"));
  AnalysisOptions opts;
  opts.allow_reduction_idioms = true;
  const Verdict v = analyze(l, Model::Loop, opts);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("L2"), std::string::npos);
}

TEST(Printer, RendersBodyAndMetadata) {
  LoopBody l = dot_product_body();
  const std::string text = to_string(l);
  EXPECT_NE(text.find("dot"), std::string::npos);
  EXPECT_NE(text.find("trip count 1024"), std::string::npos);
  EXPECT_NE(text.find("s = s + a[i]*b[i]"), std::string::npos);
  l.trip_count = 0;
  l.straight_line = false;
  const std::string text2 = to_string(l);
  EXPECT_NE(text2.find("uncountable"), std::string::npos);
  EXPECT_NE(text2.find("control flow"), std::string::npos);
}

}  // namespace
}  // namespace mcl::veclegal

// --- two-level loop nests -----------------------------------------------------------

#include "veclegal/nest.hpp"

namespace mcl::veclegal {
namespace {

/// a[i + di0][j + dj0] style helper: 2D ref with per-dimension offsets.
ArrayRef2 ref2(int array, long long i_off, long long j_off) {
  return ArrayRef2{array, {{1, 0, i_off}, {0, 1, j_off}}};
}

Stmt2 nest_store(ArrayRef2 w, std::vector<ArrayRef2> reads, std::string text) {
  Stmt2 s;
  s.array_write = std::move(w);
  s.array_reads = std::move(reads);
  s.text = std::move(text);
  return s;
}

LoopNest make_nest(std::vector<Stmt2> stmts, const char* name) {
  return LoopNest{name, 32, 64, std::move(stmts)};
}

TEST(Nest, ElementwiseIsFullyParallel) {
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(1, 0, 0)}, "a[i][j] = b[i][j]")},
      "copy");
  EXPECT_TRUE(find_dependences(nest).empty());
  EXPECT_TRUE(analyze_inner(nest).vectorizable);
  EXPECT_TRUE(can_interchange(nest).vectorizable);
  EXPECT_EQ(vectorization_strategy(nest), "inner");
}

TEST(Nest, InnerCarriedBlocksVectorizationButInterchangeRescues) {
  // a[i][j] = a[i][j-1]: distance (0, 1) — classic inner recurrence; rows
  // are independent, so interchanging makes the (new) inner loop parallel.
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(0, 0, -1)}, "a[i][j] = a[i][j-1]")},
      "inner-recurrence");
  const auto deps = find_dependences(nest);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].di, 0);
  EXPECT_EQ(deps[0].dj, 1);
  EXPECT_FALSE(analyze_inner(nest).vectorizable);
  EXPECT_TRUE(can_interchange(nest).vectorizable);
  EXPECT_EQ(vectorization_strategy(nest), "after-interchange");
}

TEST(Nest, OuterCarriedDoesNotBlockInnerVectorization) {
  // a[i][j] = a[i-1][j]: distance (1, 0) — carried by i only.
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(0, -1, 0)}, "a[i][j] = a[i-1][j]")},
      "outer-recurrence");
  const auto deps = find_dependences(nest);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].di, 1);
  EXPECT_EQ(deps[0].dj, 0);
  EXPECT_TRUE(analyze_inner(nest).vectorizable);
  EXPECT_EQ(vectorization_strategy(nest), "inner");
}

TEST(Nest, AntiDiagonalDependenceForbidsInterchange) {
  // a[i][j] = a[i-1][j+1]: distance (1, -1), direction (<, >).
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(0, -1, 1)}, "a[i][j] = a[i-1][j+1]")},
      "anti-diagonal");
  EXPECT_TRUE(analyze_inner(nest).vectorizable);  // not j-carried (di != 0)
  const Verdict inter = can_interchange(nest);
  EXPECT_FALSE(inter.vectorizable);
  EXPECT_NE(inter.summary().find("(<, >)"), std::string::npos);
}

TEST(Nest, DiagonalWavefrontVectorizesAfterInterchange) {
  // a[i][j] = a[i-1][j-1] + a[i][j-1]: inner blocked by (0,1); after
  // interchange both dependences are carried by the new outer loop — the
  // textbook interchange win.
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(0, -1, -1), ref2(0, 0, -1)},
                  "a[i][j] = a[i-1][j-1] + a[i][j-1]")},
      "diagonal");
  EXPECT_FALSE(analyze_inner(nest).vectorizable);
  EXPECT_EQ(vectorization_strategy(nest), "after-interchange");
}

TEST(Nest, TrueWavefrontHasNoStrategy) {
  // a[i][j] = a[i][j-1] + a[i-1][j]: carried by BOTH loops — neither order
  // vectorizes (needs skewing, which this analyzer does not model).
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(0, 0, -1), ref2(0, -1, 0)},
                  "a[i][j] = a[i][j-1] + a[i-1][j]")},
      "wavefront");
  EXPECT_FALSE(analyze_inner(nest).vectorizable);
  EXPECT_TRUE(can_interchange(nest).vectorizable);  // no (<, >) direction
  EXPECT_EQ(vectorization_strategy(nest), "none");
}

TEST(Nest, NonUnitInnerStrideRefused) {
  // a[i][2j] = b[i][j].
  const LoopNest nest = make_nest(
      {nest_store(ArrayRef2{0, {{1, 0, 0}, {0, 2, 0}}}, {ref2(1, 0, 0)},
                  "a[i][2j] = b[i][j]")},
      "strided");
  const Verdict v = analyze_inner(nest);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("N2"), std::string::npos);
}

TEST(Nest, TransposedReadIsNonContiguous) {
  // c[i][j] = b[j][i]: b's row index varies with j.
  const LoopNest nest = make_nest(
      {nest_store(ref2(2, 0, 0), {ArrayRef2{1, {{0, 1, 0}, {1, 0, 0}}}},
                  "c[i][j] = b[j][i]")},
      "transpose");
  const Verdict v = analyze_inner(nest);
  EXPECT_FALSE(v.vectorizable);
  EXPECT_NE(v.summary().find("non-contiguous"), std::string::npos);
}

TEST(Nest, InnerInvariantLoadAllowed) {
  // c[i][j] = a[i] * b[i][j]: a is 1D, broadcast along j.
  const LoopNest nest = make_nest(
      {nest_store(ref2(2, 0, 0),
                  {ArrayRef2{0, {{1, 0, 0}}}, ref2(1, 0, 0)},
                  "c[i][j] = a[i] * b[i][j]")},
      "broadcast");
  EXPECT_TRUE(analyze_inner(nest).vectorizable);
  EXPECT_EQ(vectorization_strategy(nest), "inner");
}

TEST(Nest, MatmulAccumulatorPattern) {
  // c[i][j] += a[i][k-as-j] ... modeled as the j-loop over columns with a
  // row-broadcast A element: c[i][j] = c[i][j] + a_scalar * b[k][j]; the
  // c[i][j] self-RMW is same-iteration, not loop-carried -> vectorizable.
  const LoopNest nest = make_nest(
      {nest_store(ref2(2, 0, 0), {ref2(2, 0, 0), ref2(1, 0, 0)},
                  "c[i][j] = c[i][j] + x * b[k][j]")},
      "matmul-inner");
  EXPECT_TRUE(find_dependences(nest).empty());
  EXPECT_TRUE(analyze_inner(nest).vectorizable);
}

TEST(Nest, DirectionVectorRendering) {
  Dependence2 d{1, -1, "x"};
  EXPECT_EQ(d.direction(), "(<, >)");
  Dependence2 e{0, 2, "x"};
  EXPECT_EQ(e.direction(), "(=, <)");
}

TEST(Nest, UncountableRefused) {
  LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ref2(1, 0, 0)}, "a[i][j] = b[i][j]")},
      "uncountable");
  nest.inner_trip = 0;
  EXPECT_FALSE(analyze_inner(nest).vectorizable);
}

TEST(Nest, RankMismatchAssumedDependent) {
  // A 1D alias of a 2D array: the analyzer must stay conservative.
  const LoopNest nest = make_nest(
      {nest_store(ref2(0, 0, 0), {ArrayRef2{0, {{0, 1, 0}}}},
                  "a[i][j] = a_flat[j]")},
      "rank-mismatch");
  EXPECT_FALSE(analyze_inner(nest).vectorizable);
}

}  // namespace
}  // namespace mcl::veclegal
