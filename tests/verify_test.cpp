// mclverify tests: the __int128 interval domain, the collision solver, the
// uniformity fixpoint (and its S4 export into veclegal's SPMD legality),
// access-pattern/reuse classification (cross-checked against cachesim), the
// V1/V2 lint analyses, proof discharge against launch shapes, the
// KernelIrRegistry analysis cache, and the Checked executor's
// proof-carrying replay skip.
#include <gtest/gtest.h>

#include <climits>
#include <cstdlib>
#include <vector>

#include "cachesim/cache.hpp"
#include "core/error.hpp"
#include "ocl/buffer.hpp"
#include "ocl/detail/checked_runner.hpp"
#include "ocl/kernel.hpp"
#include "ocl/types.hpp"
#include "san/static_analysis.hpp"
#include "veclegal/analysis.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/interval.hpp"
#include "verify/verify.hpp"

namespace mcl {
namespace {

using veclegal::ArrayInfo;
using veclegal::assign_temp;
using veclegal::barrier_stmt;
using veclegal::guarded;
using veclegal::KernelIr;
using veclegal::KernelIrRegistry;
using veclegal::ref;
using veclegal::store;
using verify::Interval;
using verify::KernelFacts;
using verify::LaunchProof;
using verify::Pattern;
using verify::Reuse;
using verify::ShapeClass;
using verify::Uniformity;
using verify::Wide;

/// Scoped env var (restores by unsetting — tests never inherit these).
struct EnvGuard {
  const char* name;
  EnvGuard(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name); }
};

// ---- interval domain ---------------------------------------------------------

// __int128 has no gtest printer, so Wide comparisons go through EXPECT_TRUE.
TEST(VerifyInterval, AffineCoversBothScaleSigns) {
  const Interval up = Interval::affine(3, 5, 0, 10);  // 3i+5, i in [0,10)
  EXPECT_TRUE(up.lo == 5);
  EXPECT_TRUE(up.hi == 32);
  const Interval down = Interval::affine(-2, 7, 0, 4);  // -2i+7, i in [0,4)
  EXPECT_TRUE(down.lo == 1);
  EXPECT_TRUE(down.hi == 7);
  const Interval shifted = Interval::affine(1, 0, 100, 8);  // i in [100,108)
  EXPECT_TRUE(shifted.lo == 100);
  EXPECT_TRUE(shifted.hi == 107);
}

TEST(VerifyInterval, WithinIsStrictUpperBound) {
  EXPECT_TRUE((Interval{0, 1023}.within(1024)));
  EXPECT_FALSE((Interval{0, 1024}.within(1024)));
  EXPECT_FALSE((Interval{-1, 5}.within(1024)));
  EXPECT_TRUE(Interval{}.within(0));  // empty interval: vacuously in bounds
}

TEST(VerifyInterval, NoOverflowAtLlongMaxAdjacentExtents) {
  // |scale| * count + offset near LLONG_MAX overflows long long; the Wide
  // domain must stay exact. 1*(i) + (LLONG_MAX-1024) for i in [0, 2048).
  const Interval iv = Interval::affine(1, LLONG_MAX - 1024, 0, 2048);
  EXPECT_TRUE(iv.lo == Wide(LLONG_MAX) - 1024);
  EXPECT_TRUE(iv.hi == Wide(LLONG_MAX) + 1023);  // exact, past long long
  EXPECT_FALSE(iv.within(LLONG_MAX));
  // The in-bounds sibling: i in [0, 1024) ends exactly at LLONG_MAX - 1.
  EXPECT_TRUE(Interval::affine(1, LLONG_MAX - 1024, 0, 1024).within(LLONG_MAX));
  // Huge negative scale: LLONG_MIN magnitude has no UB in wide_abs.
  EXPECT_TRUE(verify::wide_abs(Wide(LLONG_MIN)) == -(Wide(LLONG_MIN)));
  EXPECT_TRUE(verify::wide_gcd(Wide(LLONG_MIN), 3) == 1);
}

TEST(VerifyInterval, JoinAndRendering) {
  const Interval a{0, 3}, b{10, 20};
  const Interval j = a.join(b);
  EXPECT_TRUE(j.lo == 0);
  EXPECT_TRUE(j.hi == 20);
  EXPECT_TRUE(Interval{}.join(b).lo == 10);  // empty is the identity
  EXPECT_EQ((Interval{-5, 7}).to_string(), "[-5, 7]");
  EXPECT_EQ(verify::wide_str(Wide(LLONG_MAX) + 1), "9223372036854775808");
}

// ---- the shape-independent collision solver ---------------------------------

TEST(VerifyMayCollide, CoversScaleCombinations) {
  // n == 1: no distinct partner exists.
  EXPECT_FALSE(verify::may_collide({1, 0}, {1, 1}, 1));
  // Both pinned (scale 0): collide exactly when it is the same element.
  EXPECT_TRUE(verify::may_collide({0, 3}, {0, 3}, 16));
  EXPECT_FALSE(verify::may_collide({0, 3}, {0, 4}, 16));
  // Equal scales: distance must be stride-divisible and inside the range.
  EXPECT_TRUE(verify::may_collide({1, 0}, {1, 5}, 16));
  EXPECT_FALSE(verify::may_collide({1, 0}, {1, 5}, 5));
  EXPECT_FALSE(verify::may_collide({2, 0}, {2, 1}, 1024));  // parity
  // Unknown launch size (n = 0): any nonzero stride-divisible distance.
  EXPECT_TRUE(verify::may_collide({1, 0}, {1, 1 << 30}, 0));
  EXPECT_FALSE(verify::may_collide({1, 0}, {1, 0}, 0));  // distance 0 = self
  // Different scales, small space: exact Diophantine solve.
  EXPECT_TRUE(verify::may_collide({2, 0}, {3, 1}, 16));
  EXPECT_FALSE(verify::may_collide({2, 0}, {4, 1}, 16));  // parity mismatch
  // Negative strides.
  EXPECT_TRUE(verify::may_collide({-1, 15}, {1, 0}, 16));
  EXPECT_FALSE(verify::may_collide({-2, 0}, {-2, 1}, 1024));
}

// ---- uniformity dataflow + S4 export ----------------------------------------

/// t0 = uniform (scale-0 read of a read-only array), t1 = item-dependent
/// (scale-1 read); two guarded stores and a guarded barrier.
KernelIr guarded_ir(int barrier_guard) {
  KernelIr ir;
  ir.body.name = "verify_test_guarded";
  ir.body.trip_count = 64;
  ir.body.stmts.push_back(
      assign_temp(0, {ref(0, 0, 3)}, {}, "t0 = cfg[3]"));
  ir.body.stmts.push_back(assign_temp(1, {ref(0, 1, 0)}, {}, "t1 = cfg[i]"));
  ir.body.stmts.push_back(
      guarded(store(ref(1), {}, "if (t0) out[i] = 0"), 0));
  ir.body.stmts.push_back(
      guarded(store(ref(1), {ref(1)}, "if (t1) out[i] += 1"), 1));
  ir.body.stmts.push_back(
      guarded(barrier_stmt(false, "if (t?) barrier()"), barrier_guard));
  ir.arrays = {
      ArrayInfo{.array = 0, .arg_index = 0, .extent = 64, .read_only = true},
      ArrayInfo{.array = 1, .arg_index = 1, .extent = 64},
  };
  return ir;
}

TEST(VerifyUniformity, GuardTempsClassifiedThroughTheFixpoint) {
  const KernelFacts facts =
      verify::analyze("verify_test_guarded", guarded_ir(0));
  ASSERT_EQ(facts.stmt_uniform.size(), 5u);
  EXPECT_EQ(facts.stmt_uniform[0], Uniformity::Uniform);        // t0 def
  EXPECT_EQ(facts.stmt_uniform[1], Uniformity::Uniform);        // t1 def runs everywhere
  EXPECT_EQ(facts.stmt_uniform[2], Uniformity::Uniform);        // if (t0)
  EXPECT_EQ(facts.stmt_uniform[3], Uniformity::ItemDependent);  // if (t1)
  EXPECT_EQ(facts.stmt_uniform[4], Uniformity::Uniform);        // barrier
  EXPECT_FALSE(facts.barrier_divergence_possible);
  EXPECT_GE(facts.fixpoint_iterations, 1);

  // The same barrier guarded by the item-dependent temp diverges.
  const KernelFacts div = verify::analyze("verify_test_guarded", guarded_ir(1));
  EXPECT_EQ(div.stmt_uniform[4], Uniformity::ItemDependent);
  EXPECT_TRUE(div.barrier_divergence_possible);
}

TEST(VerifyUniformity, ReadOfWrittenArrayIsItemDependent) {
  // Even a scale-0 read is not uniform when another statement writes the
  // array: the read's value depends on which items already stored.
  KernelIr ir;
  ir.body.trip_count = 64;
  ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 1"));
  ir.body.stmts.push_back(assign_temp(0, {ref(0, 0, 0)}, {}, "t0 = a[0]"));
  ir.body.stmts.push_back(guarded(store(ref(1), {}, "if (t0) b[i] = 2"), 0));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .extent = 64},
               ArrayInfo{.array = 1, .arg_index = 1, .extent = 64}};
  const KernelFacts facts = verify::analyze("verify_test_written_read", ir);
  EXPECT_EQ(facts.stmt_uniform[2], Uniformity::ItemDependent);
}

TEST(VerifyUniformity, S4ExportMakesUniformGuardedBarriersSpmdLegal) {
  const KernelIr ir = guarded_ir(0);
  const KernelFacts facts = verify::analyze("verify_test_guarded", ir);
  const std::vector<bool> guards = verify::uniform_guards(facts);

  // Without the proof bits the SPMD vectorizer must assume divergence (S4).
  veclegal::AnalysisOptions bare;
  EXPECT_FALSE(
      veclegal::analyze(ir.body, veclegal::Model::Spmd, bare).vectorizable);

  // With them, the uniform-guarded barrier is legal again.
  veclegal::AnalysisOptions with_proof;
  with_proof.uniform_guard = &guards;
  EXPECT_TRUE(veclegal::analyze(ir.body, veclegal::Model::Spmd, with_proof)
                  .vectorizable);

  // An item-dependent guard stays illegal even with the proof bits.
  const KernelIr div_ir = guarded_ir(1);
  const KernelFacts div_facts = verify::analyze("verify_test_guarded", div_ir);
  const std::vector<bool> div_guards = verify::uniform_guards(div_facts);
  veclegal::AnalysisOptions div_opts;
  div_opts.uniform_guard = &div_guards;
  EXPECT_FALSE(veclegal::analyze(div_ir.body, veclegal::Model::Spmd, div_opts)
                   .vectorizable);
}

// ---- access-pattern classification ------------------------------------------

TEST(VerifyPatterns, ClassifiesStrideFamilies) {
  KernelIr ir;
  ir.body.trip_count = 1024;
  // out[i] = a[i] + a[2i] + b[0]; c[3i] = b[0]
  ir.body.stmts.push_back(store(ref(3), {ref(0, 1, 0), ref(0, 2, 0),
                                         ref(1, 0, 0)},
                                "out[i] = a[i] + a[2i] + b[0]"));
  ir.body.stmts.push_back(store(ref(2, 3, 0), {ref(1, 0, 0)}, "c[3i] = b[0]"));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .extent = 4096,
                         .read_only = true},
               ArrayInfo{.array = 1, .arg_index = 1, .extent = 8,
                         .read_only = true},
               ArrayInfo{.array = 2, .arg_index = 2, .extent = 4096},
               ArrayInfo{.array = 3, .arg_index = 3, .extent = 1024}};
  const KernelFacts facts = verify::analyze("verify_test_patterns", ir);

  const verify::ArrayFacts* a = facts.array_facts(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->read_pattern, Pattern::Gather);  // mixed strides 1 and 2
  EXPECT_EQ(a->write_pattern, Pattern::None);
  EXPECT_EQ(a->stride, 1);  // tightest nonzero |scale|

  const verify::ArrayFacts* b = facts.array_facts(1);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->read_pattern, Pattern::Broadcast);
  EXPECT_EQ(b->reuse, Reuse::Temporal);  // same element every item

  const verify::ArrayFacts* c = facts.array_facts(2);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->write_pattern, Pattern::Strided);
  EXPECT_EQ(c->stride, 3);

  const verify::ArrayFacts* out = facts.array_facts(3);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->write_pattern, Pattern::UnitStride);
  EXPECT_EQ(out->reuse, Reuse::Spatial);  // 4-byte elements share lines
  EXPECT_TRUE(out->race_free);
}

TEST(VerifyPatterns, ReuseClassesPredictCachesimMissRates) {
  // The reuse class is a cachesim prediction: run the classified access
  // stream through the L1 model and check the miss rate lands where the
  // class says. 4-byte elements, 64-byte lines (xeon_e5645 L1 geometry).
  const std::size_t n = 4096;
  auto miss_rate = [&](long long scale, long long offset) {
    cachesim::Cache l1(cachesim::CacheConfig{});  // 32 KiB, 64 B lines
    for (std::size_t i = 0; i < n; ++i) {
      l1.access(static_cast<std::uint64_t>(scale * static_cast<long long>(i) +
                                           offset) *
                4);
    }
    return l1.stats().miss_rate();
  };
  auto classify = [&](long long scale) {
    KernelIr ir;
    ir.body.trip_count = static_cast<long long>(n);
    ir.body.stmts.push_back(store(ref(1), {ref(0, scale, 0)}, "read"));
    ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0,
                           .extent = 1 << 20, .read_only = true},
                 ArrayInfo{.array = 1, .arg_index = 1,
                           .extent = static_cast<long long>(n)}};
    const KernelFacts f = verify::analyze("verify_test_reuse", ir);
    return f.array_facts(0)->reuse;
  };

  // Unit stride -> Spatial: ~1 miss per 16-element line.
  EXPECT_EQ(classify(1), Reuse::Spatial);
  EXPECT_LT(miss_rate(1, 0), 0.10);
  // Stride 16 (64 bytes) -> None: a fresh line per access.
  EXPECT_EQ(classify(16), Reuse::None);
  EXPECT_GT(miss_rate(16, 0), 0.90);
  // Scale 0 -> Temporal: one compulsory miss amortized over every access.
  EXPECT_EQ(classify(0), Reuse::Temporal);
  EXPECT_LT(miss_rate(0, 0), 0.01);
}

// ---- V1 dead stores and V2 redundant barriers -------------------------------

TEST(VerifyLint, DeadStoreDetectedButGuardedOverwriteIsNot) {
  auto make = [](bool guard_second) {
    KernelIr ir;
    ir.body.trip_count = 64;
    ir.body.stmts.push_back(assign_temp(0, {ref(1, 1, 0)}, {}, "t0 = b[i]"));
    ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 1"));
    veclegal::Stmt second = store(ref(0), {}, "a[i] = 2");
    if (guard_second) second = guarded(std::move(second), 0);
    ir.body.stmts.push_back(std::move(second));
    ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .extent = 64},
                 ArrayInfo{.array = 1, .arg_index = 1, .extent = 64,
                           .read_only = true}};
    return ir;
  };
  // Unconditional identical-subscript overwrite: the first store is dead.
  const KernelFacts dead = verify::analyze("verify_test_dead", make(false));
  EXPECT_EQ(dead.dead_stores, std::vector<int>{1});
  // A guarded overwrite may not execute: the first store must stay alive.
  const KernelFacts live = verify::analyze("verify_test_dead", make(true));
  EXPECT_TRUE(live.dead_stores.empty());
}

TEST(VerifyLint, DeadStoreSurvivesWhenRead) {
  KernelIr ir;
  ir.body.trip_count = 64;
  ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 1"));
  ir.body.stmts.push_back(assign_temp(0, {ref(0)}, {}, "t0 = a[i]"));
  ir.body.stmts.push_back(store(ref(0), {}, "a[i] = 2"));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .extent = 64}};
  EXPECT_TRUE(verify::analyze("verify_test_read", ir).dead_stores.empty());
}

TEST(VerifyLint, RedundantBarrierSeparatesNothing) {
  auto make = [](bool communicate) {
    KernelIr ir;
    ir.body.trip_count = 64;
    ir.body.stmts.push_back(store(ref(0), {}, "lm[i] = gid"));
    ir.body.stmts.push_back(barrier_stmt());
    ir.body.stmts.push_back(
        communicate
            ? store(ref(1), {ref(0, 1, 1)}, "out[i] = lm[i+1]")
            : store(ref(1), {ref(0)}, "out[i] = lm[i]"));
    ir.arrays = {ArrayInfo{.array = 0, .arg_index = 2, .extent = 65,
                           .local = true},
                 ArrayInfo{.array = 1, .arg_index = 0, .extent = 64}};
    return ir;
  };
  // Neighbor exchange: the barrier orders real communication — needed.
  EXPECT_TRUE(
      verify::analyze("verify_test_bar", make(true)).redundant_barriers.empty());
  // Same-subscript private use: nothing crosses the barrier — redundant.
  EXPECT_EQ(verify::analyze("verify_test_bar", make(false)).redundant_barriers,
            std::vector<int>{1});
}

// ---- proof discharge ---------------------------------------------------------

KernelIr provable_ir() {
  KernelIr ir;
  ir.body.name = "verify_test_provable";
  ir.body.stmts.push_back(
      store(ref(1), {ref(0, 1, 1)}, "out[i] = a[i+1]"));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .read_only = true},
               ArrayInfo{.array = 1, .arg_index = 1}};
  return ir;
}

ShapeClass shape_for(long long n, std::vector<long long> extents,
                     std::vector<bool> writable) {
  ShapeClass s;
  s.global0 = n;
  s.extents = std::move(extents);
  s.writable = std::move(writable);
  return s;
}

TEST(VerifyDischarge, BoundsRaceAndWritableGates) {
  const KernelFacts facts =
      verify::analyze("verify_test_provable", provable_ir());

  // a needs n+1 elements (read a[i+1]); out needs n, writable.
  const LaunchProof ok =
      verify::discharge(facts, shape_for(64, {65, 64}, {false, true}));
  EXPECT_TRUE(ok.all_proven());
  EXPECT_EQ(ok.accesses_covered, 2u);

  // Off-by-one extent: the read reaches index 64 of a 64-element array.
  const LaunchProof oob =
      verify::discharge(facts, shape_for(64, {64, 64}, {false, true}));
  EXPECT_FALSE(oob.array_proven[0]);
  EXPECT_TRUE(oob.array_proven[1]);

  // Written array bound read-only: the proof must refuse out.
  const LaunchProof ro =
      verify::discharge(facts, shape_for(64, {65, 64}, {false, false}));
  EXPECT_FALSE(ro.array_proven[1]);

  // Unresolvable extent (<= 0) is never proven.
  const LaunchProof unres =
      verify::discharge(facts, shape_for(64, {0, 64}, {false, true}));
  EXPECT_FALSE(unres.array_proven[0]);

  // A launch offset shifts the whole obligation.
  ShapeClass off = shape_for(64, {65, 64}, {false, true});
  off.offset0 = 100;
  const LaunchProof shifted = verify::discharge(facts, off);
  EXPECT_FALSE(shifted.array_proven[0]);  // reads reach a[164]
}

TEST(VerifyDischarge, RacyArraysAreNeverProven) {
  KernelIr ir;
  ir.body.stmts.push_back(store(ref(0, 0, 3), {}, "a[3] = 1"));  // all items
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0, .extent = 64}};
  const KernelFacts facts = verify::analyze("verify_test_racy", ir);
  ASSERT_FALSE(facts.arrays.empty());
  EXPECT_FALSE(facts.arrays[0].race_free);
  const LaunchProof proof = verify::discharge(facts, shape_for(8, {64}, {true}));
  EXPECT_FALSE(proof.array_proven[0]);  // in bounds, but a write-write race
}

TEST(VerifyDischarge, InjectionHookAcceptsOnePastTheEnd) {
  const KernelFacts facts =
      verify::analyze("verify_test_provable", provable_ir());
  const ShapeClass boundary = shape_for(64, {64, 64}, {false, true});
  EXPECT_FALSE(verify::discharge(facts, boundary).array_proven[0]);
  {
    EnvGuard inject("MCL_CHECK_INJECT", "verify");
    ASSERT_TRUE(verify::inject_unsound());
    // hi == extent now (unsoundly) passes — what the soundness oracle catches.
    EXPECT_TRUE(verify::discharge(facts, boundary).array_proven[0]);
  }
  EXPECT_FALSE(verify::inject_unsound());
}

// ---- registry analysis cache -------------------------------------------------

TEST(VerifyRegistry, FactsMemoizedAndInvalidatedOnReRegistration) {
  auto& reg = KernelIrRegistry::instance();
  const std::string name = "verify_test_cache_kernel";
  reg.add(name, provable_ir());
  const std::uint64_t gen0 = reg.generation(name);

  const auto first = verify::facts_for(name);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(verify::facts_for(name).get(), first.get());  // served from cache

  // Re-registration must drop the cached record and bump the generation.
  reg.add(name, guarded_ir(0));
  EXPECT_EQ(reg.generation(name), gen0 + 1);
  const auto second = verify::facts_for(name);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->stmt_uniform.size(), 5u);  // the new IR's facts

  EXPECT_EQ(verify::facts_for("verify_test_never_registered"), nullptr);
}

TEST(VerifyRegistry, SanReportsMemoizedPerSolveLimit) {
  auto& reg = KernelIrRegistry::instance();
  const std::string name = "verify_test_cache_report";
  reg.add(name, provable_ir());
  const auto r1 = san::analyze_kernel_cached(name);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(san::analyze_kernel_cached(name).get(), r1.get());
  // A different exact_solve_limit is a different cache entry.
  san::StaticOptions small;
  small.exact_solve_limit = 8;
  EXPECT_NE(san::analyze_kernel_cached(name, small).get(), r1.get());
  // Re-registration invalidates the report too.
  reg.add(name, provable_ir());
  EXPECT_NE(san::analyze_kernel_cached(name).get(), r1.get());
}

// ---- proof-carrying launches through the Checked executor --------------------

struct SquareLaunch {
  ocl::KernelArgs args;
  ocl::Buffer in{ocl::MemFlags::ReadOnly, 256 * sizeof(float)};
  ocl::Buffer out{ocl::MemFlags::ReadWrite, 256 * sizeof(float)};
  SquareLaunch() {
    args.set_buffer(0, in);
    args.set_buffer(1, out);
  }
};

TEST(VerifyProofCarrying, CheckedRunnerSkipsProvenReplay) {
  const ocl::KernelDef& def = ocl::Program::builtin().lookup("square");
  SquareLaunch launch;
  ocl::detail::CheckedRunner runner(def, launch.args, ocl::NDRange(256),
                                    ocl::NDRange(), 64 * 1024);
  runner.run();
  ASSERT_NE(runner.launch_proof(), nullptr);
  EXPECT_TRUE(runner.launch_proof()->all_proven());
  EXPECT_GT(runner.skipped_accesses(), 0u);
  EXPECT_EQ(runner.replayed_accesses(), 0u);  // the full-skip fast path
  EXPECT_TRUE(runner.flagged_arrays().empty());
}

TEST(VerifyProofCarrying, ForcedFullReplayStillExposesTheProof) {
  const ocl::KernelDef& def = ocl::Program::builtin().lookup("square");
  SquareLaunch launch;
  ocl::detail::CheckedRunner runner(def, launch.args, ocl::NDRange(256),
                                    ocl::NDRange(), 64 * 1024);
  runner.set_force_full_replay(true);
  runner.run();
  ASSERT_NE(runner.launch_proof(), nullptr);  // the soundness ground truth
  EXPECT_TRUE(runner.launch_proof()->all_proven());
  EXPECT_EQ(runner.skipped_accesses(), 0u);
  EXPECT_GT(runner.replayed_accesses(), 0u);
}

TEST(VerifyProofCarrying, KillSwitchDisablesProofs) {
  EnvGuard off("MCL_VERIFY", "off");
  ASSERT_FALSE(verify::runtime_enabled());
  const ocl::KernelDef& def = ocl::Program::builtin().lookup("square");
  SquareLaunch launch;
  ocl::detail::CheckedRunner runner(def, launch.args, ocl::NDRange(256),
                                    ocl::NDRange(), 64 * 1024);
  runner.run();
  EXPECT_EQ(runner.launch_proof(), nullptr);
  EXPECT_EQ(runner.skipped_accesses(), 0u);
  EXPECT_GT(runner.replayed_accesses(), 0u);
}

TEST(VerifyProofCarrying, UnprovenLaunchStillReplaysAndFlags) {
  // Bind the out buffer read-only: the proof must refuse the written array
  // and the replay must then catch the W1 write statically.
  const ocl::KernelDef& def = ocl::Program::builtin().lookup("square");
  ocl::KernelArgs args;
  ocl::Buffer in(ocl::MemFlags::ReadOnly, 256 * sizeof(float));
  ocl::Buffer out(ocl::MemFlags::ReadOnly, 256 * sizeof(float));
  args.set_buffer(0, in);
  args.set_buffer(1, out);
  ocl::detail::CheckedRunner runner(def, args, ocl::NDRange(256),
                                    ocl::NDRange(), 64 * 1024);
  EXPECT_THROW(runner.run(), core::Error);
  ASSERT_NE(runner.launch_proof(), nullptr);
  EXPECT_FALSE(runner.launch_proof()->all_proven());
  EXPECT_GT(runner.replayed_accesses(), 0u);   // out's write is replayed
  EXPECT_GT(runner.skipped_accesses(), 0u);    // in's read is still proven
  EXPECT_EQ(runner.flagged_arrays().count(1), 1u);
}

}  // namespace
}  // namespace mcl
