// mclcheck: differential conformance fuzzer driver.
//
//   mclcheck [--cases N] [--seed S|clock] [--ulp U] [--budget-seconds T]
//            [--repro-dir DIR] [--no-gpusim] [--quiet]
//       Generate N seeded cases and run each through every backend (pooled,
//       simd, checked, gpusim, dispatch-order, rechunk, split-oo, plan-flip)
//       against the scalar reference. On the first mismatch: minimize,
//       write a replayable .mclrepro file, print the diagnosis, exit 1.
//
//   mclcheck --replay FILE [--ulp U]
//       Parse, validate and re-run one repro file. Exit 0 when all backends
//       agree, 1 on a mismatch (printed), 2 on a parse/validation error.
//
//   mclcheck --dump-case SEED
//       Print the generated case and its lowered veclegal IR, then exit.
//
//   mclcheck --soundness [--cases N] [--seed S|clock] [--budget-seconds T]
//       mclverify soundness oracle: run every generated case under the
//       Checked executor with full replay forced and assert that no array
//       the static launch proof covers is ever flagged dynamically. Each
//       case is also rerun with one proven array's declared extent shrunk
//       to the exact boundary (replay must flag it, discharge must refuse
//       it). MCL_CHECK_INJECT=verify makes the discharge deliberately lax,
//       which this mode MUST report as a violation (self-test of the
//       oracle). Exit 0 sound, 1 violations, 2 usage/internal error.
//
// Exit codes: 0 all cases agree, 1 mismatch found, 2 usage/internal error.
//
// Tier-1 runs a fixed-seed 60-second-budget smoke of this tool
// (tools/tier1.sh); the nightly `ctest -C nightly -L fuzz` label runs it
// clock-seeded and longer. See docs/mclcheck.md.

#include <cstdint>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/differ.hpp"
#include "check/generator.hpp"
#include "check/repro.hpp"
#include "check/shrink.hpp"
#include "check/soundness.hpp"
#include "core/error.hpp"
#include "core/time.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/verify.hpp"

namespace {

using mcl::check::Case;
using mcl::check::DiffOptions;
using mcl::check::Mismatch;

struct Options {
  std::uint64_t cases = 500;
  std::uint64_t seed = 1;
  bool clock_seed = false;
  std::uint32_t ulp = 0;
  double budget_seconds = 0.0;  // 0 = unlimited
  std::string repro_dir = ".";
  std::string replay_file;
  bool dump_case = false;
  std::uint64_t dump_seed = 0;
  bool run_gpusim = true;
  bool quiet = false;
  bool soundness = false;
};

int usage() {
  std::cerr
      << "usage: mclcheck [--cases N] [--seed S|clock] [--ulp U]\n"
         "                [--budget-seconds T] [--repro-dir DIR]\n"
         "                [--no-gpusim] [--quiet]\n"
         "       mclcheck --replay FILE [--ulp U]\n"
         "       mclcheck --dump-case SEED\n"
         "       mclcheck --soundness [--cases N] [--seed S|clock]\n"
         "                [--budget-seconds T] [--quiet]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cases") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.cases = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::string(v) == "clock") {
        opt.clock_seed = true;
      } else {
        opt.seed = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--ulp") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.ulp = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--budget-seconds") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.budget_seconds = std::strtod(v, nullptr);
    } else if (arg == "--repro-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.repro_dir = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.replay_file = v;
    } else if (arg == "--dump-case") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.dump_case = true;
      opt.dump_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--soundness") {
      opt.soundness = true;
    } else if (arg == "--no-gpusim") {
      opt.run_gpusim = false;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      std::cerr << "mclcheck: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

int replay(const Options& opt) {
  std::ifstream in(opt.replay_file);
  if (!in) {
    std::cerr << "mclcheck: cannot open '" << opt.replay_file << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto parsed = mcl::check::parse_repro(text.str(), &error);
  if (!parsed) {
    std::cerr << "mclcheck: bad repro file: " << error << "\n";
    return 2;
  }
  std::cout << mcl::check::describe(parsed->kase);
  DiffOptions diff;
  diff.ulp_tol = opt.ulp;
  diff.run_gpusim = opt.run_gpusim;
  if (const auto m = mcl::check::run_case(parsed->kase, diff)) {
    std::cout << "MISMATCH: " << m->to_string() << "\n";
    return 1;
  }
  std::cout << "all backends agree\n";
  return 0;
}

int fuzz(const Options& opt) {
  DiffOptions diff;
  diff.ulp_tol = opt.ulp;
  diff.run_gpusim = opt.run_gpusim;
  const std::uint64_t run_seed =
      opt.clock_seed ? static_cast<std::uint64_t>(std::time(nullptr))
                     : opt.seed;
  if (!opt.quiet) {
    std::cout << "mclcheck: " << opt.cases << " cases, seed " << run_seed
              << (opt.clock_seed ? " (clock)" : "") << ", ulp " << opt.ulp
              << "\n";
  }
  const mcl::core::TimePoint t0 = mcl::core::now();
  std::uint64_t ran = 0;
  std::uint64_t barrier_cases = 0;
  std::uint64_t guarded_cases = 0;
  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    if (opt.budget_seconds > 0.0 &&
        mcl::core::elapsed_s(t0, mcl::core::now()) > opt.budget_seconds) {
      if (!opt.quiet) {
        std::cout << "mclcheck: budget reached after " << ran << " cases\n";
      }
      break;
    }
    const std::uint64_t cs = mcl::check::case_seed(run_seed, i);
    const Case c = mcl::check::generate_case(cs);
    barrier_cases += c.has_barrier() ? 1 : 0;
    guarded_cases +=
        c.work_items < static_cast<long long>(c.global) ? 1 : 0;
    ++ran;
    const auto mismatch = mcl::check::run_case(c, diff);
    if (!mismatch) continue;

    std::cout << "mclcheck: case " << i << " (seed " << cs
              << ") FAILED: " << mismatch->to_string() << "\n";
    std::cout << "mclcheck: minimizing...\n";
    mcl::check::ShrinkStats stats;
    const Case small = mcl::check::shrink_case(
        c,
        [&](const Case& cand) {
          return mcl::check::run_case(cand, diff).has_value();
        },
        400, &stats);
    const auto small_mismatch = mcl::check::run_case(small, diff);
    std::ostringstream note;
    note << "found by: mclcheck --cases " << opt.cases << " --seed "
         << run_seed << " (case " << i << ")\n";
    note << "mismatch: "
         << (small_mismatch ? small_mismatch->to_string()
                            : mismatch->to_string())
         << "\n";
    note << "shrink: " << stats.attempts << " attempts, " << stats.accepted
         << " accepted\n";
    std::istringstream desc(mcl::check::describe(small));
    for (std::string line; std::getline(desc, line);) note << line << "\n";

    const std::string path = opt.repro_dir + "/mclcheck-" +
                             std::to_string(run_seed) + "-" +
                             std::to_string(i) + ".mclrepro";
    std::ofstream out(path);
    out << mcl::check::serialize_repro(small, /*minimized=*/true, note.str());
    out.close();
    std::cout << "mclcheck: minimized to global=" << small.global
              << " local=" << small.local << " stmts=" << small.stmts.size()
              << " (" << stats.attempts << " shrink attempts)\n";
    std::cout << "mclcheck: repro written to " << path << "\n";
    std::cout << "mclcheck: replay with: tools/mclcheck --replay " << path
              << "\n";
    return 1;
  }
  if (!opt.quiet) {
    std::cout << "mclcheck: " << ran << " cases passed ("
              << barrier_cases << " barrier, " << guarded_cases
              << " guarded) in "
              << mcl::core::elapsed_s(t0, mcl::core::now()) << " s\n";
  }
  return 0;
}

int soundness(const Options& opt) {
  const std::uint64_t run_seed =
      opt.clock_seed ? static_cast<std::uint64_t>(std::time(nullptr))
                     : opt.seed;
  const bool injected = mcl::verify::inject_unsound();
  if (!mcl::verify::runtime_enabled()) {
    std::cerr << "mclcheck: --soundness is meaningless with MCL_VERIFY=off "
                 "(no proofs to check)\n";
    return 2;
  }
  if (!opt.quiet) {
    std::cout << "mclcheck: soundness oracle, " << opt.cases
              << " cases, seed " << run_seed
              << (opt.clock_seed ? " (clock)" : "")
              << (injected ? ", MCL_CHECK_INJECT=verify (expect violations)"
                           : "")
              << "\n";
  }
  const mcl::core::TimePoint t0 = mcl::core::now();
  mcl::check::SoundnessStats stats;
  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    if (opt.budget_seconds > 0.0 &&
        mcl::core::elapsed_s(t0, mcl::core::now()) > opt.budget_seconds) {
      if (!opt.quiet) {
        std::cout << "mclcheck: budget reached after " << stats.cases
                  << " cases\n";
      }
      break;
    }
    const Case c =
        mcl::check::generate_case(mcl::check::case_seed(run_seed, i));
    (void)mcl::check::run_soundness_case(c, stats);
  }
  if (!opt.quiet) {
    std::cout << "mclcheck: " << stats.cases << " cases, " << stats.launches
              << " launches, " << stats.proven_arrays << " proven arrays ("
              << stats.fully_proven << " fully proven launches, "
              << stats.accesses_covered << " accesses exempted), "
              << stats.boundary_checks << " boundary variants, "
              << stats.violations << " violations in "
              << mcl::core::elapsed_s(t0, mcl::core::now()) << " s\n";
  }
  for (const std::string& f : stats.failures) {
    std::cout << "mclcheck: SOUNDNESS VIOLATION: " << f << "\n";
  }
  // Under the fault hook, violations are the PASS condition: the lax
  // discharge must be caught. Without it, any violation is a real unsound
  // proof.
  if (injected) {
    if (stats.sound()) {
      std::cout << "mclcheck: MCL_CHECK_INJECT=verify produced no violation "
                   "-- the soundness check cannot fail, which is itself a "
                   "failure\n";
      return 1;
    }
    std::cout << "mclcheck: injected unsoundness detected as expected\n";
    return 0;
  }
  return stats.sound() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  try {
    if (opt.dump_case) {
      const Case c = mcl::check::generate_case(opt.dump_seed);
      std::cout << mcl::check::describe(c);
      std::cout << mcl::veclegal::to_string(mcl::check::lower_to_ir(c));
      return 0;
    }
    if (!opt.replay_file.empty()) return replay(opt);
    if (opt.soundness) return soundness(opt);
    return fuzz(opt);
  } catch (const mcl::core::Error& e) {
    std::cerr << "mclcheck: " << e.what() << "\n";
    return 2;
  }
}
