// mclconform — emits the CL 1.1 shim conformance coverage report.
//
// Walks the cl_surface() table (src/ocl/cl_surface.cpp) — the single source
// of truth tying include/CL/cl.h, the shim, the docs matrix and the test
// suite together — and writes a `mcl-conformance-v1` JSON document listing
// every entry point with its implementation status, covering tests, and the
// one-line semantics note. tier1 runs
//
//   build/tools/mclconform --json build/conformance.json
//   tools/plot_results.py --check build/conformance.json
//
// and the --check pass fails if any Implemented entry point has no covering
// conformance or matrix test, or if a listed test is not a known ctest
// target — so shim growth without test growth breaks the gate, not just a
// review convention.
//
// With no --json flag the report prints to stdout as a human-readable table.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ocl/cl_surface.hpp"

namespace {

using mcl::ocl::cl_surface;
using mcl::ocl::ClSurfaceEntry;
using mcl::ocl::ClSurfaceStatus;

std::vector<std::string> split_tests(const char* tests) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = tests; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Minimal JSON string escape; table strings are plain ASCII, but a stray
// quote or backslash in a note must not produce a malformed document.
std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(*p); break;
    }
  }
  return out;
}

int emit_json(std::FILE* f) {
  const auto surface = cl_surface();
  int implemented = 0, stubbed = 0, unsupported = 0, uncovered = 0;
  for (const ClSurfaceEntry& e : surface) {
    switch (e.status) {
      case ClSurfaceStatus::Implemented:
        ++implemented;
        if (split_tests(e.tests).empty()) ++uncovered;
        break;
      case ClSurfaceStatus::Stubbed: ++stubbed; break;
      case ClSurfaceStatus::Unsupported: ++unsupported; break;
    }
  }

  std::fprintf(f, "{\n  \"mcl-conformance\": 1,\n");
  std::fprintf(f, "  \"standard\": \"OpenCL 1.1\",\n");
  std::fprintf(f,
               "  \"summary\": {\"entry_points\": %zu, \"implemented\": %d, "
               "\"stubbed\": %d, \"unsupported\": %d, \"uncovered\": %d},\n",
               surface.size(), implemented, stubbed, unsupported, uncovered);
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < surface.size(); ++i) {
    const ClSurfaceEntry& e = surface[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"status\": \"%s\", \"tests\": [",
                 json_escape(e.name).c_str(), to_string(e.status));
    const auto tests = split_tests(e.tests);
    for (std::size_t t = 0; t < tests.size(); ++t) {
      std::fprintf(f, "%s\"%s\"", t ? ", " : "",
                   json_escape(tests[t].c_str()).c_str());
    }
    std::fprintf(f, "], \"note\": \"%s\"}%s\n", json_escape(e.note).c_str(),
                 i + 1 < surface.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return uncovered == 0 ? 0 : 1;
}

int print_table() {
  const auto surface = cl_surface();
  int uncovered = 0;
  std::printf("%-34s %-13s %s\n", "entry point", "status", "covering tests");
  for (int i = 0; i < 78; ++i) std::putchar('-');
  std::putchar('\n');
  for (const ClSurfaceEntry& e : surface) {
    std::printf("%-34s %-13s %s\n", e.name, to_string(e.status),
                e.tests[0] != '\0' ? e.tests : "-");
    if (e.status == ClSurfaceStatus::Implemented && e.tests[0] == '\0') {
      ++uncovered;
    }
  }
  if (uncovered != 0) {
    std::fprintf(stderr, "mclconform: %d Implemented entry point(s) uncovered\n",
                 uncovered);
  }
  return uncovered == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: mclconform [--json <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "mclconform: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  if (json_path == nullptr) return print_table();
  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "mclconform: cannot open '%s' for writing\n",
                 json_path);
    return 2;
  }
  const int rc = emit_json(f);
  std::fclose(f);
  if (rc != 0) {
    std::fprintf(stderr,
                 "mclconform: FAIL — an Implemented entry point has no "
                 "covering test (see 'uncovered' in %s)\n",
                 json_path);
    return 1;
  }
  std::printf("mclconform: wrote %s\n", json_path);
  return 0;
}
