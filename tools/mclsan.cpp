// mclsan: kernel sanitizer driver.
//
//   mclsan --list                list kernels that carry an IR descriptor
//   mclsan --static [kernel]     static analysis of every (or one) registered
//                                IR descriptor: races (S2/S3), bounds (B1),
//                                barrier placement (P1), read-only writes (W1)
//   mclsan --dynamic <kernel>    run the kernel once under the Checked
//                                executor with a canned launch; reports
//                                races, read-only-buffer writes, barrier
//                                divergence and local-memory overflow
//   mclsan --slowdown            measure Checked vs Loop on the 'square'
//                                kernel (the dynamic mode's overhead budget),
//                                plus full-replay vs proof-carrying Checked
//                                (the mclverify replay-skip speedup)
//   mclsan --all [--facts FILE]  static analysis of every registered kernel
//                                (cached reports) and a mclverify KernelFacts
//                                JSON dump (FILE, or stdout when omitted).
//                                Fails on errors outside the known-positive
//                                set (san_demo_*, mbench5), which are
//                                reported but do not fail the run (tier-1
//                                gate against new diagnostics).
//
// Exit code: 0 when every requested check is clean, 1 when any finding was
// reported, 2 on usage/launch-setup errors.
//
// The tool also registers a few deliberately broken demo kernels
// (san_demo_*) so each checker has a known-positive to exercise.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/time.hpp"
#include "ocl/buffer.hpp"
#include "ocl/device.hpp"
#include "ocl/kernel.hpp"
#include "san/lint.hpp"
#include "san/static_analysis.hpp"
#include "veclegal/kernel_ir.hpp"
#include "verify/verify.hpp"

namespace {

using mcl::ocl::Buffer;
using mcl::ocl::CpuDevice;
using mcl::ocl::CpuDeviceConfig;
using mcl::ocl::ExecutorKind;
using mcl::ocl::KernelArgs;
using mcl::ocl::KernelDef;
using mcl::ocl::KernelRegistrar;
using mcl::ocl::MemFlags;
using mcl::ocl::NDRange;
using mcl::ocl::Program;
using mcl::ocl::WorkItemCtx;
using mcl::veclegal::ArrayInfo;
using mcl::veclegal::KernelIr;
using mcl::veclegal::KernelIrRegistrar;
using mcl::veclegal::KernelIrRegistry;

// ---------------------------------------------------------------------------
// Seeded demo kernels: one known-positive per checker.
// ---------------------------------------------------------------------------

// Inter-workitem race, the MBench5 shape: item i writes what item i+1 reads.
void demo_racy(const KernelArgs& args, const WorkItemCtx& c) {
  float* a = args.buffer<float>(0);
  const std::size_t i = c.global_id(0);
  a[i + 1] = a[i] * 2.0f;
}
KernelIr demo_racy_ir() {
  KernelIr ir;
  ir.body.name = "san_demo_racy";
  ir.body.stmts.push_back(mcl::veclegal::store(
      mcl::veclegal::ref(0, 1, 1), {mcl::veclegal::ref(0)},
      "a[i+1] = 2 * a[i]"));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0}};
  return ir;
}

// Barrier executed only by even workitems: divergence.
void demo_divergent_barrier(const KernelArgs& args, const WorkItemCtx& c) {
  float* out = args.buffer<float>(0);
  if (c.local_id(0) % 2 == 0) c.barrier();
  out[c.global_id(0)] = static_cast<float>(c.local_id(0));
}
KernelIr demo_divergent_barrier_ir() {
  KernelIr ir;
  ir.body.name = "san_demo_divergent_barrier";
  ir.body.straight_line = false;
  ir.body.stmts.push_back(mcl::veclegal::barrier_stmt(
      /*divergent=*/true, "if (lid % 2 == 0) barrier()"));
  ir.body.stmts.push_back(mcl::veclegal::store(
      mcl::veclegal::ref(0), {}, "out[i] = lid"));
  ir.arrays = {ArrayInfo{.array = 0, .arg_index = 0}};
  return ir;
}

// Writes through whatever arg 0 is; the canned launch binds a ReadOnly
// buffer, so the Checked executor's snapshot diff reports W1.
void demo_readonly_write(const KernelArgs& args, const WorkItemCtx& c) {
  float* a = args.buffer<float>(0);
  a[c.global_id(0)] += 1.0f;
}

// Requests 8 floats of local memory but stores past them.
void demo_local_overflow(const KernelArgs& args, const WorkItemCtx& c) {
  (void)args;
  float* lm = c.local_mem<float>(1);
  lm[10] = 1.0f;  // slot 10 of an 8-float block
}

const KernelRegistrar reg_demo_racy{
    KernelDef{.name = "san_demo_racy", .scalar = &demo_racy}};
const KernelRegistrar reg_demo_divergent{
    KernelDef{.name = "san_demo_divergent_barrier",
              .scalar = &demo_divergent_barrier,
              .needs_barrier = true}};
const KernelRegistrar reg_demo_readonly{
    KernelDef{.name = "san_demo_readonly_write",
              .scalar = &demo_readonly_write}};
const KernelRegistrar reg_demo_local{
    KernelDef{.name = "san_demo_local_overflow",
              .scalar = &demo_local_overflow}};
const KernelIrRegistrar ir_demo_racy{"san_demo_racy", demo_racy_ir()};
const KernelIrRegistrar ir_demo_divergent{"san_demo_divergent_barrier",
                                          demo_divergent_barrier_ir()};

// ---------------------------------------------------------------------------
// Canned launches for --dynamic.
// ---------------------------------------------------------------------------

struct LaunchPlan {
  KernelArgs args;
  std::vector<std::unique_ptr<Buffer>> buffers;  // own the bound storage
  NDRange global;
  NDRange local;  // null = runtime default
};

Buffer& own(LaunchPlan& plan, MemFlags flags, std::size_t floats) {
  plan.buffers.push_back(
      std::make_unique<Buffer>(flags, floats * sizeof(float)));
  Buffer& b = *plan.buffers.back();
  float* p = b.as<float>();
  for (std::size_t i = 0; i < floats; ++i) p[i] = 0.25f * (i % 17);
  return b;
}

bool make_plan(const std::string& kernel, LaunchPlan& plan) {
  const std::size_t n = 1024;
  if (kernel.rfind("mbench", 0) == 0) {
    // Buffer sizing contract from mbench.hpp: a 3n+1, b n, c 2n.
    plan.args.set_buffer(0, own(plan, MemFlags::ReadWrite, 3 * n + 1));
    plan.args.set_buffer(1, own(plan, MemFlags::ReadOnly, n));
    plan.args.set_buffer(2, own(plan, MemFlags::ReadWrite, 2 * n));
    plan.args.set_scalar(3, 1.5f);
    plan.global = NDRange{n};
    return true;
  }
  if (kernel == "square") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadOnly, 4 * n));
    plan.args.set_buffer(1, own(plan, MemFlags::ReadWrite, 4 * n));
    plan.global = NDRange{4 * n};
    return true;
  }
  if (kernel == "vectoradd") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadOnly, 4 * n));
    plan.args.set_buffer(1, own(plan, MemFlags::ReadOnly, 4 * n));
    plan.args.set_buffer(2, own(plan, MemFlags::ReadWrite, 4 * n));
    plan.global = NDRange{4 * n};
    return true;
  }
  if (kernel == "san_demo_racy") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadWrite, n + 1));
    plan.global = NDRange{n};
    return true;
  }
  if (kernel == "san_demo_divergent_barrier") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadWrite, n));
    plan.global = NDRange{n};
    plan.local = NDRange{64};
    return true;
  }
  if (kernel == "san_demo_readonly_write") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadOnly, n));
    plan.global = NDRange{n};
    return true;
  }
  if (kernel == "san_demo_local_overflow") {
    plan.args.set_buffer(0, own(plan, MemFlags::ReadWrite, n));
    plan.args.set_local(1, 8 * sizeof(float));
    plan.global = NDRange{n};
    plan.local = NDRange{64};
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Modes.
// ---------------------------------------------------------------------------

int run_static(const std::string& only) {
  const KernelIrRegistry& registry = KernelIrRegistry::instance();
  std::size_t kernels = 0, flagged = 0;
  for (const std::string& name : registry.names()) {
    if (!only.empty() && name != only) continue;
    ++kernels;
    const mcl::san::Report report =
        mcl::san::analyze_kernel(name, *registry.find(name));
    if (report.clean() && report.diagnostics.empty()) {
      std::cout << name << ": clean\n";
      continue;
    }
    std::cout << report.to_string();
    if (!report.clean()) ++flagged;
  }
  if (kernels == 0) {
    std::cerr << "mclsan: no IR descriptor registered for '" << only << "'\n";
    return 2;
  }
  std::cout << "mclsan --static: " << kernels << " kernel(s) analyzed, "
            << flagged << " with errors\n";
  return flagged > 0 ? 1 : 0;
}

int run_dynamic(const std::string& kernel) {
  if (!Program::builtin().contains(kernel)) {
    std::cerr << "mclsan: unknown kernel '" << kernel << "'\n";
    return 2;
  }
  const KernelDef& def = Program::builtin().lookup(kernel);
  LaunchPlan plan;
  if (!make_plan(kernel, plan)) {
    std::cerr << "mclsan: no canned launch for '" << kernel
              << "' (supported: mbench1..8, square, vectoradd, san_demo_*)\n";
    return 2;
  }

  const mcl::san::Report lint = mcl::san::lint_launch(
      def, plan.args, plan.global, plan.local, ExecutorKind::Checked);
  if (!lint.diagnostics.empty()) std::cout << lint.to_string();

  CpuDevice device{CpuDeviceConfig{
      .threads = 1, .executor = ExecutorKind::Checked}};
  try {
    const auto result =
        device.launch(def, plan.args, plan.global, plan.local);
    std::cout << kernel << ": clean under Checked executor ("
              << result.seconds * 1e3 << " ms)\n";
    return lint.clean() ? 0 : 1;
  } catch (const mcl::core::Error& e) {
    if (e.status() != mcl::core::Status::SanitizerViolation) throw;
    std::cout << e.what() << "\n";
    return 1;
  }
}

int run_slowdown() {
  const KernelDef& def = Program::builtin().lookup("square");
  const std::size_t n = 1 << 20;
  LaunchPlan plan;
  plan.args.set_buffer(0, own(plan, MemFlags::ReadOnly, n));
  plan.args.set_buffer(1, own(plan, MemFlags::ReadWrite, n));
  plan.global = NDRange{n};

  auto best_of = [&](ExecutorKind kind) {
    CpuDevice device{CpuDeviceConfig{.threads = 1, .executor = kind}};
    double best = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      best = std::min(
          best, device.launch(def, plan.args, plan.global, plan.local).seconds);
    }
    return best;
  };
  ::unsetenv("MCL_VERIFY");  // normalize: measure proof-carrying mode first
  const double loop_s = best_of(ExecutorKind::Loop);
  const double checked_s = best_of(ExecutorKind::Checked);
  std::cout << "square n=" << n << ": loop " << loop_s * 1e3 << " ms, checked "
            << checked_s * 1e3 << " ms, slowdown "
            << (loop_s > 0 ? checked_s / loop_s : 0) << "x\n";

  // Same Checked launch with proofs disabled: every declared access is
  // shadow-replayed again, so checked_s / full_s is the replay-skip speedup
  // of proof-carrying launches ('square' is fully statically proven).
  ::setenv("MCL_VERIFY", "off", 1);
  const double full_s = best_of(ExecutorKind::Checked);
  ::unsetenv("MCL_VERIFY");
  std::cout << "proof-carrying replay skip: full replay " << full_s * 1e3
            << " ms, proven " << checked_s * 1e3 << " ms, speedup "
            << (checked_s > 0 ? full_s / checked_s : 0) << "x\n";
  return 0;
}

// --all: the tier-1 gate. Analyzes every registered IR descriptor through
// the memoized report cache, dumps the mclverify KernelFacts document, and
// fails only on errors in kernels that are not deliberate known-positives.
int run_all(bool dump_facts, const std::string& facts_path) {
  const KernelIrRegistry& registry = KernelIrRegistry::instance();
  std::size_t kernels = 0, flagged = 0;
  std::vector<std::shared_ptr<const mcl::verify::KernelFacts>> facts;
  for (const std::string& name : registry.names()) {
    ++kernels;
    const auto report = mcl::san::analyze_kernel_cached(name);
    if (!report->diagnostics.empty()) std::cout << report->to_string();
    // Known positives: the deliberately broken demo kernels and mbench5 (the
    // paper's racy auto-vectorization example; san_test pins it as the ONLY
    // flagged shipped kernel). Anything else with errors is a new diagnostic.
    const bool known_positive =
        name.rfind("san_demo_", 0) == 0 || name == "mbench5";
    if (!report->clean() && !known_positive) ++flagged;
    if (auto f = mcl::verify::facts_for(name)) facts.push_back(std::move(f));
  }
  if (dump_facts) {
    std::vector<const mcl::verify::KernelFacts*> ptrs;
    ptrs.reserve(facts.size());
    for (const auto& f : facts) ptrs.push_back(f.get());
    const std::string json = mcl::verify::facts_json(ptrs);
    if (facts_path.empty() || facts_path == "-") {
      std::cout << json << "\n";
    } else {
      std::ofstream out(facts_path);
      if (!out) {
        std::cerr << "mclsan: cannot write '" << facts_path << "'\n";
        return 2;
      }
      out << json << "\n";
    }
  }
  std::cout << "mclsan --all: " << kernels << " kernel(s) analyzed, "
            << facts.size() << " fact record(s), " << flagged
            << " kernel(s) with unexpected errors\n";
  return flagged > 0 ? 1 : 0;
}

void usage() {
  std::cerr << "usage: mclsan --list | --static [kernel] | --dynamic <kernel>"
               " | --slowdown | --all [--facts [FILE]]\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      usage();
      return 2;
    }
    const std::string mode = argv[1];
    if (mode == "--list") {
      for (const std::string& name : KernelIrRegistry::instance().names()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (mode == "--static") return run_static(argc > 2 ? argv[2] : "");
    if (mode == "--dynamic") {
      if (argc < 3) {
        usage();
        return 2;
      }
      return run_dynamic(argv[2]);
    }
    if (mode == "--slowdown") return run_slowdown();
    if (mode == "--all") {
      bool dump_facts = false;
      std::string facts_path;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--facts") == 0) {
          dump_facts = true;
          if (i + 1 < argc && argv[i + 1][0] != '-') facts_path = argv[++i];
        } else {
          usage();
          return 2;
        }
      }
      return run_all(dump_facts, facts_path);
    }
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mclsan: " << e.what() << "\n";
    return 2;
  }
}
