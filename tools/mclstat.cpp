// mclstat — pretty-printer for mclobs artifacts (docs/observability.md).
//
// Reads either a `.mclobs` flight-recorder dump (written by obs::anomaly /
// obs::dump_now) or a BENCH_serve.json load-harness report and renders the
// triage view: what triggered the dump, per-tenant latency decomposed into
// admission / dependency / queue / exec critical-path segments, queue depths
// at dump time, tuner convergence, and the tail of recent context-annotated
// events. Pointing it at a directory picks the newest `.mclobs` inside —
// the usual postmortem flow after MCL_OBS=<dir> wrote one.
//
//   build/tools/mclstat crash-dumps/                 # newest dump in dir
//   build/tools/mclstat build/serve_smoke.mclobs
//   build/tools/mclstat BENCH_serve.json
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace {

using mcl::obs::json::Value;
using mcl::obs::json::ValuePtr;

// --- formatting helpers ------------------------------------------------------

std::string fmt_ns(std::uint64_t ns) {
  char buf[64];
  if (ns >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000ull) {
    std::snprintf(buf, sizeof buf, "%.2f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " ns", ns);
  }
  return buf;
}

std::string fmt_ctx(std::uint64_t ctx) {
  if (ctx == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIx64, ctx);
  return buf;
}

void rule(const char* title) {
  std::printf("---- %s ", title);
  for (std::size_t i = std::strlen(title); i < 66; ++i) std::putchar('-');
  std::putchar('\n');
}

// --- critical-path aggregation over dump events ------------------------------

struct Segs {
  std::uint64_t admission = 0, dependency = 0, queue = 0, exec = 0, total = 0;
  [[nodiscard]] std::uint64_t named_sum() const {
    return admission + dependency + queue + exec;
  }
};

struct TenantAgg {
  std::vector<Segs> completes;  // sorted by total before reporting
};

Segs segs_of_event(const Value& ev) {
  Segs s;
  const Value* args = ev.get("args");
  if (args == nullptr || !args->is_array() || args->array.size() < 6) return s;
  const auto u = [&](std::size_t i) { return args->array[i]->u64; };
  s.admission = u(0);
  s.dependency = u(1);
  s.queue = u(2);
  s.exec = u(3);
  s.total = u(4);
  return s;
}

void print_breakdown_row(const char* label, const Segs& s) {
  const auto pct = [&](std::uint64_t part) {
    return s.total > 0
               ? 100.0 * static_cast<double>(part) / static_cast<double>(s.total)
               : 0.0;
  };
  std::printf("    %-10s total %-12s adm %-12s (%4.1f%%) dep %-12s (%4.1f%%)\n"
              "    %-10s                    que %-12s (%4.1f%%) exe %-12s (%4.1f%%)\n",
              label, fmt_ns(s.total).c_str(), fmt_ns(s.admission).c_str(),
              pct(s.admission), fmt_ns(s.dependency).c_str(), pct(s.dependency),
              "", fmt_ns(s.queue).c_str(), pct(s.queue), fmt_ns(s.exec).c_str(),
              pct(s.exec));
}

void print_tenant_paths(std::map<std::uint64_t, TenantAgg>& agg) {
  if (agg.empty()) {
    std::printf("  (no complete events in the recorder window)\n");
    return;
  }
  for (auto& [tenant, ta] : agg) {
    std::sort(ta.completes.begin(), ta.completes.end(),
              [](const Segs& a, const Segs& b) { return a.total < b.total; });
    const auto rank = [&](double p) {
      const std::size_t n = ta.completes.size();
      std::size_t r =
          static_cast<std::size_t>(p / 100.0 * static_cast<double>(n));
      return r >= n ? n - 1 : r;
    };
    std::printf("  tenant %" PRIu64 "  (%zu completed in window)\n", tenant,
                ta.completes.size());
    print_breakdown_row("p50", ta.completes[rank(50.0)]);
    print_breakdown_row("p99", ta.completes[rank(99.0)]);
  }
}

// --- .mclobs dump view -------------------------------------------------------

void print_events_tail(const Value& events, std::size_t limit) {
  const std::size_t n = events.array.size();
  const std::size_t from = n > limit ? n - limit : 0;
  if (from > 0) std::printf("  ... %zu earlier events elided ...\n", from);
  for (std::size_t i = from; i < n; ++i) {
    const Value& ev = *events.array[i];
    const std::string status = ev.get_string("status", "Success");
    std::printf("  %14" PRIu64 "  %-10s ctx=%-16s t%-3" PRIu64 " %s%s%s\n",
                ev.get_u64("ts_ns"), ev.get_string("kind", "?").c_str(),
                fmt_ctx(ev.get_u64("ctx")).c_str(), ev.get_u64("tenant"),
                ev.get_string("detail", "").c_str(),
                status != "Success" ? "  status=" : "",
                status != "Success" ? status.c_str() : "");
  }
}

int print_mclobs(const Value& doc) {
  const Value* trig = doc.get("trigger");
  rule("mclobs flight-recorder dump");
  if (trig != nullptr) {
    std::printf("  trigger: %s  ctx=%s  tenant=%" PRIu64 "  at %s\n",
                trig->get_string("kind", "?").c_str(),
                fmt_ctx(trig->get_u64("ctx")).c_str(), trig->get_u64("tenant"),
                fmt_ns(trig->get_u64("ts_ns")).c_str());
    const std::string detail = trig->get_string("detail");
    if (!detail.empty()) std::printf("  detail : %s\n", detail.c_str());
  }
  const Value* events = doc.get("events");
  const std::size_t in_window = events != nullptr ? events->array.size() : 0;
  std::printf("  events : %zu in window, %" PRIu64 " recorded in total\n",
              in_window, doc.get_u64("total_recorded"));

  rule("critical paths (complete events in window)");
  std::map<std::uint64_t, TenantAgg> agg;
  if (events != nullptr && events->is_array()) {
    for (const ValuePtr& evp : events->array) {
      if (evp->get_string("kind") != "complete") continue;
      agg[evp->get_u64("tenant")].completes.push_back(segs_of_event(*evp));
    }
  }
  print_tenant_paths(agg);

  const Value* sections = doc.get("sections");
  const Value* serve = sections != nullptr ? sections->get("serve") : nullptr;
  if (serve != nullptr) {
    rule("serve queues at dump time");
    std::printf("  in_flight %" PRIu64 " / max %" PRIu64 "\n",
                serve->get_u64("in_flight"), serve->get_u64("max_in_flight"));
    const Value* tenants = serve->get("tenants");
    if (tenants != nullptr && tenants->is_array()) {
      for (const ValuePtr& tp : tenants->array) {
        std::printf("  %-24s id=%-3" PRIu64 " pending %-5" PRIu64
                    " outstanding %-5" PRIu64 " done %" PRIu64 "/%" PRIu64
                    "  to=%" PRIu64 " cx=%" PRIu64 "\n",
                    tp->get_string("name", "?").c_str(), tp->get_u64("id"),
                    tp->get_u64("pending"), tp->get_u64("outstanding"),
                    tp->get_u64("completed"), tp->get_u64("submitted"),
                    tp->get_u64("timed_out"), tp->get_u64("cancelled"));
      }
    }
  }

  const Value* tune = sections != nullptr ? sections->get("tune") : nullptr;
  if (tune != nullptr) {
    rule("tuner");
    std::printf("  decisions %" PRIu64 "  explore %" PRIu64 "  exploit %" PRIu64
                "  converged %" PRIu64 "  quarantined %" PRIu64 "\n",
                tune->get_u64("decisions"), tune->get_u64("explore"),
                tune->get_u64("exploit"), tune->get_u64("converged"),
                tune->get_u64("quarantined"));
    const Value* entries = tune->get("entries");
    if (entries != nullptr && entries->is_array()) {
      for (const ValuePtr& ep : entries->array) {
        const Value* conv = ep->get("converged");
        std::printf("  %-40s %s local=%-10s launches %" PRIu64 "\n",
                    ep->get_string("kernel", "?").c_str(),
                    conv != nullptr && conv->boolean ? "converged " : "exploring ",
                    ep->get_string("incumbent_local", "?").c_str(),
                    ep->get_u64("launches"));
      }
    }
  }

  const Value* related = doc.get("related_events");
  if (related != nullptr && related->is_array() && !related->array.empty()) {
    rule("events of the triggering context");
    print_events_tail(*related, 32);
  }
  if (events != nullptr && events->is_array()) {
    rule("recent events");
    print_events_tail(*events, 16);
  }
  return 0;
}

// --- BENCH_serve.json view ---------------------------------------------------

int print_serve(const Value& doc) {
  rule("serve_load report");
  std::printf("  seed %" PRIu64 "  tenants %" PRIu64 "  requests %" PRIu64
              " (%" PRIu64 " completed)  %.2f s  %.0f req/s\n",
              doc.get_u64("seed"), doc.get_u64("tenants"),
              doc.get_u64("requests"), doc.get_u64("completed"),
              doc.get_number("duration_s"), doc.get_number("throughput_rps"));
  const Value* lat = doc.get("latency_ns");
  if (lat != nullptr) {
    std::printf("  latency p50 %s  p99 %s  p999 %s\n",
                fmt_ns(lat->get_u64("p50")).c_str(),
                fmt_ns(lat->get_u64("p99")).c_str(),
                fmt_ns(lat->get_u64("p999")).c_str());
  }

  const Value* tenants = doc.get("tenant_stats");
  if (tenants != nullptr && tenants->is_array()) {
    rule("tenants (latency / admission-wait / service)");
    for (const ValuePtr& tp : tenants->array) {
      std::printf("  %-24s %8" PRIu64 " reqs  p50 %-10s p99 %-10s adm99 %-10s"
                  " svc99 %s\n",
                  tp->get_string("name", "?").c_str(), tp->get_u64("completed"),
                  fmt_ns(tp->get_u64("p50_ns")).c_str(),
                  fmt_ns(tp->get_u64("p99_ns")).c_str(),
                  fmt_ns(tp->get_u64("admission_p99_ns")).c_str(),
                  fmt_ns(tp->get_u64("service_p99_ns")).c_str());
    }
  }

  const Value* paths = doc.get("critical_path");
  if (paths != nullptr && paths->is_array()) {
    rule("critical-path decomposition (exact records, p99 request)");
    for (const ValuePtr& tp : paths->array) {
      const Value* p99 = tp->get("p99_request");
      std::printf("  %-24s %8" PRIu64 " reqs  coverage %.1f%%\n",
                  tp->get_string("name", "?").c_str(), tp->get_u64("count"),
                  tp->get_number("mean_coverage") * 100.0);
      if (p99 != nullptr) {
        Segs s;
        s.admission = p99->get_u64("admission_ns");
        s.dependency = p99->get_u64("dependency_ns");
        s.queue = p99->get_u64("queue_ns");
        s.exec = p99->get_u64("exec_ns");
        s.total = p99->get_u64("total_ns");
        print_breakdown_row("p99", s);
      }
    }
  } else {
    std::printf("\n  (no critical_path section: run serve_load --obs)\n");
  }
  return 0;
}

// --- input resolution --------------------------------------------------------

/// A directory argument means "the newest .mclobs inside" (postmortem flow).
std::string resolve_path(const std::string& arg) {
  std::error_code ec;
  if (!std::filesystem::is_directory(arg, ec)) return arg;
  std::string best;
  std::filesystem::file_time_type best_time{};
  for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".mclobs") continue;
    const auto t = entry.last_write_time(ec);
    if (best.empty() || t > best_time) {
      best = entry.path().string();
      best_time = t;
    }
  }
  if (best.empty()) {
    std::fprintf(stderr, "mclstat: no .mclobs files in %s\n", arg.c_str());
    std::exit(1);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::printf("usage: mclstat <dump.mclobs | BENCH_serve.json | dump-dir>\n");
    return argc == 2 ? 0 : 2;
  }
  const std::string path = resolve_path(argv[1]);
  std::string error;
  const ValuePtr doc = mcl::obs::json::parse_file(path, &error);
  if (doc == nullptr) {
    std::fprintf(stderr, "mclstat: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("mclstat: %s\n", path.c_str());
  if (doc->get("mclobs") != nullptr) return print_mclobs(*doc);
  if (doc->get("mclserve") != nullptr) return print_serve(*doc);
  std::fprintf(stderr,
               "mclstat: %s is neither a .mclobs dump nor a serve report\n",
               path.c_str());
  return 1;
}
