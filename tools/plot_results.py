#!/usr/bin/env python3
"""Render bench results (the --json=<path> JSONL output) as quick charts.

Usage:
    for b in build/bench/fig*; do $b --json results.jsonl; done
    tools/plot_results.py results.jsonl            # ASCII bars to stdout
    tools/plot_results.py results.jsonl --png out/ # PNGs via matplotlib
    tools/plot_results.py results.jsonl --check    # validate only; exit 1 on
                                                   # missing/malformed input

--check also understands mcltrace Chrome-trace exports (the --trace=<path>
output): a file whose first non-blank character is "{" is treated as a trace
object and validated structurally — well-formed JSON, a "traceEvents" list,
non-decreasing per-thread timestamps, balanced B/E pairs per (pid, tid), and
non-negative durations on X events. A nonzero otherData.dropped_events only
warns (the trace is truncated, not malformed).

--check likewise understands mclprof profile documents (the --profile=<path>
/ MCL_PROF=<path> output, a single object with an "mclprof" version key):
the perf availability block must be present and typed, every kernel entry's
counters must be non-negative, IPC must sit in sane bounds (0..16), and a
profile claiming hardware=false must not fabricate cycle counts.

--check also understands mclverify KernelFacts documents (the
`mclsan --all --facts <path>` output, a single object with an "mclverify"
version key): every kernel entry's analysis results must be well-typed —
pattern/reuse classes drawn from the closed enum sets, per-array flags
consistent with the access counts, and lint indices within the statement
range. The facts file is the auto-tuner's input contract, so tier-1 pins its
schema here.

--check also understands mclcheck repro files (*.mclrepro, or any file whose
first non-comment line is "mclcheck-repro v1"): the file must be structurally
complete and carry "minimized 1" — committing raw unminimized fuzzer output
is an error; shrink it with tools/mclcheck first.

--check also understands mclobs flight-recorder dumps (`.mclobs` files, a
single object with an "mclobs" version key): the trigger must carry a known
anomaly kind and an integer context id, every recorded event must be fully
typed (ts/ctx/tenant/kind/status/args), related_events must match the
trigger context, and serve_load --obs reports must carry a critical_path
section whose p99 segments cover >= 95% of the measured latency.

--check also understands mclserve load-harness documents (the
bench/serve_load output, a single object with an "mclserve" version key,
committed as BENCH_serve.json): the throughput timeline must carry
monotonically non-decreasing timestamps and completion counts, latency
percentiles must be ordered (p50 <= p99 <= p999, globally and per tenant),
and every tenant's requests must be conserved (submitted == completed +
failed + cancelled + timed_out, with nothing left outstanding).

--check also understands mcltune ablation documents (the
bench/ablation_tuning output, a single object with an "mcltune" version
key, committed as BENCH_tune.json): every workload must carry positive
times for all four arms, the tuned arms must be no worse than the
paper-default baseline within noise tolerance, and online tuning must
converge within the launch budget — matching best-manual within noise —
on at least three workloads. This pins the self-tuner's acceptance
criteria in the tier-1 gate.

--check also understands mclconform conformance reports (the
tools/mclconform --json output, a single object with an "mcl-conformance"
version key): entries must be sorted by unique clXxx name with statuses from
the closed implemented/stubbed/unsupported set, listed tests must be known
ctest targets, the summary counts must match the entries — and every
Implemented entry point must name at least one covering conformance or
matrix test. This is the tier-1 coverage gate for the CL shim: growing
include/CL/cl.h without growing the test surface fails the check.

Results JSONL files may carry {"meta": {...}} provenance lines (written by
the bench --csv/--json header block); they are validated for shape and
skipped by the renderers.

Without matplotlib installed, the ASCII renderer still works — every table
becomes horizontal bars of its first numeric column group.
"""
import argparse
import json
import os
import sys


def load_tables(path):
    tables = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if isinstance(doc, dict) and "meta" in doc:
                continue  # provenance line, not a table
            tables.append(doc)
    return tables


def check_tables(path):
    """Validates a results file; returns a list of error strings (empty = ok).

    Checks existence, JSONL parse, and per-table shape: a "title" string, a
    non-empty "columns" list of strings, and "rows" whose entries are lists
    no wider than the columns.
    """
    errors = []
    if not os.path.exists(path):
        return [f"{path}: no such file"]
    docs = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    docs.append(json.loads(line))
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    tables = []
    for i, doc in enumerate(docs):
        if isinstance(doc, dict) and "meta" in doc:
            if not isinstance(doc["meta"], dict):
                errors.append(f"{path}: line {i}: 'meta' must be an object")
            continue
        tables.append(doc)
    if not tables:
        return errors + [f"{path}: no tables (empty results file)"]
    for i, table in enumerate(tables):
        where = f"{path}: table {i}"
        if not isinstance(table, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        title = table.get("title")
        if not isinstance(title, str) or not title:
            errors.append(f"{where}: missing or empty 'title'")
        else:
            where = f"{path}: table {i} ({title!r})"
        columns = table.get("columns")
        if not isinstance(columns, list) or not columns or not all(
            isinstance(c, str) for c in columns
        ):
            errors.append(f"{where}: 'columns' must be a non-empty list of strings")
            continue
        rows = table.get("rows")
        if not isinstance(rows, list):
            errors.append(f"{where}: 'rows' must be a list")
            continue
        for r, row in enumerate(rows):
            if not isinstance(row, list):
                errors.append(f"{where}: row {r} is not a list")
            elif len(row) > len(columns):
                errors.append(
                    f"{where}: row {r} has {len(row)} cells "
                    f"but only {len(columns)} columns"
                )
    return errors


def is_repro_file(path):
    """mclcheck repro files self-identify with a version header line."""
    if path.endswith(".mclrepro"):
        return True
    try:
        with open(path) as f:
            for line in f:
                stripped = line.strip()
                if stripped:
                    return stripped.startswith("mclcheck-repro v")
    except (OSError, UnicodeDecodeError):
        pass
    return False


def check_repro(path):
    """Validates one mclcheck .mclrepro file; returns error strings.

    A committed repro must be structurally complete (header, geometry, at
    least one array, an end marker) and MINIMIZED ("minimized 1"): raw
    fuzzer output is fine in a bug report, but the repo only carries shrunk
    cases a human can read. Replay semantics are re-checked by
    tools/mclcheck --replay; this pass only gates what gets committed.
    """
    errors = []
    if not os.path.exists(path):
        return [f"{path}: no such file"]
    try:
        with open(path) as f:
            lines = [ln.strip() for ln in f]
    except (OSError, UnicodeDecodeError) as e:
        return [f"{path}: {e}"]
    body = [ln for ln in lines if ln and not ln.startswith("#")]
    if not body or not body[0].startswith("mclcheck-repro v1"):
        errors.append(f"{path}: missing 'mclcheck-repro v1' header")
        return errors
    keys = {ln.split()[0] for ln in body}
    for required in ("seed", "minimized", "type", "geometry", "array", "end"):
        if required not in keys:
            errors.append(f"{path}: missing '{required}' line")
    minimized = [ln for ln in body if ln.startswith("minimized")]
    if minimized and minimized[0].split()[1:] != ["1"]:
        errors.append(
            f"{path}: unminimized repro (minimized != 1) — shrink it with "
            "tools/mclcheck before committing"
        )
    if body[-1] != "end":
        errors.append(f"{path}: content after the 'end' marker")
    return errors


def is_trace_file(path):
    """A Chrome-trace export is one JSON object; results files are JSONL whose
    first line is a complete object on its own. Peek at the first non-blank
    character: mcltrace writes the object pretty-printed, so "{" opens it."""
    try:
        with open(path) as f:
            for line in f:
                stripped = line.strip()
                if stripped:
                    return stripped == "{" or (
                        stripped.startswith("{") and "traceEvents" in stripped
                    )
    except OSError:
        pass
    return False


def is_profile_file(path):
    """An mclprof document is one JSON object whose first key is the
    "mclprof" version marker (written by --profile=<path> / MCL_PROF)."""
    try:
        with open(path) as f:
            for line in f:
                stripped = line.strip()
                if stripped:
                    return stripped.startswith("{") and '"mclprof"' in stripped
    except OSError:
        pass
    return False


# Counter fields every kernel entry must carry, all non-negative.
PROFILE_COUNTERS = (
    "launches",
    "groups",
    "items",
    "simd_items",
    "est_bytes",
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "branches",
    "branch_misses",
)

# An IPC outside (0, 16] means the counter group misread (modern x86 retires
# at most ~8 uops/cycle; 16 leaves slack for SMT aggregation).
PROFILE_MAX_IPC = 16.0


def check_profile(path):
    """Validates an mclprof profile JSON; returns error strings.

    Checks: parseable object, "mclprof" version 1, a typed "perf"
    availability block, kernel entries with non-negative counters, seconds
    >= 0, IPC within sane bounds, SIMD items <= items, and no fabricated
    cycle counts when hardware counters were unavailable.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: profile root is not a JSON object"]
    if doc.get("mclprof") != 1:
        errors.append(f"{path}: 'mclprof' version marker is not 1")
    perf = doc.get("perf")
    if not isinstance(perf, dict):
        errors.append(f"{path}: missing 'perf' availability object")
        perf = {}
    else:
        if not isinstance(perf.get("usable"), bool):
            errors.append(f"{path}: perf.usable must be a boolean")
        if not isinstance(perf.get("paranoid"), int):
            errors.append(f"{path}: perf.paranoid must be an integer")
        if not isinstance(perf.get("detail"), str) or not perf.get("detail"):
            errors.append(
                f"{path}: perf.detail must explain availability "
                f"(degradation is reported, never silent)"
            )
    kernels = doc.get("kernels")
    if not isinstance(kernels, list):
        errors.append(f"{path}: missing 'kernels' list")
        kernels = []
    for i, k in enumerate(kernels):
        where = f"{path}: kernels[{i}]"
        if not isinstance(k, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = k.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing kernel 'name'")
        else:
            where = f"{path}: kernel {name!r}"
        for field in PROFILE_COUNTERS:
            v = k.get(field)
            if not isinstance(v, int) or v < 0:
                errors.append(f"{where}: '{field}' must be a non-negative int")
        seconds = k.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            errors.append(f"{where}: 'seconds' must be >= 0")
        ipc = k.get("ipc")
        if not isinstance(ipc, (int, float)) or not (
            0 <= ipc <= PROFILE_MAX_IPC
        ):
            errors.append(
                f"{where}: 'ipc' {ipc!r} outside sane bounds "
                f"[0, {PROFILE_MAX_IPC}]"
            )
        items = k.get("items", 0)
        simd_items = k.get("simd_items", 0)
        if (
            isinstance(items, int)
            and isinstance(simd_items, int)
            and simd_items > items
        ):
            errors.append(f"{where}: simd_items {simd_items} > items {items}")
        hardware = k.get("hardware")
        if not isinstance(hardware, bool):
            errors.append(f"{where}: 'hardware' must be a boolean")
        elif not hardware and k.get("cycles", 0) != 0:
            errors.append(
                f"{where}: hardware=false but cycles nonzero "
                f"(software fallback must not fabricate counts)"
            )
    if not isinstance(doc.get("metrics"), dict):
        errors.append(f"{path}: missing 'metrics' registry object")
    if not errors:
        n_hw = sum(1 for k in kernels if isinstance(k, dict) and k.get("hardware"))
        print(
            f"{path}: ok (profile, {len(kernels)} kernels, "
            f"{n_hw} with hardware counters, perf usable={perf.get('usable')})"
        )
    return errors


def is_serve_file(path):
    """An mclserve load-harness document is one pretty-printed JSON object
    whose "mclserve" version marker sits on the first or second line. Must
    be sniffed before the trace check (same reason as facts files)."""
    try:
        with open(path) as f:
            seen = 0
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if '"mclserve"' in stripped:
                    return True
                seen += 1
                if seen >= 2:
                    return False
    except OSError:
        pass
    return False


# Per-tenant counter fields every tenant_stats entry must carry.
SERVE_TENANT_COUNTERS = (
    "submitted",
    "completed",
    "failed",
    "rejected",
    "cancelled",
    "timed_out",
    "batched",
    "forwarded",
    "cache_hits",
    "cache_misses",
)


def check_serve(path):
    """Validates a bench/serve_load BENCH_serve.json; returns error strings.

    Checks: parseable object, "mclserve" version 1, positive request and
    tenant counts, a timeline with monotonically non-decreasing timestamps
    and completion counts, ordered latency percentiles (p50 <= p99 <= p999)
    at the top level and per tenant, and per-tenant request conservation
    (submitted == completed + failed + cancelled + timed_out) — a leak here
    means the server lost or hung a ticket.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: serve bench root is not a JSON object"]
    if doc.get("mclserve") != 1:
        errors.append(f"{path}: 'mclserve' version marker is not 1")
    for field in ("requests", "tenants", "completed"):
        v = doc.get(field)
        if not isinstance(v, int) or v < 0:
            errors.append(f"{path}: '{field}' must be a non-negative int")
    if isinstance(doc.get("tenants"), int) and doc["tenants"] < 1:
        errors.append(f"{path}: 'tenants' must be >= 1")
    duration = doc.get("duration_s")
    if not isinstance(duration, (int, float)) or duration <= 0:
        errors.append(f"{path}: 'duration_s' must be > 0")

    def ordered(where, obj, keys):
        values = []
        for k in keys:
            v = obj.get(k)
            if not isinstance(v, int) or v < 0:
                errors.append(f"{where}: '{k}' must be a non-negative int")
                return
            values.append(v)
        if not (values[0] <= values[1] <= values[2]):
            errors.append(
                f"{where}: percentiles out of order "
                f"({keys[0]}={values[0]}, {keys[1]}={values[1]}, "
                f"{keys[2]}={values[2]})"
            )

    latency = doc.get("latency_ns")
    if not isinstance(latency, dict):
        errors.append(f"{path}: missing 'latency_ns' object")
    else:
        ordered(f"{path}: latency_ns", latency, ("p50", "p99", "p999"))

    timeline = doc.get("timeline")
    if not isinstance(timeline, list) or not timeline:
        errors.append(f"{path}: missing or empty 'timeline' list")
        timeline = []
    last_t, last_done = None, None
    for i, point in enumerate(timeline):
        where = f"{path}: timeline[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        t = point.get("t_s")
        done = point.get("completed")
        if not isinstance(t, (int, float)) or t < 0:
            errors.append(f"{where}: 't_s' must be a non-negative number")
            continue
        if not isinstance(done, int) or done < 0:
            errors.append(f"{where}: 'completed' must be a non-negative int")
            continue
        if last_t is not None and t < last_t:
            errors.append(f"{where}: t_s {t} goes backwards (previous {last_t})")
        if last_done is not None and done < last_done:
            errors.append(
                f"{where}: completed {done} went backwards (previous {last_done})"
            )
        last_t, last_done = t, done

    tenants = doc.get("tenant_stats")
    if not isinstance(tenants, list) or not tenants:
        errors.append(f"{path}: missing or empty 'tenant_stats' list")
        tenants = []
    for i, ts in enumerate(tenants):
        where = f"{path}: tenant_stats[{i}]"
        if not isinstance(ts, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = ts.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing tenant 'name'")
        else:
            where = f"{path}: tenant {name!r}"
        bad = False
        for field in SERVE_TENANT_COUNTERS:
            v = ts.get(field)
            if not isinstance(v, int) or v < 0:
                errors.append(f"{where}: '{field}' must be a non-negative int")
                bad = True
        if not bad:
            retired = (
                ts["completed"] + ts["failed"] + ts["cancelled"] + ts["timed_out"]
            )
            if retired != ts["submitted"]:
                errors.append(
                    f"{where}: request leak — submitted {ts['submitted']} but "
                    f"only {retired} retired (lost or hung tickets)"
                )
        ordered(where, ts, ("p50_ns", "p99_ns", "p999_ns"))
        # Admission-wait vs service split (mclobs): recorded separately so
        # queueing delay is visible apart from execution time.
        for prefix in ("admission", "service"):
            lo = ts.get(f"{prefix}_p50_ns")
            hi = ts.get(f"{prefix}_p99_ns")
            if not isinstance(lo, int) or lo < 0 or not isinstance(hi, int) or hi < 0:
                errors.append(
                    f"{where}: '{prefix}_p50_ns'/'{prefix}_p99_ns' must be "
                    "non-negative ints"
                )
            elif lo > hi:
                errors.append(
                    f"{where}: {prefix} percentiles out of order ({lo} > {hi})"
                )

    if not isinstance(doc.get("server"), dict):
        errors.append(f"{path}: missing 'server' stats object")

    # serve_load --obs: exact per-request critical paths. The named segments
    # of the p99 request must cover >= 95% of its measured latency — the
    # decomposition acceptance check, re-verified on the committed artifact.
    paths = doc.get("critical_path")
    if doc.get("obs") == 1 and not isinstance(paths, list):
        errors.append(f"{path}: obs run without a 'critical_path' list")
    if isinstance(paths, list):
        for i, cp in enumerate(paths):
            where = f"{path}: critical_path[{i}]"
            if not isinstance(cp, dict):
                errors.append(f"{where}: not a JSON object")
                continue
            if isinstance(cp.get("name"), str):
                where = f"{path}: critical_path {cp['name']!r}"
            p99 = cp.get("p99_request")
            if not isinstance(p99, dict):
                errors.append(f"{where}: missing 'p99_request' object")
                continue
            segs = []
            bad = False
            for field in ("admission_ns", "dependency_ns", "queue_ns", "exec_ns",
                          "total_ns"):
                v = p99.get(field)
                if not isinstance(v, int) or v < 0:
                    errors.append(f"{where}: '{field}' must be a non-negative int")
                    bad = True
                segs.append(v if isinstance(v, int) else 0)
            if bad:
                continue
            named, total = sum(segs[:4]), segs[4]
            if named > total:
                errors.append(
                    f"{where}: segments sum to {named} > total {total}"
                )
            if total > 0 and named < 0.95 * total:
                errors.append(
                    f"{where}: p99 segments cover only "
                    f"{100.0 * named / total:.1f}% of measured latency (< 95%)"
                )
    if not errors:
        print(
            f"{path}: ok (serve bench, {doc.get('requests')} requests, "
            f"{doc.get('tenants')} tenants, "
            f"{len(timeline)} timeline points)"
        )
    return errors


def is_obs_file(path):
    """An mclobs flight-recorder dump is one JSON object whose "mclobs"
    version marker sits on the first or second line (the writer emits it
    first). Sniffed before the trace check like the other marker formats."""
    try:
        with open(path) as f:
            seen = 0
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if '"mclobs"' in stripped:
                    return True
                seen += 1
                if seen >= 2:
                    return False
    except OSError:
        pass
    return False


OBS_EVENT_KINDS = frozenset(
    (
        "submit",
        "forward",
        "complete",
        "timeout",
        "cancel",
        "error",
        "quarantine",
        "drop_burst",
        "inject",
        "mark",
    )
)


def check_obs(path):
    """Validates a `.mclobs` flight-recorder dump; returns error strings.

    Checks: parseable object, "mclobs" version 1, a typed trigger (known
    kind, integer ctx/ts), a list of events each carrying ts_ns/ctx/tenant/
    kind/status/args[6], related_events filtered to the trigger context, and
    metrics/sections objects. Event timestamps are stamped before the
    recorder lock, so cross-thread order may wobble slightly — only gross
    (> 100 ms) inversions are flagged as corruption.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: mclobs root is not a JSON object"]
    if doc.get("mclobs") != 1:
        errors.append(f"{path}: 'mclobs' version marker is not 1")

    trigger = doc.get("trigger")
    if not isinstance(trigger, dict):
        errors.append(f"{path}: missing 'trigger' object")
        trigger = {}
    kind = trigger.get("kind")
    if kind not in OBS_EVENT_KINDS:
        errors.append(f"{path}: trigger kind {kind!r} is not a known kind")
    trigger_ctx = trigger.get("ctx")
    if not isinstance(trigger_ctx, int) or trigger_ctx < 0:
        errors.append(f"{path}: trigger 'ctx' must be a non-negative int")
        trigger_ctx = 0
    if not isinstance(trigger.get("ts_ns"), int):
        errors.append(f"{path}: trigger 'ts_ns' must be an int")

    total = doc.get("total_recorded")
    if not isinstance(total, int) or total < 0:
        errors.append(f"{path}: 'total_recorded' must be a non-negative int")

    def check_event(where, ev):
        if not isinstance(ev, dict):
            errors.append(f"{where}: not a JSON object")
            return None
        for field in ("ts_ns", "ctx", "tenant"):
            v = ev.get(field)
            if not isinstance(v, int) or v < 0:
                errors.append(f"{where}: '{field}' must be a non-negative int")
                return None
        if ev.get("kind") not in OBS_EVENT_KINDS:
            errors.append(f"{where}: unknown kind {ev.get('kind')!r}")
        if not isinstance(ev.get("status"), str):
            errors.append(f"{where}: 'status' must be a string")
        args = ev.get("args")
        if not isinstance(args, list) or len(args) != 6 or not all(
            isinstance(a, int) and a >= 0 for a in args
        ):
            errors.append(f"{where}: 'args' must be 6 non-negative ints")
        return ev

    events = doc.get("events")
    if not isinstance(events, list):
        errors.append(f"{path}: missing 'events' list")
        events = []
    high_water = None
    for i, ev in enumerate(events):
        ev = check_event(f"{path}: events[{i}]", ev)
        if ev is None:
            continue
        ts = ev["ts_ns"]
        if high_water is not None and ts + 100_000_000 < high_water:
            errors.append(
                f"{path}: events[{i}]: ts_ns {ts} is >100ms before an "
                f"earlier event ({high_water}) — ring corruption"
            )
        high_water = ts if high_water is None else max(high_water, ts)
    if isinstance(total, int) and total < len(events):
        errors.append(
            f"{path}: total_recorded {total} < {len(events)} events in window"
        )

    related = doc.get("related_events")
    if not isinstance(related, list):
        errors.append(f"{path}: missing 'related_events' list")
        related = []
    for i, ev in enumerate(related):
        ev = check_event(f"{path}: related_events[{i}]", ev)
        if ev is not None and trigger_ctx and ev["ctx"] != trigger_ctx:
            errors.append(
                f"{path}: related_events[{i}]: ctx {ev['ctx']} does not match "
                f"trigger ctx {trigger_ctx}"
            )

    if not isinstance(doc.get("metrics"), dict):
        errors.append(f"{path}: missing 'metrics' object")
    if not isinstance(doc.get("sections"), dict):
        errors.append(f"{path}: missing 'sections' object")

    if not errors:
        print(
            f"{path}: ok (mclobs dump, trigger {kind!r}, "
            f"{len(events)} events in window, {total} recorded)"
        )
    return errors


def is_conform_file(path):
    """An mclconform coverage report is one pretty-printed JSON object whose
    "mcl-conformance" version marker sits on the first or second line. Must
    be sniffed before the trace check (same reason as serve/facts files)."""
    try:
        with open(path) as f:
            seen = 0
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if '"mcl-conformance"' in stripped:
                    return True
                seen += 1
                if seen >= 2:
                    return False
    except OSError:
        pass
    return False


# Statuses the conformance schema draws from (src/ocl/cl_surface.hpp).
CONFORM_STATUSES = ("implemented", "stubbed", "unsupported")

# The ctest targets allowed to appear as covering tests. Pinned here so a
# typo'd (or renamed-without-updating-the-table) test name in
# src/ocl/cl_surface.cpp fails tier1 instead of silently counting as
# coverage for an entry point nothing actually exercises.
CONFORM_KNOWN_TESTS = (
    "cl_errors_test",
    "cl_shim_test",
    "subdevice_test",
    "conformance_hello_opencl",
    "conformance_parallel_min",
)


def check_conform(path):
    """Validates a tools/mclconform conformance.json; returns errors.

    Checks: parseable object, "mcl-conformance" version 1, a summary block
    whose counts match the entries list, entries sorted by unique name with
    statuses from the closed set, every listed test drawn from the known
    ctest-target set — and the coverage gate itself: every Implemented entry
    point must name at least one covering conformance or matrix test, and
    Unsupported entries must not claim coverage.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: conformance root is not a JSON object"]
    if doc.get("mcl-conformance") != 1:
        errors.append(f"{path}: 'mcl-conformance' version marker is not 1")

    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        return errors + [f"{path}: 'entries' must be a non-empty list"]

    counts = {s: 0 for s in CONFORM_STATUSES}
    uncovered = []
    names = []
    for i, e in enumerate(entries):
        where = f"{path}: entry {i}"
        if not isinstance(e, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = e.get("name")
        if not isinstance(name, str) or not name.startswith("cl"):
            errors.append(f"{where}: 'name' must be a clXxx entry-point name")
            name = ""
        names.append(name)
        status = e.get("status")
        if status not in CONFORM_STATUSES:
            errors.append(f"{where} ({name}): unknown status {status!r}")
            continue
        counts[status] += 1
        tests = e.get("tests")
        if not isinstance(tests, list) or not all(
            isinstance(t, str) for t in tests
        ):
            errors.append(f"{where} ({name}): 'tests' must be a string list")
            continue
        for t in tests:
            if t not in CONFORM_KNOWN_TESTS:
                errors.append(
                    f"{where} ({name}): '{t}' is not a known ctest target"
                )
        if status == "implemented" and not tests:
            uncovered.append(name)
        if status == "unsupported" and tests:
            errors.append(
                f"{where} ({name}): Unsupported entries must not list tests"
            )
        if not isinstance(e.get("note"), str) or not e.get("note"):
            errors.append(f"{where} ({name}): missing doc 'note'")

    if names != sorted(names) or len(set(names)) != len(names):
        errors.append(f"{path}: entries must be sorted by unique name")

    for name in uncovered:
        errors.append(
            f"{path}: {name}: Implemented entry point has no covering "
            f"conformance or matrix test (the tier1 coverage gate)"
        )

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append(f"{path}: missing 'summary' object")
    else:
        want = {
            "entry_points": len(entries),
            "implemented": counts["implemented"],
            "stubbed": counts["stubbed"],
            "unsupported": counts["unsupported"],
            "uncovered": len(uncovered),
        }
        for key, val in want.items():
            if summary.get(key) != val:
                errors.append(
                    f"{path}: summary.{key} is {summary.get(key)!r}, "
                    f"expected {val}"
                )

    if not errors:
        print(
            f"{path}: ok (CL conformance surface, "
            f"{counts['implemented']} implemented / "
            f"{counts['stubbed']} stubbed / "
            f"{counts['unsupported']} unsupported, all covered)"
        )
    return errors


def is_tune_file(path):
    """An mcltune ablation document is one pretty-printed JSON object whose
    "mcltune" version marker sits on the first or second line. Must be
    sniffed before the trace check (same reason as serve/facts files)."""
    try:
        with open(path) as f:
            seen = 0
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if '"mcltune"' in stripped:
                    return True
                seen += 1
                if seen >= 2:
                    return False
    except OSError:
        pass
    return False


# Per-workload timing fields every ablation_tuning entry must carry.
TUNE_ARM_FIELDS = (
    "paper_default_ms",
    "best_manual_ms",
    "tuned_seed_ms",
    "tuned_online_ms",
)

# Noise tolerance for "no worse than" assertions: quick-mode smoke runs use
# very short measurement windows, so the band is wider there.
TUNE_TOLERANCE_FULL = 1.25
TUNE_TOLERANCE_QUICK = 1.6
# The cost-model-only arm takes zero measurements; it may miss by more than
# timer noise, but a 2x regression would mean the model is actively harmful.
TUNE_SEED_TOLERANCE = 2.0
# Online tuning must converge and match best-manual on at least this many
# workloads (the ISSUE 8 acceptance criterion).
TUNE_MIN_CONVERGED_WORKLOADS = 3


def check_tune(path):
    """Validates a bench/ablation_tuning BENCH_tune.json; returns errors.

    Checks: parseable object, "mcltune" version 1, provenance meta (host,
    thread count, seed, repeats), non-empty workloads each carrying positive
    times for all four arms, tuned-online no worse than paper-default within
    noise tolerance on EVERY workload (the self-tuner must never regress the
    out-of-the-box configuration), the measurement-free seed arm within its
    looser band, and >= 3 workloads where online tuning both converged
    within the launch budget and matched the best manual configuration
    within noise.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: tune bench root is not a JSON object"]
    if doc.get("mcltune") != 1:
        errors.append(f"{path}: 'mcltune' version marker is not 1")

    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errors.append(f"{path}: missing 'meta' provenance object")
        meta = {}
    else:
        if not isinstance(meta.get("host"), str) or not meta.get("host"):
            errors.append(f"{path}: meta.host must name the machine")
        for field in ("logical_cpus", "threads", "repeats"):
            v = meta.get(field)
            if not isinstance(v, int) or v < 1:
                errors.append(f"{path}: meta.{field} must be a positive int")
        if not isinstance(meta.get("seed"), int):
            errors.append(f"{path}: meta.seed must be an int")
        if not isinstance(meta.get("quick"), bool):
            errors.append(f"{path}: meta.quick must be a boolean")
    quick = meta.get("quick") is True
    tol = TUNE_TOLERANCE_QUICK if quick else TUNE_TOLERANCE_FULL
    repeats = meta.get("repeats") if isinstance(meta.get("repeats"), int) else 50

    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        errors.append(f"{path}: missing or empty 'workloads' list")
        workloads = []
    n_converged_and_matching = 0
    for i, w in enumerate(workloads):
        where = f"{path}: workloads[{i}]"
        if not isinstance(w, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = w.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing workload 'name'")
        else:
            where = f"{path}: workload {name!r}"
        bad = False
        for field in TUNE_ARM_FIELDS:
            v = w.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                errors.append(f"{where}: '{field}' must be a positive number")
                bad = True
        converged_at = w.get("converged_at")
        if not isinstance(converged_at, int) or converged_at < 0:
            errors.append(f"{where}: 'converged_at' must be a non-negative int")
            bad = True
        if bad:
            continue
        default = w["paper_default_ms"]
        if w["tuned_online_ms"] > default * tol:
            errors.append(
                f"{where}: tuned-online {w['tuned_online_ms']:.4g} ms is worse "
                f"than paper-default {default:.4g} ms beyond the {tol}x noise "
                f"band — the self-tuner regressed the out-of-the-box config"
            )
        if w["tuned_seed_ms"] > default * TUNE_SEED_TOLERANCE:
            errors.append(
                f"{where}: tuned-seed {w['tuned_seed_ms']:.4g} ms is worse "
                f"than paper-default {default:.4g} ms beyond the "
                f"{TUNE_SEED_TOLERANCE}x band — the cost model is harmful"
            )
        if (
            0 < converged_at <= repeats
            and w["tuned_online_ms"] <= w["best_manual_ms"] * tol
        ):
            n_converged_and_matching += 1
    if workloads and n_converged_and_matching < TUNE_MIN_CONVERGED_WORKLOADS:
        errors.append(
            f"{path}: only {n_converged_and_matching} workload(s) converged "
            f"within {repeats} launches AND matched best-manual within the "
            f"{tol}x band (need >= {TUNE_MIN_CONVERGED_WORKLOADS})"
        )
    if not errors:
        print(
            f"{path}: ok (tune bench, {len(workloads)} workloads, "
            f"{n_converged_and_matching} converged+matching, "
            f"tolerance {tol}x{' quick' if quick else ''})"
        )
    return errors


def is_facts_file(path):
    """An mclverify KernelFacts document is one pretty-printed JSON object
    whose "mclverify" version marker sits on the first or second line (the
    opening brace is on its own line). Must be sniffed before the trace
    check, which would otherwise claim any pretty-printed object."""
    try:
        with open(path) as f:
            seen = 0
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if '"mclverify"' in stripped:
                    return True
                seen += 1
                if seen >= 2:
                    return False
    except OSError:
        pass
    return False


# Closed enum sets the facts schema draws from (src/verify/facts.hpp).
FACTS_PATTERNS = ("none", "broadcast", "unit-stride", "strided", "gather", "scatter")
FACTS_REUSE = ("none", "spatial", "temporal", "both")

# Per-array fields every facts entry must carry, with their types.
FACTS_ARRAY_BOOLS = ("local", "read", "written", "race_free")
FACTS_ARRAY_INTS = ("array", "arg_index", "extent", "elem_bytes", "stride", "accesses")


def check_facts(path):
    """Validates an mclverify KernelFacts JSON; returns error strings.

    Checks: parseable object, "mclverify" version 1, kernel entries with a
    name, a non-negative fixpoint iteration count, boolean stmt_uniform
    lists, lint indices (dead_stores / redundant_barriers) within the
    statement range, and per-array records whose pattern/reuse classes come
    from the closed enum sets and whose flags agree with the access counts
    (an array with accesses must be read or written; pattern "none" exactly
    when the matching direction is absent).
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: facts root is not a JSON object"]
    if doc.get("mclverify") != 1:
        errors.append(f"{path}: 'mclverify' version marker is not 1")
    kernels = doc.get("kernels")
    if not isinstance(kernels, list):
        return errors + [f"{path}: missing 'kernels' list"]
    n_arrays = 0
    for i, k in enumerate(kernels):
        where = f"{path}: kernels[{i}]"
        if not isinstance(k, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = k.get("kernel")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing 'kernel' name")
        else:
            where = f"{path}: kernel {name!r}"
        iters = k.get("fixpoint_iterations")
        if not isinstance(iters, int) or iters < 0:
            errors.append(f"{where}: 'fixpoint_iterations' must be a non-negative int")
        if not isinstance(k.get("barrier_divergence_possible"), bool):
            errors.append(f"{where}: 'barrier_divergence_possible' must be a boolean")
        uniform = k.get("stmt_uniform")
        if not isinstance(uniform, list) or not all(
            isinstance(u, bool) for u in uniform
        ):
            errors.append(f"{where}: 'stmt_uniform' must be a list of booleans")
            uniform = []
        for field in ("dead_stores", "redundant_barriers"):
            idxs = k.get(field)
            if not isinstance(idxs, list) or not all(
                isinstance(x, int) for x in idxs
            ):
                errors.append(f"{where}: '{field}' must be a list of ints")
                continue
            for x in idxs:
                if x < 0 or x >= len(uniform):
                    errors.append(
                        f"{where}: '{field}' index {x} outside the statement "
                        f"range [0, {len(uniform)})"
                    )
        arrays = k.get("arrays")
        if not isinstance(arrays, list):
            errors.append(f"{where}: missing 'arrays' list")
            continue
        for j, a in enumerate(arrays):
            aw = f"{where}: arrays[{j}]"
            if not isinstance(a, dict):
                errors.append(f"{aw}: not a JSON object")
                continue
            n_arrays += 1
            for field in FACTS_ARRAY_INTS:
                if not isinstance(a.get(field), int):
                    errors.append(f"{aw}: '{field}' must be an int")
            for field in FACTS_ARRAY_BOOLS:
                if not isinstance(a.get(field), bool):
                    errors.append(f"{aw}: '{field}' must be a boolean")
            for field in ("read_pattern", "write_pattern"):
                if a.get(field) not in FACTS_PATTERNS:
                    errors.append(
                        f"{aw}: '{field}' {a.get(field)!r} not in {FACTS_PATTERNS}"
                    )
            if a.get("reuse") not in FACTS_REUSE:
                errors.append(f"{aw}: 'reuse' {a.get('reuse')!r} not in {FACTS_REUSE}")
            if isinstance(a.get("elem_bytes"), int) and a["elem_bytes"] <= 0:
                errors.append(f"{aw}: 'elem_bytes' must be positive")
            if isinstance(a.get("stride"), int) and a["stride"] < 0:
                errors.append(f"{aw}: 'stride' must be the |scale| magnitude (>= 0)")
            if isinstance(a.get("accesses"), int):
                if a["accesses"] < 0:
                    errors.append(f"{aw}: 'accesses' must be >= 0")
                if a["accesses"] > 0 and not (a.get("read") or a.get("written")):
                    errors.append(f"{aw}: accesses recorded but neither read nor written")
            if a.get("read_pattern") == "none" and a.get("read") is True:
                errors.append(f"{aw}: read=true but read_pattern 'none'")
            if a.get("write_pattern") == "none" and a.get("written") is True:
                errors.append(f"{aw}: written=true but write_pattern 'none'")
    if not errors:
        print(f"{path}: ok (facts, {len(kernels)} kernels, {n_arrays} arrays)")
    return errors


def check_trace(path):
    """Validates an mcltrace Chrome-trace JSON; returns error strings.

    Checks: parseable JSON object, a "traceEvents" list, every event an
    object with string "ph", numeric "ts", balanced B/E per (pid, tid),
    non-negative "dur" on X events, and per-thread non-decreasing ts.
    Reports (not fails) a nonzero otherData.dropped_events count.
    """
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    if not isinstance(doc, dict):
        return [f"{path}: trace root is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing 'traceEvents' list"]
    open_stacks = {}  # (pid, tid) -> count of unmatched B events
    last_ts = {}  # (pid, tid) -> last seen ts
    n_spans = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing 'ph' phase")
            continue
        if ph == "M":  # metadata events carry no timestamp
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: ph {ph!r} without numeric 'ts'")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        # mcltrace drains per-thread SPSC rings in order, so within one
        # thread ts must never go backwards (the shared-epoch guarantee).
        if key in last_ts and ts < last_ts[key]:
            errors.append(
                f"{where}: ts {ts} goes backwards on pid/tid {key} "
                f"(previous {last_ts[key]})"
            )
        last_ts[key] = ts
        if ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
            n_spans += 1
        elif ph == "E":
            if open_stacks.get(key, 0) <= 0:
                errors.append(f"{where}: 'E' with no matching 'B' on {key}")
            else:
                open_stacks[key] -= 1
        elif ph == "X":
            n_spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' with missing or negative 'dur'")
    for key, depth in sorted(open_stacks.items(), key=str):
        if depth > 0:
            errors.append(
                f"{path}: {depth} unmatched 'B' event(s) on pid/tid {key}"
            )
    dropped = (doc.get("otherData") or {}).get("dropped_events", 0)
    if isinstance(dropped, int) and dropped > 0:
        print(
            f"{path}: warning: {dropped} events were dropped on ring "
            f"overflow; the timeline is truncated",
            file=sys.stderr,
        )
    if not errors:
        print(f"{path}: ok (trace, {len(events)} events, {n_spans} spans)")
    return errors


def numeric_columns(table):
    """Indices of columns whose cells are all numbers (or null)."""
    cols = []
    for c in range(len(table["columns"])):
        values = [row[c] for row in table["rows"] if c < len(row)]
        if values and all(isinstance(v, (int, float)) or v is None for v in values):
            cols.append(c)
    return cols


def ascii_render(table, width=48):
    print(f"\n=== {table['title']} ===")
    num_cols = numeric_columns(table)
    if not num_cols or not table["rows"]:
        print("(no numeric series)")
        return
    # Label = concatenation of the non-numeric leading cells.
    label_cols = [c for c in range(len(table["columns"])) if c not in num_cols]
    for c in num_cols:
        name = table["columns"][c]
        values = [(row[c] if row[c] is not None else 0.0) for row in table["rows"]]
        peak = max((abs(v) for v in values), default=0.0)
        if peak == 0.0:
            continue
        print(f"-- {name}")
        for row, v in zip(table["rows"], values):
            label = " ".join(str(row[i]) for i in label_cols if i < len(row))
            bar = "#" * max(1, int(width * abs(v) / peak)) if v else ""
            print(f"  {label[:38]:38} {bar} {v:g}")


def png_render(tables, out_dir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(out_dir, exist_ok=True)
    for i, table in enumerate(tables):
        num_cols = numeric_columns(table)
        if not num_cols or not table["rows"]:
            continue
        label_cols = [c for c in range(len(table["columns"])) if c not in num_cols]
        labels = [
            " ".join(str(row[c]) for c in label_cols if c < len(row))
            for row in table["rows"]
        ]
        fig, ax = plt.subplots(figsize=(10, max(3, 0.4 * len(labels))))
        for c in num_cols:
            values = [row[c] if row[c] is not None else 0.0 for row in table["rows"]]
            ax.barh(
                [f"{l} [{table['columns'][c]}]" for l in labels],
                values,
                label=table["columns"][c],
            )
        ax.set_title(table["title"])
        ax.legend(fontsize=7)
        fig.tight_layout()
        name = f"{i:02d}_" + "".join(
            ch if ch.isalnum() else "_" for ch in table["title"][:40]
        )
        fig.savefig(os.path.join(out_dir, name + ".png"), dpi=120)
        plt.close(fig)
        print(f"wrote {name}.png")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="JSONL file produced with --json")
    parser.add_argument("--png", metavar="DIR", help="write PNGs instead of ASCII")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the results file and exit (nonzero on problems)",
    )
    args = parser.parse_args()

    if args.check:
        if is_repro_file(args.jsonl):
            errors = check_repro(args.jsonl)
            if not errors:
                print(f"{args.jsonl}: ok (minimized mclcheck repro)")
        elif is_profile_file(args.jsonl):
            errors = check_profile(args.jsonl)
        elif is_serve_file(args.jsonl):
            errors = check_serve(args.jsonl)
        elif is_obs_file(args.jsonl):
            errors = check_obs(args.jsonl)
        elif is_conform_file(args.jsonl):
            errors = check_conform(args.jsonl)
        elif is_tune_file(args.jsonl):
            errors = check_tune(args.jsonl)
        elif is_facts_file(args.jsonl):
            errors = check_facts(args.jsonl)
        elif is_trace_file(args.jsonl):
            errors = check_trace(args.jsonl)
        else:
            errors = check_tables(args.jsonl)
            if not errors:
                print(f"{args.jsonl}: ok ({len(load_tables(args.jsonl))} tables)")
        for err in errors:
            print(err, file=sys.stderr)
        return 1 if errors else 0

    tables = load_tables(args.jsonl)
    if not tables:
        print("no tables found", file=sys.stderr)
        return 1
    if args.png:
        png_render(tables, args.png)
    else:
        for table in tables:
            ascii_render(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
