#!/usr/bin/env bash
# Tier-1 gate: the checks every change must pass before merging.
#
#   1. plain Release build + full ctest suite;
#   2. ASan+UBSan build (-DMCL_SANITIZE=address,undefined) + full ctest suite.
#
# Usage: tools/tier1.sh [jobs]    (jobs defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "== tier1: plain build =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure

echo "== tier1: ASan+UBSan build =="
cmake -B build-asan -S . -DMCL_SANITIZE=address,undefined
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure

echo "== tier1: all checks passed =="
