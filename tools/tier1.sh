#!/usr/bin/env bash
# Tier-1 gate: the checks every change must pass before merging.
#
#   1. plain Release build + full ctest suite (plus explicit `-L trace`,
#      `-L prof`, `-L verify`, `-L serve`, `-L tune`, `-L obs` and
#      `-L conform` passes for the mcltrace ring/exporter, mclprof
#      registry/profiler, mclverify dataflow/soundness, mclserve
#      admission/fairness, mcltune policy/cache, mclobs
#      context/flight-recorder, and CL-shim conformance suites — the
#      `conform` label runs the two unmodified external-style C hosts from
#      examples/conformance/ plus the error matrix and shim integration
#      tests),
#      then the mclconform coverage report (conformance.json from the
#      cl_surface table) schema- and coverage-checked by plot_results.py
#      (an Implemented CL entry point with no covering test fails tier1),
#      then the mclsan --all static gate (fails on new diagnostics; the
#      KernelFacts JSON it emits is schema-checked by plot_results.py),
#      a fixed-seed 60-second mclcheck differential smoke and a scan
#      rejecting unminimized committed .mclrepro files,
#      and a fixed-seed serve_load closed-loop smoke whose BENCH_serve.json
#      output is schema-checked by plot_results.py (lost/hung tickets fail
#      the harness itself; a malformed trajectory fails the check),
#      plus a fixed-seed serve_load --obs smoke asserting the mclobs
#      critical-path decomposition covers >= 95% of measured latency and
#      that mclstat renders the report and the `.mclobs` snapshot,
#      plus a fixed-seed ablation_tuning smoke whose BENCH_tune.json output
#      is schema-checked (tuned >= paper-default within noise, bounded
#      online convergence);
#   2. ASan+UBSan build (-DMCL_SANITIZE=address,undefined) + full ctest suite;
#   3. TSan build (-DMCL_SANITIZE=thread) running the `threading` + `queue` +
#      `trace` + `prof` + `serve` + `tune` + `subdev` labels — the
#      thread-pool wakeup, event-graph executor, trace-ring, metrics-shard,
#      multi-tenant serve, tuner decide/report/cache, and sub-device
#      sharding tests (concurrent shard launches from multiple host threads
#      over disjoint worker spans). Only those labels: TSan cannot track
#      ucontext fiber stacks, so the fiber suites are excluded via the
#      label selection.
#
# Usage: tools/tier1.sh [jobs]    (jobs defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "== tier1: plain build =="
cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure
ctest --test-dir build --output-on-failure -L trace
ctest --test-dir build --output-on-failure -L prof
ctest --test-dir build --output-on-failure -L verify
ctest --test-dir build --output-on-failure -L serve
ctest --test-dir build --output-on-failure -L tune
ctest --test-dir build --output-on-failure -L obs
ctest --test-dir build --output-on-failure -L conform

echo "== tier1: mclconform CL-surface coverage gate =="
# The report is generated from the cl_surface table compiled into the shim,
# so it cannot drift from the code; the --check pass fails if an Implemented
# entry point names no covering test (or names one that is not a real ctest
# target).
./build/tools/mclconform --json build/conformance.json
tools/plot_results.py --check build/conformance.json

echo "== tier1: mclsan --all static gate + KernelFacts schema check =="
# Exit 1 = a kernel outside the known-positive set gained an error-severity
# diagnostic; the facts file is the auto-tuner's input, so its schema is
# pinned by plot_results.py --check.
./build/tools/mclsan --all --facts build/kernel_facts.json
tools/plot_results.py --check build/kernel_facts.json

echo "== tier1: mclcheck differential smoke (fixed seed, 60 s budget) =="
# Fixed-seed so the gate is reproducible; the clock-seeded long run is the
# nightly `ctest -C nightly -L fuzz` job. Repro files go to the build tree.
./build/tools/mclcheck --cases 2000 --seed 1 --budget-seconds 60 \
  --repro-dir build
# Any repro file that does land in the source tree must be minimized.
find . -path ./build -prune -o -path ./build-asan -prune -o \
  -path ./build-tsan -prune -o -name '*.mclrepro' -print0 |
  while IFS= read -r -d '' repro; do
    tools/plot_results.py --check "$repro"
  done

echo "== tier1: serve_load closed-loop smoke (fixed seed) =="
# The harness exits nonzero on any lost or hung ticket; the emitted
# trajectory document is then schema-checked (monotonic timeline, ordered
# percentiles, per-tenant request conservation). The committed
# BENCH_serve.json perf-trajectory file comes from the full 1M-request run.
./build/bench/serve_load --quick --tenants 8 --seed 1 \
  --json build/BENCH_serve_smoke.json
tools/plot_results.py --check build/BENCH_serve_smoke.json

echo "== tier1: mclobs critical-path smoke (fixed seed) =="
# serve_load --obs records exact per-request critical paths and exits
# nonzero unless every tenant's p99 decomposition covers >= 95% of the
# measured end-to-end latency; the emitted report and `.mclobs` snapshot are
# then schema-checked, and mclstat must render both (triage-tool smoke).
./build/bench/serve_load --quick --tenants 8 --seed 1 --obs \
  --json build/BENCH_serve_obs_smoke.json \
  --obs-dump build/serve_smoke.mclobs
tools/plot_results.py --check build/BENCH_serve_obs_smoke.json
tools/plot_results.py --check build/serve_smoke.mclobs
./build/tools/mclstat build/BENCH_serve_obs_smoke.json > /dev/null
./build/tools/mclstat build/serve_smoke.mclobs > /dev/null

echo "== tier1: mcltune ablation smoke (fixed seed) =="
# Fixed-seed quick run of the tuning ablation: the emitted document is
# schema-checked (tuned arms no worse than paper-default within noise,
# online convergence within the launch budget). The committed
# BENCH_tune.json perf-trajectory file comes from the default-size run.
./build/bench/ablation_tuning --quick --seed 42 \
  --json build/BENCH_tune_smoke.json
tools/plot_results.py --check build/BENCH_tune_smoke.json

echo "== tier1: ASan+UBSan build =="
cmake -B build-asan -S . -DMCL_SANITIZE=address,undefined
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure

echo "== tier1: TSan build (threading + queue + trace + prof + serve + tune + obs + subdev labels) =="
cmake -B build-tsan -S . -DMCL_SANITIZE=thread
cmake --build build-tsan -j "$jobs" --target threading_test queue_async_test trace_test prof_test serve_test tune_test obs_test subdevice_test
ctest --test-dir build-tsan --output-on-failure -L "threading|queue|trace|prof|serve|tune|obs|subdev"

echo "== tier1: all checks passed =="
